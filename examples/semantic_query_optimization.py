#!/usr/bin/env python
"""Section 4's travel-agency scenario, end to end.

The constraint set (Figure 9) admits no data-independent termination
guarantee, so a naive optimizer could never chase *any* query.  The
library's data-dependent analysis rescues q2: its chase provably
terminates, the universal plan q2' is computed, and the subquery
search discovers the cheaper rewritings q2'' and q2'''.

Run:  python examples/semantic_query_optimization.py
"""

from repro import analyze, chase, parse_instance
from repro.cq import optimize, universal_plan
from repro.datadep import (monitored_chase, relevant_constraints,
                           terminates_statically)
from repro.lang.errors import NonTerminationBudget
from repro.workloads.paper import figure9, query_q1, query_q2


def main() -> None:
    sigma = figure9()
    print("=== Figure 9 constraints ===")
    for constraint in sigma:
        print(f"  {constraint.label}: {constraint}")
    report = analyze(sigma, max_k=2)
    print(f"\nany data-independent guarantee? "
          f"{report.guarantees_some_sequence}")

    # ------------------------------------------------------------------
    # q1: rail-and-fly.  Its canonical instance triggers alpha3, whose
    # chase cascades forever.
    # ------------------------------------------------------------------
    q1 = query_q1()
    print(f"\n=== q1: {q1} ===")
    frozen1, _ = q1.freeze()
    relevant = sorted(c.label for c in relevant_constraints(frozen1, sigma))
    print(f"constraints that may fire: {relevant}")
    print(f"static guarantee: {terminates_statically(frozen1, sigma)}")
    guarded = monitored_chase(frozen1, sigma, cycle_limit=2)
    print(f"monitored chase: {guarded.status.value} after "
          f"{guarded.result.length} steps -- q1 cannot be safely chased")
    try:
        universal_plan(q1, sigma, cycle_limit=2)
    except NonTerminationBudget as exc:
        print(f"universal_plan(q1) correctly refuses: {exc}")

    # ------------------------------------------------------------------
    # q2: rail-and-fly with the way back.  Only alpha1 is relevant, and
    # {alpha1} is inductively restricted: safe to chase.
    # ------------------------------------------------------------------
    q2 = query_q2()
    print(f"\n=== q2: {q2} ===")
    frozen2, _ = q2.freeze()
    relevant = sorted(c.label for c in relevant_constraints(frozen2, sigma))
    print(f"constraints that may fire: {relevant}")
    print(f"static guarantee: T[{terminates_statically(frozen2, sigma)}]")

    result = optimize(q2, sigma, cycle_limit=3)
    print(f"\nuniversal plan q2' ({len(result.universal_plan.body)} atoms):")
    print(f"  {result.universal_plan}")
    print(f"\nequivalent rewritings found: {len(result.rewritings)}")
    for rewriting in result.minimal_rewritings():
        print(f"  minimal: {rewriting}")

    # ------------------------------------------------------------------
    # Check the rewriting against a concrete database.
    # ------------------------------------------------------------------
    db = parse_instance("""
        rail(c1, berlin, 100). rail(berlin, c1, 100).
        fly(berlin, paris, 500). fly(paris, berlin, 500).
        fly(paris, rome, 700). fly(rome, paris, 700)
    """)
    chased = chase(db, sigma, max_steps=5000)
    best = result.minimal_rewritings()[0]
    original_answers = q2.evaluate(chased.instance)
    rewritten_answers = best.evaluate(chased.instance)
    print(f"\non a sample database: q2 -> {sorted(map(str, (t[0] for t in original_answers)))}, "
          f"rewriting -> {sorted(map(str, (t[0] for t in rewritten_answers)))}")
    assert original_answers == rewritten_answers
    print("rewriting verified: same answers, "
          f"{len(q2.body) - len(best.body)} join(s) eliminated")


if __name__ == "__main__":
    main()
