#!/usr/bin/env python
"""Classify every named constraint set of the paper (Figure 1 matrix).

Prints one row per constraint set and one column per termination
condition -- the separations visible in the output ARE Figure 1: each
class is non-empty strictly above the previous one, and
stratified/inductively-restricted as well as safe/c-stratified are
incomparable.

Run:  python examples/termination_analysis.py
"""

from repro.termination import analyze
from repro.workloads.paper import NAMED_SETS

COLUMNS = [
    ("WA", "weakly_acyclic"),
    ("safe", "safe"),
    ("c-strat", "c_stratified"),
    ("strat", "stratified"),
    ("safe-R", "safely_restricted"),
    ("IR", "inductively_restricted"),
]


def mark(flag: bool) -> str:
    return "X" if flag else "."


def main() -> None:
    name_width = max(len(name) for name in NAMED_SETS) + 2
    header = "".join(f"{title:>9}" for title, _ in COLUMNS)
    print(f"{'constraint set':<{name_width}}{header}{'T-level':>9}   description")
    print("-" * (name_width + 9 * (len(COLUMNS) + 1) + 30))
    for name, (factory, description) in NAMED_SETS.items():
        sigma = factory()
        report = analyze(sigma, max_k=3)
        cells = "".join(f"{mark(getattr(report, attr)):>9}"
                        for _, attr in COLUMNS)
        level = (f"T[{report.t_hierarchy_level}]"
                 if report.t_hierarchy_level else "-")
        print(f"{name:<{name_width}}{cells}{level:>9}   {description}")

    print()
    print("Separating witnesses (all strict inclusions of Figure 1):")
    print("  WA  c safe            : example8_beta  (safe, not WA)")
    print("  safe c IR             : example13      (IR, not safe)")
    print("  IR = T[2] c T[3]      : figure2        (T[3], not T[2])")
    print("  WA  c c-strat         : example2_gamma (c-strat, not WA)")
    print("  c-strat c strat       : example4       (strat, not c-strat)")
    print("  safe || c-strat       : thm4_safe_not_strat / example2_gamma")
    print("  strat || IR           : example4 / example13")


if __name__ == "__main__":
    main()
