#!/usr/bin/env python
"""Quickstart: constraints, the chase, and termination analysis.

Walks the Introduction of the paper: a constraint whose chase always
terminates, one whose chase never does, and how the library tells them
apart *before* running anything.

Run:  python examples/quickstart.py
"""

from repro import (analyze, chase, ChaseStatus, monitored_chase,
                   parse_constraints, parse_instance)


def main() -> None:
    # ------------------------------------------------------------------
    # The paper's opening example: every special node needs an edge.
    # ------------------------------------------------------------------
    instance = parse_instance("S(n1). S(n2). E(n1, n2)")
    alpha1 = parse_constraints("a1: S(x) -> E(x, y)")

    print("=== alpha1: every special node has an outgoing edge ===")
    print(analyze(alpha1, max_k=2).render())
    result = chase(instance, alpha1)
    print(f"chase: {result.status.value} after {result.length} step(s)")
    print(result.instance.render())
    print()

    # ------------------------------------------------------------------
    # One tweak -- the successor must be special too -- and the chase
    # runs forever: S(x) -> E(x,y), S(y).
    # ------------------------------------------------------------------
    alpha2 = parse_constraints("a2: S(x) -> E(x, y), S(y)")

    print("=== alpha2: ... and the successor is special too ===")
    report = analyze(alpha2, max_k=3)
    print(report.render())
    assert not report.guarantees_some_sequence

    # A budgeted run confirms the diagnosis ...
    result = chase(instance, alpha2, max_steps=100)
    print(f"budgeted chase: {result.status.value} "
          f"({result.length} steps, {result.new_null_count()} fresh nulls)")

    # ... but the Section 4.2 monitor catches it in a handful of steps.
    guarded = monitored_chase(instance, alpha2, cycle_limit=3,
                              max_steps=100_000)
    print(f"monitored chase: {guarded.status.value} after "
          f"{guarded.result.length} steps "
          f"(cycle depth {guarded.monitor.cycle_depth})")
    assert result.status is ChaseStatus.EXCEEDED_BUDGET
    assert guarded.aborted

    # ------------------------------------------------------------------
    # A constraint only the paper's new conditions recognize
    # (Figure 2, a member of T[3] but no earlier class).
    # ------------------------------------------------------------------
    fig2 = parse_constraints("a: S(x2), E(x1, x2) -> E(y, x1)")
    print()
    print("=== Figure 2: every predecessor of a special node has one ===")
    report = analyze(fig2, max_k=3)
    print(report.render())
    assert report.t_hierarchy_level == 3
    result = chase(parse_instance("S(b). E(a, b). S(a)"), fig2)
    print(f"chase: {result.status.value} after {result.length} step(s)")
    print(result.instance.render())


if __name__ == "__main__":
    main()
