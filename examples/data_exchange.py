#!/usr/bin/env python
"""Data exchange with chase-termination guarantees.

The chase's home turf (Fagin et al. [21], cited throughout the paper):
materialize a *target* database from a *source* database under
source-to-target and target TGDs, the universal solution being the
chase result.  Termination analysis decides up front whether
materialization is safe, and the core chase produces the canonical
(smallest) universal solution.

Run:  python examples/data_exchange.py
"""

from repro import analyze, chase, parse_constraints, parse_instance
from repro.chase.core import is_core
from repro.chase.core_chase import core_chase
from repro.homomorphism.extend import all_satisfied


def main() -> None:
    # Source schema: emp(name, dept), mgr(dept, boss)
    # Target schema: worksIn(name, dept), dept(dept), reportsTo(name, boss)
    mapping = parse_constraints("""
        m1: emp(n, d) -> worksIn(n, d), dept(d);
        m2: emp(n, d), mgr(d, b) -> reportsTo(n, b);
        t1: dept(d) -> worksIn(p, d);
        t2: worksIn(n, d) -> dept(d)
    """)

    print("=== schema mapping ===")
    for constraint in mapping:
        print(f"  {constraint.label}: {constraint}")

    report = analyze(mapping, max_k=2)
    print(f"\ntermination guarantee: "
          f"{'yes' if report.guarantees_all_sequences else 'NO'}"
          f" (safe={report.safe}, "
          f"inductively restricted={report.inductively_restricted})")
    assert report.guarantees_all_sequences

    source = parse_instance("""
        emp(ada, research). emp(grace, systems).
        mgr(research, turing). mgr(systems, hopper).
        dept(archive)
    """)

    # Ordinary chase: a universal solution.
    solution = chase(source, mapping)
    assert solution.terminated
    assert all_satisfied(mapping, solution.instance)
    print(f"\nuniversal solution ({len(solution.instance)} facts, "
          f"{solution.new_null_count()} labeled nulls):")
    print("  " + "\n  ".join(sorted(map(str, solution.instance))))

    # Core chase: the *canonical* (smallest) universal solution.
    canonical = core_chase(source, mapping)
    assert canonical.terminated and is_core(canonical.instance)
    print(f"\ncore universal solution ({len(canonical.instance)} facts):")
    print("  " + "\n  ".join(sorted(map(str, canonical.instance))))

    # Certain answers of a target query = evaluation on the core,
    # dropping null tuples.
    from repro import parse_query
    query = parse_query("q(n, d) <- worksIn(n, d)")
    answers = query.evaluate(canonical.instance)
    print(f"\ncertain answers of {query}:")
    for row in sorted(str(tuple(map(str, r))) for r in answers):
        print(f"  {row}")


if __name__ == "__main__":
    main()
