#!/usr/bin/env python
"""Section 5: querying a knowledge base whose chase never terminates.

An ontology-style constraint set implies an infinite canonical model
(every person has an ancestor, who has an ancestor, ...).  Certain
answers over constants are still computable: the guardedness analysis
certifies the guarded-null property, and the depth-bounded chase
evaluates queries on a finite, treewidth-bounded prefix.

Run:  python examples/knowledge_base_answering.py
"""

from repro import analyze, chase, parse_constraints, parse_instance, parse_query
from repro.kb import (certain_answers, depth_bounded_chase,
                      is_restrictedly_guarded, is_weakly_guarded,
                      lemma6_bound, sequence_has_guarded_nulls,
                      treewidth_upper_bound)


def main() -> None:
    # A small family ontology: everybody has a parent, parents are
    # ancestors, ancestry is transitive along parents.
    sigma = parse_constraints("""
        a1: person(x) -> parent(x, y), person(y);
        a2: parent(x, y) -> ancestor(x, y);
        a3: parent(x, y), ancestor(y, z) -> ancestor(x, z)
    """)
    kb = parse_instance("""
        person(alice). person(bob).
        parent(alice, carol). person(carol).
        parent(bob, carol)
    """)

    print("=== ontology ===")
    for constraint in sigma:
        print(f"  {constraint.label}: {constraint}")

    report = analyze(sigma, max_k=2)
    print(f"\nchase terminates in general? "
          f"{report.guarantees_some_sequence}")
    result = chase(kb, sigma, max_steps=300)
    print(f"budgeted chase: {result.status.value} -- the canonical "
          "model is infinite")

    print(f"\nweakly guarded      : {is_weakly_guarded(sigma)}")
    print(f"restrictedly guarded: {is_restrictedly_guarded(sigma)}")

    # A finite, treewidth-bounded prefix suffices for certain answers.
    bounded = depth_bounded_chase(kb, sigma, depth_limit=3)
    print(f"\ndepth-3 prefix: {len(bounded.instance)} facts, "
          f"{len(bounded.instance.nulls())} nulls, "
          f"truncated={bounded.truncated}")
    width = treewidth_upper_bound(bounded.instance)
    print(f"treewidth of prefix <= {width} "
          f"(Lemma 6 bound: {lemma6_bound(kb, 2)})")

    queries = [
        parse_query("q(x, y) <- ancestor(x, y)"),
        parse_query("q(x) <- person(x), parent(x, z)"),
        parse_query("q(x) <- ancestor(x, 'carol')"),
    ]
    print("\n=== certain answers (constants only) ===")
    for query in queries:
        answers = certain_answers(kb, sigma, query, max_steps=200)
        rendered = sorted(str(tuple(map(str, row))) for row in answers)
        print(f"  {query}")
        for row in rendered:
            print(f"      {row}")

    # Every person has *some* parent in every model: true even though
    # the witnesses are nulls.
    boolean = parse_query("q(x) <- person(x), parent(x, w)")
    answers = certain_answers(kb, sigma, boolean, max_steps=200)
    names = sorted(str(t[0]) for t in answers)
    print(f"\npersons with a provable parent: {names}")
    assert names == ["alice", "bob", "carol"]


if __name__ == "__main__":
    main()
