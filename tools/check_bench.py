#!/usr/bin/env python
"""Compare a fresh benchmark JSON against the committed baseline.

``make bench-json`` writes ``BENCH_chase_scaling.json`` (a
pytest-benchmark artifact); the repo commits one as the performance
baseline.  This checker recomputes each benchmark's mean-time ratio
(fresh / baseline) and fails when any benchmark regressed by more
than the allowed factor **relative to the run-wide median ratio** --
the median normalizes away machine-speed differences between the
baseline host and the current one, so only *relative* regressions
(one family suddenly slower than its peers) trip the gate.

Benchmarks present on only one side are reported but never fail the
check (families come and go across PRs); timings under 5 ms on both
sides are skipped as noise.

Usage::

    python tools/check_bench.py BASELINE.json FRESH.json [--allow 1.3]

Exit status 1 on regression, 0 otherwise.
"""

import argparse
import json
import statistics
import sys

#: Ratio over the median beyond which a benchmark counts as regressed.
DEFAULT_ALLOWANCE = 1.3

#: Means under this many seconds on both sides are noise, not signal.
MIN_SECONDS = 0.005


def load_means(path):
    with open(path) as handle:
        payload = json.load(handle)
    means = {}
    for bench in payload.get("benchmarks", []):
        name = bench.get("fullname") or bench.get("name")
        mean = bench.get("stats", {}).get("mean")
        if name and isinstance(mean, (int, float)) and mean > 0:
            means[name] = mean
    return means


def check(baseline_path, fresh_path, allowance=DEFAULT_ALLOWANCE,
          out=sys.stdout):
    baseline = load_means(baseline_path)
    fresh = load_means(fresh_path)
    common = sorted(set(baseline) & set(fresh))
    if not common:
        print("no common benchmarks between baseline and fresh run; "
              "nothing to compare", file=out)
        return 0

    for name in sorted(set(baseline) ^ set(fresh)):
        side = "baseline" if name in baseline else "fresh"
        print(f"note: {name} only in the {side} run", file=out)

    ratios = {name: fresh[name] / baseline[name] for name in common}
    comparable = [name for name in common
                  if baseline[name] >= MIN_SECONDS
                  or fresh[name] >= MIN_SECONDS]
    if not comparable:
        print("all common benchmarks under the noise floor "
              f"({MIN_SECONDS * 1000:.0f} ms); nothing to compare",
              file=out)
        return 0

    median = statistics.median(ratios[name] for name in comparable)
    print(f"{len(comparable)} comparable benchmark(s); median "
          f"fresh/baseline ratio {median:.3f} (machine-speed "
          "normalizer)", file=out)

    failures = []
    for name in comparable:
        normalized = ratios[name] / median
        flag = ""
        if normalized > allowance:
            failures.append(name)
            flag = f"  <-- REGRESSED (>{allowance:.2f}x the median)"
        print(f"  {name}: {baseline[name] * 1000:8.1f} ms -> "
              f"{fresh[name] * 1000:8.1f} ms  ratio {ratios[name]:.3f} "
              f"(normalized {normalized:.3f}){flag}", file=out)

    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed beyond "
              f"{allowance:.2f}x the run-wide median:", file=out)
        for name in failures:
            print(f"  - {name}", file=out)
        return 1
    print("\nbenchmarks within allowance", file=out)
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("fresh", help="freshly produced benchmark JSON")
    parser.add_argument("--allow", type=float, default=DEFAULT_ALLOWANCE,
                        help="normalized ratio beyond which a benchmark "
                             f"fails (default {DEFAULT_ALLOWANCE})")
    args = parser.parse_args(argv)
    return check(args.baseline, args.fresh, allowance=args.allow)


if __name__ == "__main__":
    sys.exit(main())
