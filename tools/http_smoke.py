#!/usr/bin/env python
"""End-to-end smoke of ``repro serve --http`` (the CI http-smoke step).

Starts a real gateway subprocess on an ephemeral port, fires a
16-request mixed burst at it from concurrent threads through the
stdlib ``urllib`` client -- unique chase submits, query jobs,
cache-hitting repeats, a stats probe and deliberately malformed specs
-- then validates the ``/stats`` reply against the schema downstream
consumers rely on (check_trace-style field checks) and drains the
gateway through ``POST /shutdown``.

Checks enforced:

* every burst request gets the expected status (200 for jobs and
  probes, 400 + structured error body for the malformed ones);
* served results are byte-identical across cache hits and repeats;
* ``/stats`` is a JSON object with ``kind == "stats"``, a ``metrics``
  object holding ``counters``/``gauges``/``histograms`` keyed by
  dotted metric names, a ``cache`` object, and a ``gateway`` object
  with the queue/backpressure fields;
* ``/stats`` content-negotiates Prometheus text exposition;
* graceful shutdown: the drain endpoint answers 202 and the server
  process exits 0.

Usage::

    python tools/http_smoke.py [--requests N] [--workers N]

Exit status 1 on any violation, 0 otherwise.
"""

import argparse
import json
import subprocess
import sys
import threading
import urllib.error
import urllib.request

BURST = 16

TERMINATING = "a1: S(x) -> E(x, y)"

STATS_METRIC_SECTIONS = ("counters", "gauges", "histograms")
GATEWAY_FIELDS = frozenset(("queue_depth", "queue_bound", "open_jobs",
                            "records", "draining", "workers_alive"))


def http(base, method, path, payload=None, headers=None, timeout=60):
    """-> (status, headers, body_bytes); error statuses don't raise."""
    body = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(base + path, data=body,
                                     method=method,
                                     headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, dict(reply.headers), reply.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def burst_worker(base, index, outcomes, errors):
    try:
        unique = {"name": f"smoke-{index}", "constraints": TERMINATING,
                  "instance": f"S(a{index}). S(b{index})."}
        kind = index % 4
        if kind == 0:        # unique chase, blocking
            status, _, body = http(base, "POST", "/jobs?wait=1", unique)
            expect = 200
        elif kind == 1:      # query job, blocking
            status, _, body = http(base, "POST", "/jobs?wait=1", {
                "name": f"smokeq-{index}", "constraints": TERMINATING,
                "instance": f"E(a{index}, b). S(a{index}).",
                "query": "q(x) <- E(x, y)"})
            expect = 200
        elif kind == 2:      # shared spec: cache hit or dedup
            status, _, body = http(base, "POST", "/jobs?wait=1", {
                "name": "smoke-shared", "constraints": TERMINATING,
                "instance": "S(shared)."})
            expect = 200
        else:                # malformed: structured 400
            status, _, body = http(base, "POST", "/jobs",
                                   {"kind": "chase", "name": "broken"})
            expect = 400
        reply = json.loads(body)
        if status != expect:
            errors.append(f"request {index}: status {status}, "
                          f"expected {expect}: {reply}")
        elif expect == 400:
            if reply.get("status") != "error" or "error" not in reply:
                errors.append(f"request {index}: unstructured 400 "
                              f"body {reply}")
        else:
            result = reply["result"]
            if result["status"] != "terminated":
                errors.append(f"request {index}: job ended "
                              f"{result['status']!r}")
            outcomes[index] = result
    except Exception as exc:                          # noqa: BLE001
        errors.append(f"request {index}: {type(exc).__name__}: {exc}")


def check_stats(base, errors):
    status, _, body = http(base, "GET", "/stats")
    if status != 200:
        errors.append(f"/stats: status {status}")
        return
    stats = json.loads(body)
    if stats.get("kind") != "stats":
        errors.append(f"/stats: kind {stats.get('kind')!r}")
    metrics = stats.get("metrics")
    if not isinstance(metrics, dict):
        errors.append("/stats: 'metrics' must be an object")
    else:
        for section in STATS_METRIC_SECTIONS:
            table = metrics.get(section)
            if not isinstance(table, dict):
                errors.append(f"/stats: metrics[{section!r}] must be "
                              "an object")
            elif not all(isinstance(name, str) and name
                         for name in table):
                errors.append(f"/stats: metrics[{section!r}] keys "
                              "must be dotted metric names")
        counters = metrics.get("counters", {})
        if "http.requests" not in counters:
            errors.append("/stats: counter 'http.requests' missing "
                          "(gateway not instrumented?)")
    if not isinstance(stats.get("cache"), dict):
        errors.append("/stats: 'cache' must be an object")
    gw = stats.get("gateway")
    if not isinstance(gw, dict):
        errors.append("/stats: 'gateway' must be an object")
    else:
        missing = GATEWAY_FIELDS - set(gw)
        if missing:
            errors.append(f"/stats: gateway misses {sorted(missing)}")
    status, headers, body = http(base, "GET", "/stats",
                                 headers={"Accept": "text/plain"})
    if status != 200 or not headers.get(
            "Content-Type", "").startswith("text/plain"):
        errors.append("/stats: Prometheus negotiation failed "
                      f"(status {status})")
    try:
        json.loads(body)
        errors.append("/stats: Accept: text/plain still returned JSON")
    except ValueError:
        pass                 # good: exposition text, not JSON


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=BURST)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)

    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--http", "--port", "0",
         "--workers", str(args.workers), "--metrics",
         "--shutdown-endpoint"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    errors = []
    try:
        listening = json.loads(server.stdout.readline())
        if listening.get("kind") != "listening":
            raise RuntimeError(f"unexpected announce line: {listening}")
        base = f"http://{listening['host']}:{listening['port']}"

        outcomes = {}
        threads = [threading.Thread(target=burst_worker,
                                    args=(base, index, outcomes, errors))
                   for index in range(args.requests)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)

        # Shared-spec requests must agree byte-for-byte.
        shared = {json.dumps({k: outcomes[i][k] for k in
                              ("status", "steps", "facts")},
                             sort_keys=True)
                  for i in outcomes if i % 4 == 2}
        if len(shared) > 1:
            errors.append("shared-spec results diverged across the "
                          "burst")

        check_stats(base, errors)

        status, _, _ = http(base, "POST", "/shutdown")
        if status != 202:
            errors.append(f"/shutdown: status {status}")
        if server.wait(timeout=60) != 0:
            errors.append(f"server exited {server.returncode}")
    except Exception as exc:                          # noqa: BLE001
        errors.append(f"{type(exc).__name__}: {exc}")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()
    for message in errors:
        print(f"http_smoke: {message}", file=sys.stderr)
    if errors:
        return 1
    print(f"http_smoke: OK ({args.requests}-request burst, "
          f"stats schema valid, graceful drain)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
