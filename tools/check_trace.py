#!/usr/bin/env python
"""Validate an NDJSON trace file emitted by ``--trace``.

``repro chase/batch/query/serve --trace FILE`` writes one JSON object
per finished span (see :mod:`repro.obs.trace`).  This checker enforces
the schema that downstream consumers (and the obs-smoke CI step) rely
on:

* every line parses as a JSON object with exactly the fields
  ``trace``, ``span``, ``parent``, ``name``, ``ts``, ``dur`` and
  ``attrs``;
* ``trace``/``span``/``name`` are non-empty strings, ``parent`` is a
  string or null, ``ts`` is a number, ``dur`` is a non-negative
  number, ``attrs`` is an object;
* span ids are unique within their trace;
* every non-null parent resolves to a span of the same trace.

Parent resolution is checked after the whole file is read: spans are
emitted child-first (a span's record is written when it *finishes*),
so a child legitimately appears before its parent.

Usage::

    python tools/check_trace.py TRACE.ndjson [--min-spans N]

Exit status 1 on any violation, 0 otherwise.
"""

import argparse
import json
import sys

REQUIRED_FIELDS = frozenset(
    ("trace", "span", "parent", "name", "ts", "dur", "attrs"))


def check_record(record, lineno, errors):
    """Validate one parsed span record; append messages to ``errors``."""
    if not isinstance(record, dict):
        errors.append(f"line {lineno}: not a JSON object")
        return None
    fields = set(record)
    missing = REQUIRED_FIELDS - fields
    extra = fields - REQUIRED_FIELDS
    if missing:
        errors.append(f"line {lineno}: missing fields "
                      f"{sorted(missing)}")
    if extra:
        errors.append(f"line {lineno}: unexpected fields "
                      f"{sorted(extra)}")
    if missing:
        return None
    for key in ("trace", "span", "name"):
        value = record[key]
        if not isinstance(value, str) or not value:
            errors.append(f"line {lineno}: {key!r} must be a "
                          f"non-empty string, got {value!r}")
    parent = record["parent"]
    if parent is not None and not isinstance(parent, str):
        errors.append(f"line {lineno}: 'parent' must be a string or "
                      f"null, got {parent!r}")
    if not isinstance(record["ts"], (int, float)) \
            or isinstance(record["ts"], bool):
        errors.append(f"line {lineno}: 'ts' must be a number")
    dur = record["dur"]
    if not isinstance(dur, (int, float)) or isinstance(dur, bool) \
            or dur < 0:
        errors.append(f"line {lineno}: 'dur' must be a non-negative "
                      f"number, got {dur!r}")
    if not isinstance(record["attrs"], dict):
        errors.append(f"line {lineno}: 'attrs' must be an object")
    return record


def check_trace(lines):
    """Validate all lines; return ``(span_count, errors)``."""
    errors = []
    seen = {}          # (trace, span) -> lineno
    parents = []       # (trace, parent, lineno) awaiting resolution
    count = 0
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            errors.append(f"line {lineno}: blank line")
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            errors.append(f"line {lineno}: not JSON ({exc})")
            continue
        record = check_record(record, lineno, errors)
        if record is None:
            continue
        count += 1
        trace = record.get("trace")
        span = record.get("span")
        if isinstance(trace, str) and isinstance(span, str):
            key = (trace, span)
            if key in seen:
                errors.append(f"line {lineno}: span {span!r} of trace "
                              f"{trace!r} already seen on line "
                              f"{seen[key]}")
            else:
                seen[key] = lineno
            parent = record.get("parent")
            if isinstance(parent, str):
                parents.append((trace, parent, lineno))
    for trace, parent, lineno in parents:
        if (trace, parent) not in seen:
            errors.append(f"line {lineno}: parent {parent!r} never "
                          f"emitted in trace {trace!r}")
    return count, errors


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="NDJSON trace file")
    parser.add_argument("--min-spans", type=int, default=1,
                        metavar="N",
                        help="fail if fewer than N valid spans "
                             "(default 1 -- an empty trace from an "
                             "instrumented run is itself a bug)")
    args = parser.parse_args(argv)
    with open(args.trace) as handle:
        count, errors = check_trace(handle)
    for message in errors:
        print(f"check_trace: {message}", file=sys.stderr)
    if count < args.min_spans:
        print(f"check_trace: only {count} valid spans "
              f"(need >= {args.min_spans})", file=sys.stderr)
        return 1
    if errors:
        return 1
    noun = "span" if count == 1 else "spans"
    print(f"check_trace: OK ({count} {noun})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
