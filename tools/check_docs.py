#!/usr/bin/env python
"""Intra-repo documentation checker (``make docs-check``).

Fails (exit 1, one line per problem) on:

* **broken markdown links** -- ``[text](target)`` in any ``*.md``
  whose relative target does not exist (anchors and external
  ``http(s)``/``mailto`` targets are skipped);
* **references to nonexistent repo files** -- any mention of a
  ``*.md`` file, or of a path under ``src/ docs/ examples/
  benchmarks/ tests/ tools/``, in Markdown *or in Python
  docstrings/comments*, that does not resolve.  This is the class of
  rot where a module docstring keeps pointing at a design document
  that was deleted or renamed long ago.

Run from anywhere: paths resolve against the repository root (the
parent of this file's directory).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterator, List

ROOT = Path(__file__).resolve().parents[1]

#: Markdown inline links: [text](target)
MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Bare mentions of markdown files (README.md, docs/FOO.md, ...)
MD_FILE_REF = re.compile(r"[A-Za-z0-9_./-]*[A-Za-z0-9_-]+\.md\b")
#: Paths under the repo's content directories
REPO_PATH_REF = re.compile(
    r"\b(?:src|docs|examples|benchmarks|tests|tools)"
    r"/[A-Za-z0-9_/-]+(?:\.[A-Za-z0-9_]+)?")

SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", ".hypothesis",
             "node_modules"}
#: Driver/metadata files quoting external repos or per-PR scratch
#: state -- their references are not this repository's to validate.
SKIP_FILES = {"ISSUE.md", "SNIPPETS.md", "PAPERS.md", "CHANGES.md"}
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "#")


def _tracked(pattern: str) -> Iterator[Path]:
    for path in sorted(ROOT.rglob(pattern)):
        if any(part in SKIP_DIRS for part in path.parts):
            continue
        if path.parent == ROOT and path.name in SKIP_FILES:
            continue
        yield path


def _exists(token: str, base: Path) -> bool:
    token = token.rstrip("/")
    return (ROOT / token).exists() or (base / token).exists()


def check_markdown_links(path: Path, problems: List[str]) -> None:
    text = path.read_text()
    for target in MD_LINK.findall(text):
        if target.startswith(EXTERNAL_PREFIXES):
            continue
        bare = target.split("#", 1)[0]
        if bare and not _exists(bare, path.parent):
            problems.append(f"{path.relative_to(ROOT)}: broken link "
                            f"({target})")


def check_file_references(path: Path, problems: List[str]) -> None:
    text = path.read_text()
    seen = set()
    for pattern in (MD_FILE_REF, REPO_PATH_REF):
        for token in pattern.findall(text):
            if token in seen or token.startswith(EXTERNAL_PREFIXES):
                continue
            seen.add(token)
            if not _exists(token, path.parent):
                problems.append(f"{path.relative_to(ROOT)}: reference to "
                                f"nonexistent file ({token})")


def main() -> int:
    problems: List[str] = []
    markdown = list(_tracked("*.md"))
    if not any(p.name == "README.md" and p.parent == ROOT
               for p in markdown):
        problems.append("README.md missing at the repository root")
    for path in markdown:
        check_markdown_links(path, problems)
        check_file_references(path, problems)
    for path in _tracked("*.py"):
        if path == Path(__file__).resolve():
            continue
        check_file_references(path, problems)
    for problem in problems:
        print(problem, file=sys.stderr)
    checked = len(markdown) + sum(1 for _ in _tracked("*.py")) - 1
    if problems:
        print(f"docs-check: {len(problems)} problem(s) in "
              f"{checked} files", file=sys.stderr)
        return 1
    print(f"docs-check: {checked} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
