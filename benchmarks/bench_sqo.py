"""Section 4 / Example 16: the travel-agency SQO pipeline.

Times the data-dependent analysis (irrelevance + Lemma 4), the
universal-plan chase of q2, and the full rewriting enumeration that
produces q2'' and q2'''.
"""

import pytest

from repro.cq import equivalent, optimize, universal_plan
from repro.datadep import (monitored_chase, relevant_constraints,
                           terminates_statically)
from repro.workloads.paper import (figure9, query_q1, query_q2,
                                   query_q2_double_prime)


@pytest.mark.paper_artifact("Example 16")
def test_static_analysis_q2(benchmark):
    sigma = figure9()
    frozen, _ = query_q2().freeze()

    def run():
        from repro.termination import PrecedenceOracle
        oracle = PrecedenceOracle()
        relevant = relevant_constraints(frozen, sigma, oracle)
        return relevant, terminates_statically(frozen, sigma, oracle=oracle)

    relevant, level = benchmark(run)
    assert {c.label for c in relevant} == {"a1"}
    assert level == 2


@pytest.mark.paper_artifact("Section 4")
def test_q1_divergence_detection(benchmark):
    sigma = figure9()
    frozen, _ = query_q1().freeze()

    def run():
        return monitored_chase(frozen, sigma, 2, max_steps=50_000)

    result = benchmark(run)
    assert result.aborted


@pytest.mark.paper_artifact("Section 4 (q2')")
def test_universal_plan_q2(benchmark):
    sigma = figure9()

    def run():
        return universal_plan(query_q2(), sigma, cycle_limit=3)

    plan = benchmark(run)
    assert len(plan.body) == 6


@pytest.mark.paper_artifact("Section 4 (q2'', q2''')")
def test_full_rewriting_search(benchmark):
    sigma = figure9()

    def run():
        return optimize(query_q2(), sigma, cycle_limit=3)

    result = benchmark(run)
    best = result.minimal_rewritings()
    assert best and len(best[0].body) == 3
    assert any(equivalent(q, query_q2_double_prime()) for q in best)
    print(f"\nq2: {len(result.rewritings)} equivalent rewritings, "
          f"minimal size {len(best[0].body)} atoms "
          f"(original: {len(query_q2().body)})")
