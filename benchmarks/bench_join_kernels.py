"""Column-at-a-time join kernels vs. the tuple-at-a-time executor.

Plan-level microbenchmarks of :meth:`JoinPlan.execute_batch` (the
kernels of :mod:`repro.homomorphism.kernels` over the posting-list
protocol of :mod:`repro.storage.base`) against ``JoinPlan.execute``
on the ``column`` backend -- the two sides share the order-selection
machinery, so the ratio isolates the execution model itself.

Three workload families, one per kernel hot path:

* **intersection-heavy** -- bodies whose atoms carry ground or
  already-bound positions, so candidate narrowing is dominated by
  sorted posting-list intersection (the galloping kernel);
* **hash-join-heavy** -- a three-hop chain join over a dense random
  digraph, dominated by build/probe hash joins over column vectors;
* **skewed** -- a filtered two-hop join over a hub-and-spoke graph
  whose posting lists are maximally unbalanced (one hub term in
  almost every fact), stressing the skew handling of both kernels.

Every family asserts multiset parity (assignments *and*
multiplicities) between the two paths before timing them, and at the
largest size the batch path must be at least 2x faster.  Set
``REPRO_BENCH_SIZES`` (comma-separated) to shrink the sweep -- the CI
smoke job runs ``4,8`` with the speedup gate dormant (below ``n=32``
timings are noise-dominated).
"""

import os
import random
import time
from collections import Counter

import pytest

from repro.homomorphism.plan import compile_plan
from repro.lang.atoms import Atom
from repro.lang.instance import Instance
from repro.lang.terms import Constant, Variable

SIZES = [int(s) for s in os.environ.get("REPRO_BENCH_SIZES",
                                        "4,8,16,32").split(",")
         if s.strip()] or [4, 8, 16, 32]

x, y, z, w = Variable("x"), Variable("y"), Variable("z"), Variable("w")


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return max(best, 1e-9)


def _random_digraph(n, n_nodes, edge_probability, seed=7):
    rng = random.Random(seed)
    nodes = [Constant(f"v{i}") for i in range(n_nodes)]
    facts = []
    for s in nodes:
        for t in nodes:
            if rng.random() < edge_probability:
                facts.append(Atom("E", (s, t)))
    facts += [Atom("S", (node,)) for node in rng.sample(nodes,
                                                        max(2, len(nodes) // 4))]
    return facts


def _hub_graph(n, seed=13):
    """One hub term in almost every fact: the hub's posting list holds
    nearly the whole relation while spoke postings hold one row."""
    rng = random.Random(seed)
    hub = Constant("hub")
    spokes = [Constant(f"sp{i}") for i in range(8 * n)]
    facts = [Atom("E", (hub, s)) for s in spokes]
    facts += [Atom("E", (s, hub)) for s in spokes]
    facts += [Atom("E", (rng.choice(spokes), rng.choice(spokes)))
              for _ in range(2 * n)]
    facts += [Atom("S", (hub,))]
    facts += [Atom("S", (s,)) for s in rng.sample(spokes, max(2, n))]
    return facts


FAMILIES = [
    ("intersection_heavy",
     lambda n: _random_digraph(n, n_nodes=4 * n, edge_probability=0.25,
                               seed=7),
     (Atom("E", (x, y)), Atom("E", (y, z)), Atom("S", (x,)),
      Atom("S", (z,)))),
    ("hash_join_heavy",
     lambda n: _random_digraph(n, n_nodes=3 * n, edge_probability=0.08,
                               seed=11),
     (Atom("E", (x, y)), Atom("E", (y, z)), Atom("E", (z, w)))),
    ("skewed_postings",
     _hub_graph,
     (Atom("E", (x, y)), Atom("E", (y, z)), Atom("S", (x,)),
      Atom("S", (z,)))),
]


def _multiset(assignments):
    return Counter(frozenset(h.items()) for h in assignments)


@pytest.mark.paper_artifact("kernel layer")
@pytest.mark.parametrize("name,builder,body", FAMILIES,
                         ids=[f[0] for f in FAMILIES])
def test_batch_kernels_speedup(benchmark, name, builder, body):
    """Batch vs. tuple execution of the same compiled plan.

    Parity first (the tuple path is the oracle), then best-of-N wall
    clocks on both sides; at the largest size the column-at-a-time
    path must win by at least 2x.
    """
    n = max(SIZES)
    store = Instance(builder(n), backend="column").store
    plan = compile_plan(body)

    def run_batch():
        return sum(1 for _ in plan.execute_batch(store, force=True))

    def run_tuple():
        return sum(1 for _ in plan.execute(store))

    assert _multiset(plan.execute_batch(store, force=True)) \
        == _multiset(plan.execute(store))

    rows = benchmark(run_batch)
    batch_seconds = _best_of(run_batch)
    tuple_seconds = _best_of(run_tuple)
    speedup = tuple_seconds / batch_seconds
    print(f"\n{name}: batch {batch_seconds:.4f}s vs tuple "
          f"{tuple_seconds:.4f}s at n={n} ({rows} rows, "
          f"x{speedup:.1f} speedup)")
    if n >= 32:  # below that, timings are noise-dominated
        assert speedup >= 2.0, (
            f"{name}: batch kernels not >=2x over the tuple path "
            f"(x{speedup:.2f})")
