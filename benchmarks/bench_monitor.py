"""Section 4.2 / Proposition 11: the monitor graph, k-cyclicity and
the pay-as-you-go curve.

For the family (Sigma_k, I_k): every chase sequence is (k-1)- but not
k-cyclic, so a cycle limit of k-1 aborts while k succeeds -- larger
limits succeed on strictly more inputs.  We also measure the
monitoring overhead against an unmonitored chase.
"""

import pytest

from repro.chase import chase
from repro.datadep.monitor import MonitorGraph
from repro.datadep.monitored_chase import monitored_chase, pay_as_you_go
from repro.lang.parser import parse_constraints, parse_instance
from repro.workloads.families import prop11_family, special_nodes_instance


@pytest.mark.paper_artifact("Proposition 11")
@pytest.mark.parametrize("k", [3, 5, 7])
def test_cyclicity_frontier(benchmark, k):
    sigma, inst = prop11_family(k)

    def run():
        result = chase(inst, sigma)
        return result, MonitorGraph.from_sequence(result.sequence)

    result, graph = benchmark(run)
    assert result.terminated
    assert graph.cycle_depth == k - 1
    print(f"\n(Sigma_{k}, I_{k}): chase length {result.length}, "
          f"cycle depth {graph.cycle_depth} -> (k-1)-cyclic, not k-cyclic")


@pytest.mark.paper_artifact("Proposition 11")
@pytest.mark.parametrize("k", [4, 6])
def test_pay_as_you_go_curve(benchmark, k):
    """The first cycle limit that lets the chase finish is exactly k."""
    sigma, inst = prop11_family(k)

    def run():
        return pay_as_you_go(inst, sigma, max_cycle_limit=k + 2)

    result = benchmark(run)
    assert not result.aborted
    assert result.cycle_limit == k


@pytest.mark.paper_artifact("Section 4.2")
def test_monitoring_overhead(benchmark):
    """Monitored vs plain chase on a terminating workload: the
    overhead of maintaining the monitor graph."""
    sigma = parse_constraints("S(x), E(x,y) -> E(y,z)")
    inst = special_nodes_instance(24, spacing=2)

    def run():
        return monitored_chase(inst, sigma, cycle_limit=10,
                               max_steps=100_000)

    result = benchmark(run)
    assert not result.aborted


@pytest.mark.paper_artifact("Section 4.2")
def test_plain_chase_baseline(benchmark):
    sigma = parse_constraints("S(x), E(x,y) -> E(y,z)")
    inst = special_nodes_instance(24, spacing=2)

    def run():
        return chase(inst, sigma, max_steps=100_000)

    result = benchmark(run)
    assert result.terminated


@pytest.mark.paper_artifact("Section 4.2")
def test_divergence_caught_early(benchmark):
    """On the divergent intro set the monitor aborts after O(limit)
    steps -- versus a 10^4-step timeout for blind budgeting."""
    sigma = parse_constraints("S(x) -> E(x,y), S(y)")
    inst = parse_instance("S(a)")

    def run():
        return monitored_chase(inst, sigma, cycle_limit=3,
                               max_steps=100_000)

    result = benchmark(run)
    assert result.aborted
    assert result.result.length < 25
