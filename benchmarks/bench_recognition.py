"""Proposition 1, Lemma 2, Propositions 3/4: recognition costs.

Measures the wall-clock cost of each recognizer as the number of
constraints grows (random corpora), and the safety fast-path ablation
of the Figure 8 ``check`` algorithm (Section 3.7's motivation).
"""

import pytest

from repro.termination import (check, in_t_level, is_inductively_restricted,
                               is_safe, is_stratified, is_weakly_acyclic,
                               PrecedenceOracle)
from repro.termination.restriction import minimal_restriction_system, part
from repro.workloads.generators import random_constraint_set
from repro.workloads.paper import section37_sigma_double_prime

SIZES = [2, 4, 6]


@pytest.mark.paper_artifact("polynomial recognizers")
@pytest.mark.parametrize("size", SIZES)
def test_weak_acyclicity_cost(benchmark, size):
    sigma = random_constraint_set(seed=size, size=size)
    assert benchmark(is_weakly_acyclic, sigma) in (True, False)


@pytest.mark.paper_artifact("polynomial recognizers")
@pytest.mark.parametrize("size", SIZES)
def test_safety_cost(benchmark, size):
    sigma = random_constraint_set(seed=size, size=size)
    assert benchmark(is_safe, sigma) in (True, False)


@pytest.mark.paper_artifact("Proposition 1 (coNP)")
@pytest.mark.parametrize("size", SIZES)
def test_stratification_cost(benchmark, size):
    sigma = random_constraint_set(seed=size, size=size)

    def run():
        return is_stratified(sigma, PrecedenceOracle())

    assert benchmark(run) in (True, False)


@pytest.mark.paper_artifact("Lemma 2 (coNP)")
@pytest.mark.parametrize("size", SIZES)
def test_inductive_restriction_cost(benchmark, size):
    sigma = random_constraint_set(seed=size, size=size)

    def run():
        return is_inductively_restricted(sigma, PrecedenceOracle())

    assert benchmark(run) in (True, False)


@pytest.mark.paper_artifact("Figure 8 ablation")
def test_check_with_safety_fast_path(benchmark):
    """check() on Sigma'' -- the walkthrough set where the fast-path
    certifies {a5} without a restriction system."""
    sigma = section37_sigma_double_prime()

    def run():
        return check(sigma, 2, PrecedenceOracle())

    assert benchmark(run) is True


@pytest.mark.paper_artifact("Figure 8 ablation")
def test_part_without_fast_path(benchmark):
    """The ablation baseline: the literal Definition 16 test computes
    restriction systems for every recursive component."""
    sigma = section37_sigma_double_prime()

    def run():
        return in_t_level(sigma, 2, PrecedenceOracle())

    assert benchmark(run) is True


@pytest.mark.paper_artifact("Proposition 4")
def test_restriction_system_cost(benchmark):
    """Cost of one minimal 2-restriction-system fixpoint."""
    sigma = section37_sigma_double_prime()

    def run():
        return minimal_restriction_system(sigma, 2, PrecedenceOracle())

    system = benchmark(run)
    assert len(system.edges()) >= 4
