"""Benchmark-suite configuration.

Every benchmark regenerates a figure/example/theorem artifact of the
paper and asserts its shape, while pytest-benchmark reports the
timing.  Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper_artifact(name): which figure/table the "
        "benchmark regenerates")
