"""Figure 1: the termination-condition landscape.

Regenerates the full membership matrix (every paper constraint set x
every condition), asserts all strict-inclusion witnesses, and times
each recognizer on the corpus.  The printed matrix *is* Figure 1 in
tabular form.
"""

import pytest

from repro.termination import (is_c_stratified, is_inductively_restricted,
                               is_safe, is_safely_restricted, is_stratified,
                               is_weakly_acyclic, PrecedenceOracle)
from repro.workloads.paper import NAMED_SETS

#: (set name) -> expected row: WA, safe, c-strat, strat, safe-R, IR
EXPECTED = {
    "intro_alpha1":        (True, True, True, True, True, True),
    "intro_alpha2":        (False, False, False, False, False, False),
    "intro_alpha3":        (False, True, True, True, True, True),
    "intro_betas":         (False, False, False, False, True, True),
    "intro_betas_ext":     (False, False, False, False, False, True),
    "figure2":             (False, False, False, False, False, False),
    "example2_gamma":      (False, False, True, True, True, True),
    "example4":            (False, False, False, True, False, False),
    "example8_beta":       (False, True, True, True, True, True),
    "thm4_safe_not_strat": (False, True, False, False, True, True),
    "example10":           (False, False, False, False, True, True),
    "example13":           (False, False, False, False, False, True),
    "sigma_double_prime":  (False, False, False, False, False, True),
    "figure9":             (False, False, False, False, False, False),
    "example17":           (False, False, False, False, False, False),
    "example19":           (False, False, True, True, True, True),
}

CONDITIONS = [
    ("weakly_acyclic", lambda s, o: is_weakly_acyclic(s)),
    ("safe", lambda s, o: is_safe(s)),
    ("c_stratified", lambda s, o: is_c_stratified(s, o)),
    ("stratified", lambda s, o: is_stratified(s, o)),
    ("safely_restricted", lambda s, o: is_safely_restricted(s, o)),
    ("inductively_restricted",
     lambda s, o: is_inductively_restricted(s, o)),
]


def _full_matrix(oracle):
    matrix = {}
    for name, (factory, _description) in NAMED_SETS.items():
        sigma = factory()
        matrix[name] = tuple(fn(sigma, oracle) for _n, fn in CONDITIONS)
    return matrix


@pytest.mark.paper_artifact("Figure 1")
def test_figure1_matrix(benchmark):
    """Times the full 16-set x 6-condition classification sweep and
    asserts every membership against the paper."""
    oracle = PrecedenceOracle()
    _full_matrix(oracle)  # warm the oracle cache once
    matrix = benchmark(_full_matrix, oracle)
    failures = []
    for name, expected in EXPECTED.items():
        if matrix[name] != expected:
            failures.append((name, expected, matrix[name]))
    print("\nFigure 1 membership matrix "
          "(WA, safe, c-strat, strat, safe-R, IR):")
    for name, row in matrix.items():
        marks = " ".join("X" if v else "." for v in row)
        print(f"  {name:<22} {marks}")
    assert not failures, failures


@pytest.mark.paper_artifact("Figure 1")
@pytest.mark.parametrize("condition_name,fn", CONDITIONS,
                         ids=[n for n, _f in CONDITIONS])
def test_single_condition_cost(benchmark, condition_name, fn):
    """Per-condition cost over the corpus: the polynomial checks (WA,
    safety) should be orders of magnitude cheaper than the coNP ones."""
    corpus = [factory() for factory, _d in NAMED_SETS.values()]
    oracle = PrecedenceOracle()
    for sigma in corpus:  # warm cache so timing reflects steady state
        fn(sigma, oracle)

    def sweep():
        return [fn(sigma, oracle) for sigma in corpus]

    benchmark(sweep)
