"""Example 15 / Proposition 5: the T-hierarchy frontier.

Verifies and times the frontier of the parameterized family
``Sigma_m`` (``Sigma_2`` = Figure 2): ``Sigma_m`` admits length-m
firing chains but no length-(m+1) ones, hence lies in T[m+1] \\ T[m].
The cost of the exhaustive negative chain search is the measured face
of the coNP recognition bound (Proposition 4).
"""

import pytest

from repro.termination import in_t_level, PrecedenceOracle, precedes_k
from repro.workloads.families import sigma_family


@pytest.mark.paper_artifact("Example 15")
def test_sigma2_in_t3_not_t2(benchmark):
    """Figure 2's constraint: T[3] \\ T[2]."""
    sigma = sigma_family(2)

    def run():
        oracle = PrecedenceOracle()
        return (in_t_level(sigma, 2, oracle), in_t_level(sigma, 3, oracle))

    in_t2, in_t3 = benchmark(run)
    assert not in_t2 and in_t3


@pytest.mark.paper_artifact("Example 15")
@pytest.mark.parametrize("m", [2, 3, 4])
def test_chain_relation_positive(benchmark, m):
    """<_{m, empty}(alpha, ..., alpha) holds for Sigma_m: the witness
    search is fast because a witness exists."""
    (alpha,) = sigma_family(m)

    def run():
        return PrecedenceOracle().precedes_k((alpha,) * m, [])

    assert benchmark(run) is True


@pytest.mark.paper_artifact("Example 15")
@pytest.mark.parametrize("m", [2])
def test_chain_relation_negative(benchmark, m):
    """<_{m+1, empty} fails for Sigma_m: the search must be exhaustive
    -- this is where the coNP cost lives."""
    (alpha,) = sigma_family(m)

    def run():
        return PrecedenceOracle().precedes_k((alpha,) * (m + 1), [])

    assert benchmark(run) is False


@pytest.mark.paper_artifact("Example 15 / Proposition 5c")
def test_sigma3_frontier(benchmark):
    """Sigma_3 in T[4] \\ T[3] -- the strictness witness one level up.
    Single exhaustive run (several seconds of chain search)."""
    sigma = sigma_family(3)

    def run():
        oracle = PrecedenceOracle()
        return (in_t_level(sigma, 3, oracle), in_t_level(sigma, 4, oracle))

    in_t3, in_t4 = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not in_t3 and in_t4
    print("\nSigma_3 in T[4] \\ T[3]: hierarchy strict at level 4")
