"""Example 4 / Theorems 1-3: the stratification refutation.

Regenerates the paper's counterexample run: under the round-robin
order the chase of {R(a)} diverges (we measure steps-to-budget), while
Theorem 2's stratum order terminates in a handful of steps.  Also
times the Theorem 2 strata construction itself.
"""

import pytest

from repro.chase import chase, ChaseStatus, RoundRobinStrategy
from repro.termination import chase_strata, is_c_stratified, is_stratified
from repro.termination.stratification import stratified_strategy
from repro.workloads.paper import (example4, example4_instance,
                                   example5_instance)


@pytest.mark.paper_artifact("Example 4")
def test_naive_order_diverges(benchmark):
    sigma = example4()

    def run():
        return chase(example4_instance(), sigma,
                     strategy=RoundRobinStrategy(), max_steps=300)

    result = benchmark(run)
    assert result.status is ChaseStatus.EXCEEDED_BUDGET
    print(f"\nround-robin: still violated after {result.length} steps, "
          f"{result.new_null_count()} fresh nulls created")


@pytest.mark.paper_artifact("Example 5 / Theorem 2")
def test_theorem2_order_terminates(benchmark):
    sigma = example4()
    strata = chase_strata(sigma)

    def run():
        from repro.chase import StratifiedStrategy
        return chase(example4_instance(), sigma,
                     strategy=StratifiedStrategy(strata), max_steps=300)

    result = benchmark(run)
    assert result.terminated
    print(f"\nTheorem 2 order: terminated in {result.length} steps; "
          f"strata = {[[c.label for c in s] for s in strata]}")


@pytest.mark.paper_artifact("Example 5")
def test_example5_instance_run(benchmark):
    sigma = example4()
    strategy_strata = chase_strata(sigma)

    def run():
        from repro.chase import StratifiedStrategy
        return chase(example5_instance(), sigma,
                     strategy=StratifiedStrategy(strategy_strata),
                     max_steps=300)

    result = benchmark(run)
    assert result.terminated
    # the paper's hand-run shows 4 chase arrows from {R(a), T(b,b)}
    assert result.length == 4, result.describe()


@pytest.mark.paper_artifact("Theorems 1-3")
def test_classification_cost(benchmark):
    """Time the stratified / c-stratified classification that drives
    the counterexample (strat = True, c-strat = False)."""
    sigma = example4()

    def classify():
        from repro.termination import PrecedenceOracle
        oracle = PrecedenceOracle()  # cold cache: honest cost
        return (is_stratified(sigma, oracle),
                is_c_stratified(sigma, oracle))

    stratified, c_stratified = benchmark(classify)
    assert stratified and not c_stratified
