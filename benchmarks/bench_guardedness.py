"""Section 5 / Example 19 / Lemma 7: restricted vs weak guardedness.

Measures (a) how much larger the RGTGD class is than WGTGD on a random
guarded-ish corpus (the paper's generalization claim, Lemma 7b), and
(b) the cost of certain-answer computation on a non-terminating KB.
"""

import pytest

from repro.kb import (certain_answers, is_restrictedly_guarded,
                      is_weakly_guarded, treewidth_upper_bound,
                      lemma6_bound, depth_bounded_chase)
from repro.lang.parser import parse_constraints, parse_instance, parse_query
from repro.workloads.generators import random_constraint_set
from repro.workloads.paper import example19


@pytest.mark.paper_artifact("Example 19")
def test_example19_separation(benchmark):
    sigma = example19()

    def run():
        from repro.termination import PrecedenceOracle
        oracle = PrecedenceOracle()
        return (is_weakly_guarded(sigma),
                is_restrictedly_guarded(sigma, oracle))

    wg, rg = benchmark(run)
    assert not wg and rg


@pytest.mark.paper_artifact("Lemma 7")
def test_rg_vs_wg_on_corpus(benchmark):
    """Across a random corpus: every WG set is RG (Lemma 7a) and RG
    recognizes at least as many sets (strictly more via Example 19)."""
    corpus = [random_constraint_set(seed, size=3, n_relations=3,
                                    max_arity=2,
                                    existential_probability=0.5)
              for seed in range(12)]

    def run():
        from repro.termination import PrecedenceOracle
        oracle = PrecedenceOracle()
        wg = [is_weakly_guarded(sigma) for sigma in corpus]
        rg = [is_restrictedly_guarded(sigma, oracle) for sigma in corpus]
        return wg, rg

    wg, rg = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(not w or r for w, r in zip(wg, rg)), "Lemma 7a violated"
    print(f"\ncorpus of {len(corpus)}: WG recognizes {sum(wg)}, "
          f"RG recognizes {sum(rg)}")


@pytest.mark.paper_artifact("Corollary 1")
def test_certain_answers_on_divergent_kb(benchmark):
    sigma = parse_constraints("""
        person(x) -> parent(x, y), person(y);
        parent(x, y) -> ancestor(x, y);
        parent(x, y), ancestor(y, z) -> ancestor(x, z)
    """)
    kb = parse_instance("person(alice). parent(alice, bob). person(bob)")
    query = parse_query("q(x, y) <- ancestor(x, y)")

    def run():
        return certain_answers(kb, sigma, query, max_steps=150)

    answers = benchmark(run)
    assert len(answers) == 1  # only (alice, bob) is a constant answer


@pytest.mark.paper_artifact("Lemma 6")
def test_treewidth_bound(benchmark):
    """The guarded prefix stays within Lemma 6's treewidth bound."""
    sigma = parse_constraints("R(x,y), S(y) -> R(y,z)")
    inst = parse_instance("R(a,b). S(b). S(a). R(b,a)")

    def run():
        bounded = depth_bounded_chase(inst, sigma, depth_limit=4)
        return treewidth_upper_bound(bounded.instance)

    width = benchmark(run)
    assert width <= lemma6_bound(inst, 2)
    print(f"\nchase-prefix treewidth <= {width}, "
          f"Lemma 6 bound = {lemma6_bound(inst, 2)}")
