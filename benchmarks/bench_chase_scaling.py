"""Theorems 3, 5, 6, 7: polynomial data complexity of the chase.

For one representative constraint set per termination class, runs the
chase over growing instances and checks that the sequence length grows
polynomially in |dom(I)| (log-log slope bounded by a small constant).
The paper proves the bounds; the bench measures the actual curves.

Also measures the semi-naive trigger index against the naive
re-enumeration path (``chase(..., naive=True)``): the incremental
index turns the per-step trigger search from "all homomorphisms" into
"homomorphisms through the step's delta", which shows up as a
super-linear speedup at the largest sizes.

Since the storage-layer refactor it additionally measures the
``ColumnStore`` backend plus compiled join plans against the
reference path preserved from the incremental-index era
(:func:`repro.homomorphism.engine.reference_engine` on the ``set``
backend): on the cross-product workload family the columnar access
paths compose with the lazy trigger expansion into a >=2x end-to-end
speedup at the largest sizes.

Since the service-layer PR it also measures **batch throughput**: a
mixed batch of workload-family jobs through the
:mod:`repro.service` scheduler with 1 vs. N workers and a cold vs.
warm fingerprint cache (the warm pass must execute nothing).

Since the query-subsystem PR it additionally measures **certain-answer
query throughput**: compiled id-level CQ evaluation
(:mod:`repro.cq.evaluate`) against the pre-plan reference loop on a
join-heavy query family, and a mixed :class:`QueryJob` batch through
the scheduler cold vs. warm (the warm pass must execute nothing).

Since the kernel-layer PR it additionally measures the
**column-at-a-time batch path**: compiled CQ evaluation with the
vectorized kernels enabled vs. pinned to the tuple path
(:func:`repro.homomorphism.engine.batch_disabled`), plus a
no-regression guard on the cross-product chase family with batch
routing live (the chase proper stays tuple-at-a-time by design --
see ``docs/PAPER_MAP.md`` -- so end-to-end chase times must not
move).

Set ``REPRO_BENCH_SIZES`` (comma-separated, e.g. ``4,8``) to shrink
the sweep -- used by the CI smoke job.  ``make bench-json`` writes the
timings to ``BENCH_chase_scaling.json`` so the perf trajectory is
tracked across PRs and ``tools/check_bench.py`` can flag regressions
against the committed baseline.
"""

import math
import os
import time

import pytest

from repro.chase import chase
from repro.homomorphism.engine import (null_renaming_equivalent,
                                       reference_engine)
from repro.workloads.families import example9_instance, special_nodes_instance
from repro.workloads.paper import (example8_beta, example10, example13,
                                   example2_gamma, figure2)
from repro.lang.atoms import Atom
from repro.lang.instance import Instance
from repro.lang.parser import parse_constraints
from repro.lang.terms import Constant

SIZES = [int(s) for s in os.environ.get("REPRO_BENCH_SIZES",
                                        "4,8,16,32").split(",")
         if s.strip()] or [4, 8, 16, 32]


def _graph_instance(n):
    return special_nodes_instance(n, spacing=2)


CLASSES = [
    ("safe_example9", example8_beta, example9_instance, "Theorem 5"),
    ("c_stratified_gamma", example2_gamma,
     lambda n: Instance([Atom("E", (a, b)) for a, b in _cycle_pairs(n)]),
     "Theorem 3"),
    ("inductively_restricted_ex13", example13, _graph_instance, "Theorem 6"),
    ("t3_figure2", figure2, _graph_instance, "Theorem 7"),
]


def _cycle_pairs(n):
    from repro.lang.terms import Constant
    out = []
    for i in range(n):
        out.append((Constant(f"c{i}"), Constant(f"c{(i+1) % n}")))
        out.append((Constant(f"c{(i+1) % n}"), Constant(f"c{i}")))
    return out


def _measure_lengths(factory, instance_builder):
    lengths = []
    domains = []
    for size in SIZES:
        inst = instance_builder(size)
        result = chase(inst, factory(), max_steps=2_000_000)
        assert result.terminated, f"size {size} did not terminate"
        lengths.append(max(result.length, 1))
        domains.append(max(len(inst.domain()), 2))
    return domains, lengths


@pytest.mark.paper_artifact("Theorems 3/5/6/7")
@pytest.mark.parametrize("name,factory,instance_builder,theorem", CLASSES,
                         ids=[c[0] for c in CLASSES])
def test_polynomial_chase_length(benchmark, name, factory,
                                 instance_builder, theorem):
    domains, lengths = benchmark(_measure_lengths, factory,
                                 instance_builder)
    # log-log slope between the extreme points
    slope = (math.log(lengths[-1] / lengths[0])
             / math.log(domains[-1] / domains[0]))
    print(f"\n{theorem} [{name}]: dom sizes {domains} -> "
          f"chase lengths {lengths} (log-log slope {slope:.2f})")
    assert slope <= 3.5, (
        f"{name}: chase length grows superpolynomially-looking "
        f"(slope {slope:.2f})")


@pytest.mark.paper_artifact("Theorem 5")
def test_incremental_trigger_index_speedup(benchmark):
    """Semi-naive vs naive trigger discovery at the largest size.

    Both paths must agree on the chase result; the incremental path
    must not be slower (it is typically several times faster, with the
    gap widening super-linearly in the instance size).
    """
    factory, builder = example8_beta, example9_instance
    inst = builder(max(SIZES))

    def run_incremental():
        return chase(inst, factory(), max_steps=2_000_000)

    naive = chase(inst, factory(), max_steps=2_000_000, naive=True)
    result = benchmark(run_incremental)
    assert result.terminated and naive.terminated
    assert result.length == naive.length
    # Best-of-N wall clocks on both sides: robust against one-off
    # scheduler stalls that would make a single-shot ratio flaky.
    naive_seconds = _best_of(
        lambda: chase(inst, factory(), max_steps=2_000_000, naive=True))
    incremental_seconds = _best_of(run_incremental)
    speedup = naive_seconds / incremental_seconds
    print(f"\nincremental trigger index: {incremental_seconds:.4f}s vs "
          f"naive {naive_seconds:.4f}s at n={max(SIZES)} "
          f"(x{speedup:.1f} speedup)")
    if max(SIZES) >= 16:  # below that, timings are noise-dominated
        assert speedup >= 1.2, (
            f"incremental path not faster than naive (x{speedup:.2f})")


def _crossprod_family(n):
    """The storage-layer workload: a divergent TGD with a
    cross-product body over a wide side relation.

    ``E(x, y), S(u) -> E(y, z)`` makes every chase step expand one
    delta edge against the full (never-growing) ``S`` relation.  The
    PR 1 engine snapshots (copies) ``S`` per scan and re-walks it on
    every resumed enumeration; the columnar backend streams the scan
    lazily and the compiled plan abandons it outright once the
    frontier is known satisfied (``S`` binds no frontier variable) --
    O(1) per selection instead of O(|S|).
    """
    sigma = parse_constraints("d: E(x,y), S(u) -> E(y,z)")
    facts = [Atom("E", (Constant(f"c{i}"), Constant(f"c{i+1}")))
             for i in range(n)]
    facts += [Atom("S", (Constant(f"s{i}"),)) for i in range(8 * n)]
    return sigma, facts


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return max(best, 1e-9)


@pytest.mark.paper_artifact("storage layer")
def test_column_store_backend_speedup(benchmark):
    """ColumnStore + compiled join plans vs the PR 1 incremental path.

    The baseline is the engine exactly as the incremental trigger
    index shipped it (``reference_engine()``) on the ``set`` backend;
    both sides run the same semi-naive chase and must agree on status
    and length (full result cross-validation, including
    ``null_renaming_equivalent``, lives in tests/storage/).
    """
    n = max(SIZES)
    sigma, facts = _crossprod_family(n)
    budget = 60 * n

    def run_column():
        return chase(Instance(facts, backend="column"), sigma,
                     max_steps=budget)

    def run_reference():
        with reference_engine():
            return chase(Instance(facts, backend="set"), sigma,
                         max_steps=budget)

    column = benchmark(run_column)
    reference = run_reference()
    assert column.status is reference.status
    assert column.length == reference.length == budget
    column_seconds = _best_of(run_column)
    reference_seconds = _best_of(run_reference)
    speedup = reference_seconds / column_seconds
    print(f"\ncolumn backend: {column_seconds:.4f}s vs PR 1 path "
          f"{reference_seconds:.4f}s at n={n} (x{speedup:.1f} speedup)")
    if n >= 32:  # below that, timings are noise-dominated
        assert speedup >= 2.0, (
            f"column backend not >=2x over the PR 1 path (x{speedup:.2f})")


@pytest.mark.paper_artifact("storage layer")
def test_backends_agree_on_terminating_workload(benchmark):
    """Cheap cross-check inside the bench: both backends chase the
    safe workload to homomorphically equivalent results."""
    factory, builder = example8_beta, example9_instance
    facts = list(builder(max(SIZES)))

    def run_both():
        set_result = chase(Instance(facts, backend="set"), factory(),
                           max_steps=2_000_000)
        column_result = chase(Instance(facts, backend="column"), factory(),
                              max_steps=2_000_000)
        return set_result, column_result

    set_result, column_result = benchmark(run_both)
    assert set_result.terminated and column_result.terminated
    assert null_renaming_equivalent(set_result.instance,
                                    column_result.instance)


@pytest.mark.paper_artifact("service layer")
def test_batch_throughput_workers_and_cache(benchmark):
    """Batch service: N mixed jobs through 1 vs. W workers, cold vs.
    warm fingerprint cache.

    Every configuration must produce results identical to sequential
    in-process execution (the per-job null factory makes them exactly
    comparable).  The warm-cache pass must execute nothing and beat
    the cold sequential pass outright; the 1-vs-W ratio is reported
    (process startup dominates at the smallest job sizes, so no
    speedup is asserted for it).
    """
    import os as _os

    from repro.service import BatchScheduler, ChaseJob, ServiceCache
    from repro.workloads.batch import mixed_batch_specs

    n_jobs = max(8, max(SIZES))
    workers = max(2, min(4, _os.cpu_count() or 2))
    specs = mixed_batch_specs(n_jobs, seed=42,
                              min_size=max(4, max(SIZES) // 4),
                              max_size=max(8, max(SIZES)))

    def jobs():
        return [ChaseJob.from_dict(spec) for spec in specs]

    def run_cold(n_workers):
        return BatchScheduler(workers=n_workers).run_batch(jobs())

    results = benchmark(lambda: run_cold(workers))
    reference = [(r.job, r.status, r.facts)
                 for r in BatchScheduler(
                     workers=1, force_inprocess=True).run_batch(jobs())]
    assert [(r.job, r.status, r.facts) for r in results] == reference

    serial_seconds = _best_of(lambda: run_cold(1))
    parallel_seconds = _best_of(lambda: run_cold(workers))

    warm_scheduler = BatchScheduler(workers=workers, cache=ServiceCache())
    warm_scheduler.run_batch(jobs())                     # prime the cache
    executed = warm_scheduler.pool.executed
    warm_seconds = _best_of(lambda: warm_scheduler.run_batch(jobs()))
    assert warm_scheduler.pool.executed == executed      # nothing re-ran
    assert all(r.cached for r in warm_scheduler.run_batch(jobs()))

    print(f"\nbatch of {n_jobs} jobs on {_os.cpu_count()} cpu(s): "
          f"1 worker {serial_seconds:.3f}s, "
          f"{workers} workers {parallel_seconds:.3f}s "
          f"(x{serial_seconds / parallel_seconds:.2f}), warm cache "
          f"{warm_seconds:.4f}s (x{serial_seconds / warm_seconds:.0f} "
          "over cold serial)")
    assert warm_seconds < serial_seconds, (
        "warm-cache batch not faster than cold sequential execution")


@pytest.mark.paper_artifact("Section 5 / query subsystem")
def test_compiled_query_evaluation_speedup(benchmark):
    """Compiled id-level CQ evaluation vs the reference loop on a
    join-heavy query family.

    A three-hop join with selective endpoint filters over a random
    digraph: the compiled plan orders the body by selectivity (the
    ``S`` filters first), joins over interned ids and deduplicates
    head images before decoding, where the reference loop enumerates
    every homomorphism in body order with a term-level dict per match.
    Answers must be identical; at the largest size the compiled path
    must be at least 2x faster (typically ~5x).
    """
    from repro.cq.evaluate import compiled_answers, reference_answers
    from repro.lang.parser import parse_query
    from repro.workloads.generators import random_graph_instance

    n = max(SIZES)
    facts = sorted(random_graph_instance(1, n_nodes=n,
                                         edge_probability=0.3).facts(),
                   key=str)
    column = Instance(facts, backend="column")
    reference_instance = Instance(facts, backend="set")
    query = parse_query(
        "q(a, d) <- E(a, b), E(b, c), E(c, d), S(a), S(d)")

    compiled = benchmark(lambda: compiled_answers(query, column))
    reference = reference_answers(query, reference_instance)
    assert compiled == reference

    compiled_seconds = _best_of(lambda: compiled_answers(query, column))
    reference_seconds = _best_of(
        lambda: reference_answers(query, reference_instance))
    speedup = reference_seconds / compiled_seconds
    print(f"\ncompiled CQ evaluation: {compiled_seconds:.4f}s vs "
          f"reference {reference_seconds:.4f}s at n={n} "
          f"({len(compiled)} answers, x{speedup:.1f} speedup)")
    if n >= 32:  # below that, timings are noise-dominated
        assert speedup >= 2.0, (
            f"compiled CQ evaluation not >=2x over the reference "
            f"loop (x{speedup:.2f})")


@pytest.mark.paper_artifact("kernel layer")
def test_batch_query_evaluation_speedup(benchmark):
    """Compiled CQ evaluation with the column-at-a-time kernels vs.
    the same compiled plan pinned to the tuple path.

    Both sides run identical plans on the ``column`` backend -- order
    selection, interning, projection push-down all shared -- so the
    ratio isolates the batch execution model (posting-list
    intersection + build/probe hash joins over column vectors against
    per-tuple backtracking).  Answers must be identical; at the
    largest size the batch path must be at least 2x faster
    (typically ~7x).
    """
    from repro.cq.evaluate import compiled_answers
    from repro.homomorphism.engine import batch_disabled
    from repro.lang.parser import parse_query
    from repro.workloads.generators import random_graph_instance

    n = max(SIZES)
    facts = sorted(random_graph_instance(1, n_nodes=n,
                                         edge_probability=0.3).facts(),
                   key=str)
    column = Instance(facts, backend="column")
    query = parse_query(
        "q(a, d) <- E(a, b), E(b, c), E(c, d), S(a), S(d)")

    batch = benchmark(lambda: compiled_answers(query, column))
    with batch_disabled():
        tuple_answers = compiled_answers(query, column)
    assert batch == tuple_answers

    batch_seconds = _best_of(lambda: compiled_answers(query, column))

    def run_tuple():
        with batch_disabled():
            return compiled_answers(query, column)

    tuple_seconds = _best_of(run_tuple)
    speedup = tuple_seconds / batch_seconds
    print(f"\nbatch CQ evaluation: {batch_seconds:.4f}s vs tuple path "
          f"{tuple_seconds:.4f}s at n={n} ({len(batch)} answers, "
          f"x{speedup:.1f} speedup)")
    if n >= 32:  # below that, timings are noise-dominated
        assert speedup >= 2.0, (
            f"batch CQ evaluation not >=2x over the tuple path "
            f"(x{speedup:.2f})")


@pytest.mark.paper_artifact("kernel layer")
def test_chase_unharmed_by_batch_routing(benchmark):
    """The cross-product chase family with batch routing live vs.
    pinned off.

    The chase's semi-naive searches carry stateful prune predicates
    and tiny pinned residuals, so the routing guards keep them on the
    tuple path -- end-to-end chase times must be unchanged (a guard
    against the batch path leaking into workloads it pessimizes).
    Results must agree exactly.
    """
    from repro.homomorphism.engine import batch_disabled

    n = max(SIZES)
    sigma, facts = _crossprod_family(n)
    budget = 60 * n

    def run_routed():
        return chase(Instance(facts, backend="column"), sigma,
                     max_steps=budget)

    def run_pinned():
        with batch_disabled():
            return chase(Instance(facts, backend="column"), sigma,
                         max_steps=budget)

    routed = benchmark(run_routed)
    pinned = run_pinned()
    assert routed.status is pinned.status
    assert routed.length == pinned.length == budget
    routed_seconds = _best_of(run_routed)
    pinned_seconds = _best_of(run_pinned)
    ratio = routed_seconds / pinned_seconds
    print(f"\nchase with batch routing: {routed_seconds:.4f}s vs "
          f"batch-disabled {pinned_seconds:.4f}s at n={n} "
          f"(ratio {ratio:.2f})")
    if n >= 32:  # below that, timings are noise-dominated
        assert ratio <= 1.25, (
            f"batch routing slowed the chase down (x{ratio:.2f} of the "
            f"tuple-pinned time)")


@pytest.mark.paper_artifact("Section 5 / query subsystem")
def test_query_service_throughput_and_cache(benchmark):
    """A mixed certain-answer batch through the scheduler, cold vs.
    warm fingerprint cache.

    Every result must match plain sequential in-process execution
    (answers are constants-only, hence byte-comparable across
    workers), and the warm pass must execute nothing and beat the
    cold pass outright.
    """
    from repro.service import BatchScheduler, job_from_dict, ServiceCache
    from repro.workloads.batch import query_batch_specs

    n_jobs = max(8, max(SIZES) // 2)
    specs = query_batch_specs(n_jobs, seed=42,
                              min_size=max(4, max(SIZES) // 4),
                              max_size=max(8, max(SIZES) // 2))

    def jobs():
        return [job_from_dict(spec) for spec in specs]

    def run_cold():
        with BatchScheduler(workers=1,
                            force_inprocess=True) as scheduler:
            return scheduler.run_batch(jobs())

    results = benchmark(run_cold)
    assert all(result.ok for result in results)

    cold_seconds = _best_of(run_cold)
    warm_scheduler = BatchScheduler(workers=1, cache=ServiceCache(),
                                    force_inprocess=True)
    reference = warm_scheduler.run_batch(jobs())        # prime the cache
    assert ([(r.job, r.status, r.answers) for r in results]
            == [(r.job, r.status, r.answers) for r in reference])
    executed = warm_scheduler.pool.executed
    warm_seconds = _best_of(lambda: warm_scheduler.run_batch(jobs()))
    assert warm_scheduler.pool.executed == executed     # nothing re-ran
    assert all(r.cached for r in warm_scheduler.run_batch(jobs()))
    warm_scheduler.close()

    print(f"\nquery batch of {n_jobs} jobs: cold {cold_seconds:.3f}s, "
          f"warm cache {warm_seconds:.4f}s "
          f"(x{cold_seconds / warm_seconds:.0f})")
    assert warm_seconds < cold_seconds, (
        "warm-cache query batch not faster than cold execution")


@pytest.mark.paper_artifact("Introduction")
def test_divergent_set_for_contrast(benchmark):
    """The divergent intro set burns its entire budget at every size --
    the contrast curve for the polynomial classes above."""
    from repro.workloads.paper import intro_alpha2
    sigma = intro_alpha2()

    def run():
        return chase(special_nodes_instance(8), sigma, max_steps=500)

    result = benchmark(run)
    assert not result.terminated
    assert result.length == 500


@pytest.mark.paper_artifact("observability")
def test_observability_disabled_overhead(benchmark):
    """The obs no-op fast path on a real chase family.

    Since the observability PR every layer carries ``if OBS.enabled:``
    guards; switched off (the default) they must cost nothing
    measurable -- the committed-baseline gate (``tools/check_bench.py``
    over the pre-obs chase-family timings) holds the line across PRs,
    and this bench additionally measures the *enabled* cost in the
    same process.  Both passes must chase identically, the disabled
    pass must leave the registry untouched, and metrics + sampled
    tracing together must stay within 1.5x of the disabled path
    (the ISSUE budget is 5% for *disabled*, not for enabled --
    enabled pays for real dict writes).
    """
    from repro.obs import metrics, trace
    from repro.obs.trace import Tracer

    factory, builder = example8_beta, example9_instance
    inst = builder(max(SIZES))

    def run_chase():
        return chase(inst, factory(), max_steps=2_000_000)

    metrics.enable(False)
    metrics.reset()
    result = benchmark(run_chase)
    assert result.terminated
    assert metrics.OBS.empty()          # zero writes on the fast path
    disabled_seconds = _best_of(run_chase)

    metrics.enable()
    try:
        with trace.tracing(Tracer(lambda record: None, sample=100)):
            enabled_result = run_chase()
            enabled_seconds = _best_of(run_chase)
    finally:
        metrics.enable(False)
    assert enabled_result.length == result.length
    assert metrics.OBS.counters["chase.runs"] >= 1
    metrics.reset()

    overhead = enabled_seconds / disabled_seconds
    print(f"\nobs overhead: disabled {disabled_seconds:.4f}s, "
          f"enabled+traced {enabled_seconds:.4f}s at n={max(SIZES)} "
          f"(x{overhead:.2f})")
    if max(SIZES) >= 16:  # below that, timings are noise-dominated
        assert overhead <= 1.5, (
            f"enabled observability costs x{overhead:.2f} on the "
            f"chase family (budget: 1.5x)")
