"""Theorems 3, 5, 6, 7: polynomial data complexity of the chase.

For one representative constraint set per termination class, runs the
chase over growing instances and checks that the sequence length grows
polynomially in |dom(I)| (log-log slope bounded by a small constant).
The paper proves the bounds; the bench measures the actual curves.
"""

import math

import pytest

from repro.chase import chase
from repro.workloads.families import special_nodes_instance
from repro.workloads.paper import (example8_beta, example10, example13,
                                   example2_gamma, figure2)
from repro.lang.atoms import Atom
from repro.lang.instance import Instance

SIZES = [4, 8, 16, 32]


def _r_instance(n):
    """Reshape a path into the ternary R/S schema of Example 9."""
    from repro.lang.terms import Constant
    facts = []
    for i in range(n):
        facts.append(Atom("R", (Constant(f"c{i}"), Constant(f"c{i+1}"),
                                Constant(f"c{i}"))))
        facts.append(Atom("S", (Constant(f"c{i}"),)))
    return Instance(facts)


def _graph_instance(n):
    return special_nodes_instance(n, spacing=2)


CLASSES = [
    ("safe_example9", example8_beta, _r_instance, "Theorem 5"),
    ("c_stratified_gamma", example2_gamma,
     lambda n: Instance([Atom("E", (a, b)) for a, b in _cycle_pairs(n)]),
     "Theorem 3"),
    ("inductively_restricted_ex13", example13, _graph_instance, "Theorem 6"),
    ("t3_figure2", figure2, _graph_instance, "Theorem 7"),
]


def _cycle_pairs(n):
    from repro.lang.terms import Constant
    out = []
    for i in range(n):
        out.append((Constant(f"c{i}"), Constant(f"c{(i+1) % n}")))
        out.append((Constant(f"c{(i+1) % n}"), Constant(f"c{i}")))
    return out


def _measure_lengths(factory, instance_builder):
    lengths = []
    domains = []
    for size in SIZES:
        inst = instance_builder(size)
        result = chase(inst, factory(), max_steps=2_000_000)
        assert result.terminated, f"size {size} did not terminate"
        lengths.append(max(result.length, 1))
        domains.append(max(len(inst.domain()), 2))
    return domains, lengths


@pytest.mark.paper_artifact("Theorems 3/5/6/7")
@pytest.mark.parametrize("name,factory,instance_builder,theorem", CLASSES,
                         ids=[c[0] for c in CLASSES])
def test_polynomial_chase_length(benchmark, name, factory,
                                 instance_builder, theorem):
    domains, lengths = benchmark(_measure_lengths, factory,
                                 instance_builder)
    # log-log slope between the extreme points
    slope = (math.log(lengths[-1] / lengths[0])
             / math.log(domains[-1] / domains[0]))
    print(f"\n{theorem} [{name}]: dom sizes {domains} -> "
          f"chase lengths {lengths} (log-log slope {slope:.2f})")
    assert slope <= 3.5, (
        f"{name}: chase length grows superpolynomially-looking "
        f"(slope {slope:.2f})")


@pytest.mark.paper_artifact("Introduction")
def test_divergent_set_for_contrast(benchmark):
    """The divergent intro set burns its entire budget at every size --
    the contrast curve for the polynomial classes above."""
    from repro.workloads.paper import intro_alpha2
    sigma = intro_alpha2()

    def run():
        return chase(special_nodes_instance(8), sigma, max_steps=500)

    result = benchmark(run)
    assert not result.terminated
    assert result.length == 500
