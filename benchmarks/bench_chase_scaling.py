"""Theorems 3, 5, 6, 7: polynomial data complexity of the chase.

For one representative constraint set per termination class, runs the
chase over growing instances and checks that the sequence length grows
polynomially in |dom(I)| (log-log slope bounded by a small constant).
The paper proves the bounds; the bench measures the actual curves.

Also measures the semi-naive trigger index against the naive
re-enumeration path (``chase(..., naive=True)``): the incremental
index turns the per-step trigger search from "all homomorphisms" into
"homomorphisms through the step's delta", which shows up as a
super-linear speedup at the largest sizes.

Set ``REPRO_BENCH_SIZES`` (comma-separated, e.g. ``4,8``) to shrink
the sweep -- used by the CI smoke job.
"""

import math
import os
import time

import pytest

from repro.chase import chase
from repro.workloads.families import example9_instance, special_nodes_instance
from repro.workloads.paper import (example8_beta, example10, example13,
                                   example2_gamma, figure2)
from repro.lang.atoms import Atom
from repro.lang.instance import Instance

SIZES = [int(s) for s in os.environ.get("REPRO_BENCH_SIZES",
                                        "4,8,16,32").split(",")
         if s.strip()] or [4, 8, 16, 32]


def _graph_instance(n):
    return special_nodes_instance(n, spacing=2)


CLASSES = [
    ("safe_example9", example8_beta, example9_instance, "Theorem 5"),
    ("c_stratified_gamma", example2_gamma,
     lambda n: Instance([Atom("E", (a, b)) for a, b in _cycle_pairs(n)]),
     "Theorem 3"),
    ("inductively_restricted_ex13", example13, _graph_instance, "Theorem 6"),
    ("t3_figure2", figure2, _graph_instance, "Theorem 7"),
]


def _cycle_pairs(n):
    from repro.lang.terms import Constant
    out = []
    for i in range(n):
        out.append((Constant(f"c{i}"), Constant(f"c{(i+1) % n}")))
        out.append((Constant(f"c{(i+1) % n}"), Constant(f"c{i}")))
    return out


def _measure_lengths(factory, instance_builder):
    lengths = []
    domains = []
    for size in SIZES:
        inst = instance_builder(size)
        result = chase(inst, factory(), max_steps=2_000_000)
        assert result.terminated, f"size {size} did not terminate"
        lengths.append(max(result.length, 1))
        domains.append(max(len(inst.domain()), 2))
    return domains, lengths


@pytest.mark.paper_artifact("Theorems 3/5/6/7")
@pytest.mark.parametrize("name,factory,instance_builder,theorem", CLASSES,
                         ids=[c[0] for c in CLASSES])
def test_polynomial_chase_length(benchmark, name, factory,
                                 instance_builder, theorem):
    domains, lengths = benchmark(_measure_lengths, factory,
                                 instance_builder)
    # log-log slope between the extreme points
    slope = (math.log(lengths[-1] / lengths[0])
             / math.log(domains[-1] / domains[0]))
    print(f"\n{theorem} [{name}]: dom sizes {domains} -> "
          f"chase lengths {lengths} (log-log slope {slope:.2f})")
    assert slope <= 3.5, (
        f"{name}: chase length grows superpolynomially-looking "
        f"(slope {slope:.2f})")


@pytest.mark.paper_artifact("Theorem 5")
def test_incremental_trigger_index_speedup(benchmark):
    """Semi-naive vs naive trigger discovery at the largest size.

    Both paths must agree on the chase result; the incremental path
    must not be slower (it is typically several times faster, with the
    gap widening super-linearly in the instance size).
    """
    factory, builder = example8_beta, example9_instance
    inst = builder(max(SIZES))

    def run_incremental():
        return chase(inst, factory(), max_steps=2_000_000)

    def best_of(fn, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return max(best, 1e-9)

    naive = chase(inst, factory(), max_steps=2_000_000, naive=True)
    result = benchmark(run_incremental)
    assert result.terminated and naive.terminated
    assert result.length == naive.length
    # Best-of-N wall clocks on both sides: robust against one-off
    # scheduler stalls that would make a single-shot ratio flaky.
    naive_seconds = best_of(
        lambda: chase(inst, factory(), max_steps=2_000_000, naive=True))
    incremental_seconds = best_of(run_incremental)
    speedup = naive_seconds / incremental_seconds
    print(f"\nincremental trigger index: {incremental_seconds:.4f}s vs "
          f"naive {naive_seconds:.4f}s at n={max(SIZES)} "
          f"(x{speedup:.1f} speedup)")
    if max(SIZES) >= 16:  # below that, timings are noise-dominated
        assert speedup >= 1.2, (
            f"incremental path not faster than naive (x{speedup:.2f})")


@pytest.mark.paper_artifact("Introduction")
def test_divergent_set_for_contrast(benchmark):
    """The divergent intro set burns its entire budget at every size --
    the contrast curve for the polynomial classes above."""
    from repro.workloads.paper import intro_alpha2
    sigma = intro_alpha2()

    def run():
        return chase(special_nodes_instance(8), sigma, max_steps=500)

    result = benchmark(run)
    assert not result.terminated
    assert result.length == 500
