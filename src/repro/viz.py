"""Rendering of the paper's graph artifacts: dependency graphs
(Figures 3, 6-left), propagation graphs (Figure 6-right), chase graphs
(Figures 4, 5) and monitor graphs.

Two output formats: Graphviz DOT text (for external tooling) and a
plain-ASCII adjacency listing (for terminals and test fixtures).  No
graphviz binary is required -- DOT is emitted as text.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from repro.datadep.monitor import MonitorGraph
from repro.lang.constraints import Constraint
from repro.termination.dependency_graph import dependency_graph, SPECIAL
from repro.termination.chase_graph import c_chase_graph, chase_graph
from repro.termination.safety import propagation_graph


def _quote(value: str) -> str:
    return '"' + value.replace('"', r'\"') + '"'


def position_graph_to_dot(graph: nx.DiGraph, title: str = "dep") -> str:
    """DOT for a dependency/propagation graph.  Special edges are
    starred and dashed, matching the paper's ``->*`` notation."""
    lines = [f"digraph {title} {{", "  rankdir=LR;"]
    for node in sorted(graph.nodes, key=str):
        lines.append(f"  {_quote(str(node))};")
    for source, target, data in sorted(graph.edges(data=True),
                                       key=lambda e: (str(e[0]), str(e[1]))):
        if data.get(SPECIAL):
            lines.append(f"  {_quote(str(source))} -> {_quote(str(target))}"
                         ' [style=dashed, label="*"];')
        else:
            lines.append(f"  {_quote(str(source))} -> {_quote(str(target))};")
    lines.append("}")
    return "\n".join(lines)


def constraint_graph_to_dot(graph: nx.DiGraph, title: str = "chase") -> str:
    """DOT for a (c-)chase graph or restriction-system graph."""
    lines = [f"digraph {title} {{"]
    for node in sorted(graph.nodes, key=lambda c: c.display_name()):
        lines.append(f"  {_quote(node.display_name())};")
    for source, target in sorted(graph.edges(),
                                 key=lambda e: (e[0].display_name(),
                                                e[1].display_name())):
        lines.append(f"  {_quote(source.display_name())} -> "
                     f"{_quote(target.display_name())};")
    lines.append("}")
    return "\n".join(lines)


def monitor_graph_to_dot(graph: MonitorGraph, title: str = "monitor") -> str:
    """DOT for a monitor graph; edge labels carry (constraint, Pi)."""
    lines = [f"digraph {title} {{"]
    for node in graph.nodes.values():
        positions = ",".join(sorted(map(str, node.positions)))
        lines.append(f"  {_quote(str(node.null))} "
                     f'[label="{node.null}\\n{{{positions}}}"];')
    for edge in graph.edges:
        body = ",".join(sorted(map(str, edge.body_positions)))
        lines.append(
            f"  {_quote(str(edge.source.null))} -> "
            f"{_quote(str(edge.target.null))} "
            f'[label="{edge.constraint.display_name()}, {{{body}}}"];')
    lines.append("}")
    return "\n".join(lines)


def ascii_adjacency(graph: nx.DiGraph, render_node=str) -> str:
    """A deterministic, diffable adjacency listing."""
    lines = []
    for node in sorted(graph.nodes, key=render_node):
        successors = sorted((render_node(s) for s in graph.successors(node)))
        marker = ""
        data = graph.get_edge_data(node, node)
        arrow = ", ".join(successors) if successors else "(none)"
        lines.append(f"{render_node(node)} -> {arrow}{marker}")
    return "\n".join(lines)


def render_figure3(sigma: Iterable[Constraint]) -> str:
    """The dependency graph of Figure 9's constraints (Figure 3)."""
    return position_graph_to_dot(dependency_graph(sigma), title="figure3")


def render_figure4(sigma: Iterable[Constraint]) -> str:
    """The chase graph of Example 4 (Figure 4)."""
    return constraint_graph_to_dot(chase_graph(sigma), title="figure4")


def render_figure5(sigma: Iterable[Constraint]) -> str:
    """The c-chase graph of Example 4 (Figure 5)."""
    return constraint_graph_to_dot(c_chase_graph(sigma), title="figure5")


def render_figure6(sigma: Iterable[Constraint]) -> tuple[str, str]:
    """Dependency and propagation graphs side by side (Figure 6)."""
    return (position_graph_to_dot(dependency_graph(sigma), "figure6_dep"),
            position_graph_to_dot(propagation_graph(sigma), "figure6_prop"))
