"""The guarded null property of chase sequences (Definition 21).

A sequence has the property when every step's grounded body contains
an atom covering all labeled nulls (outside the original instance's
domain) that the step's grounded head consumes.  It is the crucial
structural invariant behind decidable query answering on possibly
infinite chase results (Lemma 6, Theorem 9): it bounds the treewidth
of ``I^Sigma``.  Lemma 7 (third bullet): restricted guardedness forces
it for every sequence.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.chase.step import ChaseStep
from repro.lang.constraints import TGD
from repro.lang.instance import Instance
from repro.lang.terms import GroundTerm, Null


def step_has_guarded_nulls(step: ChaseStep,
                           base_domain: Set[GroundTerm]) -> bool:
    """Does one step satisfy Definition 21's condition?

    The nulls to cover are those parameters that (a) are labeled
    nulls, (b) lie outside ``dom(I)`` (the *original* instance) and
    (c) occur in the grounded head.
    """
    constraint = step.constraint
    if not isinstance(constraint, TGD):
        return True  # EGD heads contain no atoms
    assignment = step.assignment_dict()
    head_params: Set[Null] = set()
    for var in constraint.frontier_variables():
        value = assignment.get(var)
        if isinstance(value, Null) and value not in base_domain:
            head_params.add(value)
    if not head_params:
        return True
    for atom in constraint.body:
        grounded = atom.substitute(assignment)
        if head_params <= set(grounded.args):
            return True
    return False


def sequence_has_guarded_nulls(sequence: Iterable[ChaseStep],
                               initial_instance: Instance) -> bool:
    """Definition 21 for a full recorded sequence."""
    base_domain = set(initial_instance.domain())
    return all(step_has_guarded_nulls(step, base_domain)
               for step in sequence)
