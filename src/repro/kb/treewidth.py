"""Gaifman graphs and treewidth estimation (Section 5, Lemma 6).

The Gaifman graph of an instance connects two domain elements whenever
they co-occur in a fact.  Lemma 6 bounds the treewidth of ``I^Sigma``
by ``|dom(I)| + max arity`` whenever all chase sequences have the
guarded null property; the benchmark harness checks this bound
empirically using networkx's approximation heuristics (exact treewidth
is NP-hard -- an upper bound is all the lemma needs).
"""

from __future__ import annotations

import networkx as nx
from networkx.algorithms.approximation import treewidth_min_degree

from repro.lang.instance import Instance


def gaifman_graph(instance: Instance) -> nx.Graph:
    """Nodes are domain elements; edges join co-occurring elements."""
    graph = nx.Graph()
    graph.add_nodes_from(instance.domain())
    for fact in instance:
        args = list(dict.fromkeys(fact.args))
        for i, left in enumerate(args):
            for right in args[i + 1:]:
                graph.add_edge(left, right)
    return graph


def treewidth_upper_bound(instance: Instance) -> int:
    """An upper bound on the treewidth of the instance's Gaifman graph
    (min-degree heuristic; 0 for empty/edgeless instances)."""
    graph = gaifman_graph(instance)
    if graph.number_of_edges() == 0:
        return 0
    width, _decomposition = treewidth_min_degree(graph)
    return width


def lemma6_bound(initial_instance: Instance, max_arity: int) -> int:
    """Lemma 6's bound: ``|dom(I)| + max{ar(R)}``."""
    return len(initial_instance.domain()) + max_arity
