"""Certain-answer computation over knowledge bases (Section 5,
Theorem 9 / Corollary 1).

When the chase terminates, ``q(I^Sigma)`` is computed exactly.  When
it may not, the paper appeals to the algorithms of Cali-Gottlob-Kifer
[5, 6], which exploit the guarded null property: the relevant part of
the (possibly infinite) chase is its *guarded chase forest* up to a
depth determined by the query.  We implement that standard truncation
directly -- a **depth-bounded chase** that refuses to create nulls of
derivation depth beyond a limit -- and evaluate the query on the
finite prefix, restricting answers to non-null tuples.  DESIGN.md
records this as the one substitution in the reproduction: it exercises
the same decidability mechanism (finite-treewidth prefixes) without
re-implementing [5]'s alternating algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.chase.result import ChaseResult, ChaseStatus
from repro.chase.runner import chase
from repro.chase.step import apply_step
from repro.cq.query import ConjunctiveQuery
from repro.homomorphism.engine import find_homomorphisms
from repro.homomorphism.extend import head_extends
from repro.lang.constraints import Constraint, EGD, TGD
from repro.lang.errors import ChaseFailure
from repro.lang.instance import Instance
from repro.lang.terms import GroundTerm, Null


@dataclass
class BoundedChaseResult:
    """The finite prefix produced by the depth-bounded chase."""

    instance: Instance
    depth_limit: int
    truncated: bool          # True when some trigger was suppressed
    steps: int
    null_depths: Dict[Null, int]


def depth_bounded_chase(instance: Instance, sigma: Iterable[Constraint],
                        depth_limit: int,
                        max_steps: int = 50_000) -> BoundedChaseResult:
    """Chase, but never create nulls of derivation depth beyond
    ``depth_limit``.

    The *depth* of a null is ``1 +`` the maximum depth of the nulls in
    its creating trigger (base-instance values have depth 0) -- the
    guarded-chase-forest level of [5] and the quantity that
    c-chase graphs / k-restriction systems bound data-independently
    (proofs of Theorems 3 and 7, citing [11]).
    """
    sigma = list(sigma)
    working = instance.copy()
    depths: Dict[Null, int] = {null: 0 for null in working.nulls()}
    truncated = False
    steps = 0
    progress = True
    while progress and steps < max_steps:
        progress = False
        for constraint in sigma:
            fired = False
            for assignment in find_homomorphisms(list(constraint.body),
                                                 working):
                if isinstance(constraint, TGD):
                    if head_extends(constraint, working, assignment):
                        continue
                    trigger_depth = max(
                        (depths.get(v, 0) for v in assignment.values()
                         if isinstance(v, Null)), default=0)
                    if (constraint.existential_variables()
                            and trigger_depth + 1 > depth_limit):
                        truncated = True
                        continue
                    step = apply_step(working, constraint, assignment,
                                      index=steps)
                    for null in step.new_nulls:
                        depths[null] = trigger_depth + 1
                else:
                    assert isinstance(constraint, EGD)
                    left = assignment[constraint.lhs]
                    right = assignment[constraint.rhs]
                    if left == right:
                        continue
                    step = apply_step(working, constraint, assignment,
                                      index=steps)  # may raise ChaseFailure
                steps += 1
                fired = True
                progress = True
                break
            if fired:
                break
    return BoundedChaseResult(instance=working, depth_limit=depth_limit,
                              truncated=truncated, steps=steps,
                              null_depths=depths)


def default_depth(query: ConjunctiveQuery,
                  sigma: Iterable[Constraint]) -> int:
    """A query-sized depth heuristic: enough levels for every body
    atom of the query plus one round of constraint interaction."""
    body_sizes = [len(c.body) for c in sigma if c.body]
    return len(query.body) + max(body_sizes, default=1) + 2


def certain_answers(instance: Instance, sigma: Iterable[Constraint],
                    query: ConjunctiveQuery,
                    depth_limit: Optional[int] = None,
                    max_steps: int = 50_000
                    ) -> Set[Tuple[GroundTerm, ...]]:
    """Answers of ``query`` on the implied knowledge base ``I^Sigma``.

    Tries the exact chase first; if it exceeds the budget, falls back
    to the depth-bounded prefix (sound for constants-only answers on
    guarded-null workloads; complete for depth limits large enough
    relative to the query).
    """
    sigma = list(sigma)
    exact = chase(instance, sigma, max_steps=max_steps)
    if exact.status is ChaseStatus.TERMINATED:
        return query.evaluate(exact.instance, constants_only=True)
    if depth_limit is None:
        depth_limit = default_depth(query, sigma)
    bounded = depth_bounded_chase(instance, sigma, depth_limit, max_steps)
    return query.evaluate(bounded.instance, constants_only=True)
