"""Certain-answer computation over knowledge bases (Section 5,
Theorem 9 / Corollary 1).

When the chase terminates, ``q(I^Sigma)`` is computed exactly.  When
it may not, the paper appeals to the algorithms of Cali-Gottlob-Kifer
[5, 6], which exploit the guarded null property: the relevant part of
the (possibly infinite) chase is its *guarded chase forest* up to a
depth determined by the query.  We implement that standard truncation
directly -- a **depth-bounded chase** that refuses to create nulls of
derivation depth beyond a limit -- and evaluate the query on the
finite prefix, restricting answers to non-null tuples.  This is the
one substitution in the reproduction -- it exercises the same
decidability mechanism (finite-treewidth prefixes) without
re-implementing [5]'s alternating algorithm; the full rationale lives
in ``docs/PAPER_MAP.md`` ("Deviations from the paper").

Queries are evaluated through the compiled id-level path of
:mod:`repro.cq.evaluate`, and :func:`optimize_query` wires Section 4's
semantic optimization in front of answering: chase the frozen query
(strategy pinned from the memoized termination report, depth-bounded
prefix for sets guaranteeing nothing), unfreeze, minimize via the
core.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.chase.result import ChaseResult, ChaseStatus
from repro.chase.runner import chase
from repro.chase.step import apply_step
from repro.cq.query import ConjunctiveQuery, unfreeze
from repro.homomorphism.engine import find_homomorphisms
from repro.homomorphism.extend import head_extends
from repro.lang.constraints import Constraint, EGD, TGD
from repro.lang.errors import ChaseFailure, SchemaError
from repro.lang.instance import Instance
from repro.lang.terms import GroundTerm, Null, NULLS


@dataclass
class BoundedChaseResult:
    """The finite prefix produced by the depth-bounded chase."""

    instance: Instance
    depth_limit: int
    truncated: bool          # True when the prefix was cut short
    steps: int
    null_depths: Dict[Null, int]


def depth_bounded_chase(instance: Instance, sigma: Iterable[Constraint],
                        depth_limit: int,
                        max_steps: int = 50_000,
                        max_facts: Optional[int] = None,
                        wall_clock: Optional[float] = None
                        ) -> BoundedChaseResult:
    """Chase, but never create nulls of derivation depth beyond
    ``depth_limit``.

    The *depth* of a null is ``1 +`` the maximum depth of the nulls in
    its creating trigger (base-instance values have depth 0) -- the
    guarded-chase-forest level of [5] and the quantity that
    c-chase graphs / k-restriction systems bound data-independently
    (proofs of Theorems 3 and 7, citing [11]).

    ``max_facts`` / ``wall_clock`` bound the prefix like the runner's
    budgets bound a chase: exhausting either simply truncates earlier
    (``truncated=True``) -- every prefix is sound for constants-only
    answers, so a budget cut costs completeness, never soundness.
    A wall-clock cut makes the prefix timing-dependent; callers that
    cache results must not cache those (the query service already
    carries the non-cacheable ``EXCEEDED_WALL_CLOCK`` status whenever
    a wall clock was the reason it fell back here).
    """
    sigma = list(sigma)
    working = instance.copy()
    NULLS.advance_past(max((null.label for null in working.nulls()),
                           default=0))
    depths: Dict[Null, int] = {null: 0 for null in working.nulls()}
    truncated = False
    steps = 0
    progress = True
    deadline = (None if wall_clock is None
                else time.monotonic() + wall_clock)
    while progress and steps < max_steps:
        if max_facts is not None and len(working) >= max_facts:
            truncated = True
            break
        if deadline is not None and time.monotonic() > deadline:
            truncated = True
            break
        progress = False
        for constraint in sigma:
            fired = False
            for assignment in find_homomorphisms(list(constraint.body),
                                                 working):
                if isinstance(constraint, TGD):
                    if head_extends(constraint, working, assignment):
                        continue
                    trigger_depth = max(
                        (depths.get(v, 0) for v in assignment.values()
                         if isinstance(v, Null)), default=0)
                    if (constraint.existential_variables()
                            and trigger_depth + 1 > depth_limit):
                        truncated = True
                        continue
                    step = apply_step(working, constraint, assignment,
                                      index=steps)
                    for null in step.new_nulls:
                        depths[null] = trigger_depth + 1
                else:
                    assert isinstance(constraint, EGD)
                    left = assignment[constraint.lhs]
                    right = assignment[constraint.rhs]
                    if left == right:
                        continue
                    step = apply_step(working, constraint, assignment,
                                      index=steps)  # may raise ChaseFailure
                steps += 1
                fired = True
                progress = True
                break
            if fired:
                break
    return BoundedChaseResult(instance=working, depth_limit=depth_limit,
                              truncated=truncated, steps=steps,
                              null_depths=depths)


def default_depth(query: ConjunctiveQuery,
                  sigma: Iterable[Constraint]) -> int:
    """A query-sized depth heuristic: enough levels for every body
    atom of the query plus one round of constraint interaction."""
    body_sizes = [len(c.body) for c in sigma if c.body]
    return len(query.body) + max(body_sizes, default=1) + 2


def optimize_query(query: ConjunctiveQuery,
                   sigma: Iterable[Constraint],
                   depth_limit: Optional[int] = None,
                   max_steps: int = 2_000) -> ConjunctiveQuery:
    """Section 4's semantic optimization, wired for answering.

    Chase the frozen query under ``sigma`` -- the strategy pinned from
    the memoized :func:`~repro.termination.report.analyze` report
    (Theorem 2's stratum order for stratified-only sets, the default
    otherwise), falling back to the depth-bounded prefix of
    :func:`depth_bounded_chase` when no Figure 1 condition guarantees
    a terminating sequence -- then unfreeze and minimize via the core
    (:func:`repro.cq.optimize.minimize_query`).

    Every chase step on the canonical instance preserves
    Sigma-equivalence, so even a truncated prefix unfreezes into an
    equivalent (if not necessarily universal) plan; the exact fixpoint
    is only needed for rewriting *completeness*.  Both the minimized
    plan and the minimized original are Sigma-equivalent to ``query``,
    so the one with the smaller body wins (ties go to the original's
    minimization -- without a cost model, the join *introduction* of
    the paper's ``q2'''`` is not assumed beneficial): chases that
    merge variables through EGDs genuinely shrink the query, chases
    that only add atoms fall back to plain core minimization.  The
    original query is returned untouched when optimization cannot
    help soundly: the canonical instance fails (an EGD equates two
    distinct query constants) or an EGD collapses a head variable
    away.
    """
    from repro.cq.optimize import minimize_query
    from repro.termination.report import analyze
    sigma = list(sigma)
    if not sigma:
        return minimize_query(query)
    if any(isinstance(arg, Null) for atom in query.body
           for arg in atom.args):
        # Labeled nulls in a query body match themselves exactly, but
        # unfreezing a chased canonical instance would rename them to
        # fresh (more permissive) variables -- skip the chase step and
        # only core-minimize.
        return minimize_query(query)
    frozen, var_map = query.freeze()
    report = analyze(sigma)
    try:
        chased: Optional[Instance] = None
        if report.guarantees_some_sequence:
            result = chase(frozen, sigma,
                           strategy=report.recommended_strategy(),
                           max_steps=max_steps)
            if result.status is ChaseStatus.TERMINATED:
                chased = result.instance
        if chased is None:
            if depth_limit is None:
                depth_limit = default_depth(query, sigma)
            chased = depth_bounded_chase(frozen, sigma, depth_limit,
                                         max_steps).instance
        from_plan = minimize_query(unfreeze(chased, var_map, query))
        from_original = minimize_query(query)
        return (from_plan if len(from_plan.body) < len(from_original.body)
                else from_original)
    except (ChaseFailure, SchemaError):
        return query


def certain_answers(instance: Instance, sigma: Iterable[Constraint],
                    query: ConjunctiveQuery,
                    depth_limit: Optional[int] = None,
                    max_steps: int = 50_000,
                    optimize: bool = False
                    ) -> Set[Tuple[GroundTerm, ...]]:
    """Answers of ``query`` on the implied knowledge base ``I^Sigma``.

    Tries the exact chase first; if it exceeds the budget, falls back
    to the depth-bounded prefix (sound for constants-only answers on
    guarded-null workloads; complete for depth limits large enough
    relative to the query).  Evaluation runs through the compiled
    id-level path of :mod:`repro.cq.evaluate`.

    With ``optimize``, the Sigma-equivalent rewriting of
    :func:`optimize_query` is evaluated instead of ``query`` -- but
    only on the exact path: ``I^Sigma`` satisfies ``sigma``, so
    equivalent queries agree there, whereas a truncated prefix need
    not satisfy ``sigma`` and is always evaluated with the original
    query.
    """
    sigma = list(sigma)
    exact = chase(instance, sigma, max_steps=max_steps)
    if exact.status is ChaseStatus.TERMINATED:
        target = (optimize_query(query, sigma, depth_limit=depth_limit)
                  if optimize else query)
        return target.evaluate(exact.instance, constants_only=True)
    if depth_limit is None:
        depth_limit = default_depth(query, sigma)
    bounded = depth_bounded_chase(instance, sigma, depth_limit, max_steps)
    return query.evaluate(bounded.instance, constants_only=True)
