"""Query answering over knowledge bases (Section 5)."""

from repro.kb.answering import (BoundedChaseResult, certain_answers,
                                default_depth, depth_bounded_chase,
                                optimize_query)
from repro.kb.guarded_null import (sequence_has_guarded_nulls,
                                   step_has_guarded_nulls)
from repro.kb.guardedness import (is_restrictedly_guarded, is_weakly_guarded,
                                  restricted_guards, weak_guards)
from repro.kb.treewidth import (gaifman_graph, lemma6_bound,
                                treewidth_upper_bound)

__all__ = [
    "BoundedChaseResult", "certain_answers", "default_depth",
    "depth_bounded_chase", "optimize_query",
    "sequence_has_guarded_nulls",
    "step_has_guarded_nulls", "is_restrictedly_guarded",
    "is_weakly_guarded", "restricted_guards", "weak_guards",
    "gaifman_graph", "lemma6_bound", "treewidth_upper_bound",
]
