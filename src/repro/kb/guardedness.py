"""Weakly guarded and restrictedly guarded TGDs (Section 5,
Definitions 20 and 22).

Weak guardedness [5] demands, per TGD, a body atom (the *weak guard*)
containing every variable that occurs at an affected position of the
body.  The paper's refinement replaces ``aff(Sigma)`` by the position
set ``f`` of the minimal 2-restriction system -- a tighter
over-estimate of where nulls can appear (``f subseteq aff(Sigma)``,
Lemma 7) -- yielding the strictly larger class of *restrictedly
guarded* sets for which the query-answering machinery of [5, 6] still
applies (Corollary 1).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.lang.atoms import Atom, occurrences, Position
from repro.lang.constraints import Constraint, TGD
from repro.termination.affected import affected_positions
from repro.termination.precedence import ORACLE, PrecedenceOracle
from repro.termination.restriction import flow_restriction_system


def _guard_for(tgd: TGD, positions: Set[Position]) -> Optional[Atom]:
    """A body atom containing every universally quantified variable
    that occurs (in the body) at some position from ``positions``."""
    required = {var for var in tgd.universal_variables()
                if occurrences(tgd.body, var) & positions}
    for atom in tgd.body:
        if required <= atom.variables():
            return atom
    return None


def weak_guards(sigma: Iterable[Constraint]
                ) -> Optional[Dict[TGD, Atom]]:
    """The weak guards per TGD (Definition 20), or None if some TGD
    has none (the set is not weakly guarded)."""
    sigma = list(sigma)
    affected = affected_positions(sigma)
    guards: Dict[TGD, Atom] = {}
    for constraint in sigma:
        if not isinstance(constraint, TGD):
            continue
        guard = _guard_for(constraint, affected)
        if guard is None:
            return None
        guards[constraint] = guard
    return guards


def is_weakly_guarded(sigma: Iterable[Constraint]) -> bool:
    """``WGTGD(Sigma)`` (Definition 20)."""
    return weak_guards(sigma) is not None


def restricted_guards(sigma: Iterable[Constraint],
                      oracle: PrecedenceOracle = ORACLE
                      ) -> Optional[Dict[TGD, Atom]]:
    """The restricted guards per TGD (Definition 22), or None.

    Uses the per-constraint flow refinement of the 2-restriction
    system (the semantics of the paper's Section 3.7 ``f(alpha_i)``
    table and of Example 19; see docs/PAPER_MAP.md): each TGD needs a body
    atom covering the variables occurring at *its own* incoming null
    positions ``f(alpha)``.
    """
    sigma = list(sigma)
    system = flow_restriction_system(sigma, oracle)
    guards: Dict[TGD, Atom] = {}
    for constraint in sigma:
        if not isinstance(constraint, TGD):
            continue
        guard = _guard_for(constraint, set(system.positions_of(constraint)))
        if guard is None:
            return None
        guards[constraint] = guard
    return guards


def is_restrictedly_guarded(sigma: Iterable[Constraint],
                            oracle: PrecedenceOracle = ORACLE) -> bool:
    """``RGTGD(Sigma)`` (Definition 22).  Lemma 7: implied by weak
    guardedness, and strictly more general (Example 19)."""
    return restricted_guards(sigma, oracle) is not None
