"""Chase run outcomes."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.chase.step import ChaseStep
from repro.lang.instance import Instance


class ChaseStatus(enum.Enum):
    """Possible outcomes of a chase run.

    ``TERMINATED``
        A finite chase sequence ended with ``I^Sigma |= Sigma``.
    ``FAILED``
        An EGD step tried to equate two distinct constants: the chase
        result is undefined (Section 2).
    ``EXCEEDED_BUDGET``
        The step (or fact) budget ran out before a fixpoint was
        reached; no statement about termination can be made.  The
        outcome is a deterministic function of the inputs, so it is
        safe to cache (see :mod:`repro.service.cache`).
    ``EXCEEDED_WALL_CLOCK``
        The wall-clock budget ran out.  Like ``EXCEEDED_BUDGET`` no
        termination statement can be made, but the cut point depends
        on machine speed, so the outcome is *not* deterministic and
        must never be cached or cross-validated step-for-step.
    ``ABORTED_BY_MONITOR``
        A monitored chase (Section 4.2) hit its k-cyclicity limit.
    """

    TERMINATED = "terminated"
    FAILED = "failed"
    EXCEEDED_BUDGET = "exceeded_budget"
    EXCEEDED_WALL_CLOCK = "exceeded_wall_clock"
    ABORTED_BY_MONITOR = "aborted_by_monitor"

    @property
    def is_budget_abort(self) -> bool:
        """Did a resource budget (steps, facts or wall clock) end the
        run?  Budget aborts are recoverable: re-running with a larger
        budget may still terminate."""
        return self in (ChaseStatus.EXCEEDED_BUDGET,
                        ChaseStatus.EXCEEDED_WALL_CLOCK)

    @property
    def is_deterministic(self) -> bool:
        """Is the outcome a pure function of (instance, sigma,
        strategy, budgets)?  Wall-clock aborts are timing-dependent;
        everything else replays identically."""
        return self is not ChaseStatus.EXCEEDED_WALL_CLOCK


@dataclass
class ChaseResult:
    """The outcome of a chase run.

    ``instance`` is the final instance (for ``FAILED`` runs: the state
    just before the failing step; the chase *result* in the paper's
    sense is undefined then).  ``sequence`` is the full list of
    executed steps, which downstream analyses (monitor graphs, the
    guarded-null property) consume.
    """

    status: ChaseStatus
    instance: Instance
    sequence: Sequence[ChaseStep] = field(default_factory=list)
    failure_reason: Optional[str] = None

    @property
    def terminated(self) -> bool:
        """Did the run reach a fixpoint ``I^Sigma |= Sigma`` (Section 2)?"""
        return self.status is ChaseStatus.TERMINATED

    @property
    def length(self) -> int:
        """The length of the chase sequence (number of steps)."""
        return len(self.sequence)

    def new_null_count(self) -> int:
        """Total labeled nulls created across the sequence (the
        quantity the Section 4.2 monitor watches for cyclic growth)."""
        return sum(len(step.new_nulls) for step in self.sequence)

    def describe(self) -> str:
        """A human-readable transcript of the run, one step per line."""
        lines = [f"status: {self.status.value}, steps: {self.length}"]
        for step in self.sequence:
            added = ", ".join(str(f) for f in step.new_facts) or "(nothing)"
            lines.append(f"  {step.describe()} added {added}")
        return "\n".join(lines)
