"""The core chase (Deutsch, Nash, Remmel [9]).

The paper's conclusions note that its termination results carry over
to the core chase: alternate ordinary chase rounds with core
computation, so the instance is always a core.  The core chase is
*complete* for finding universal solutions: it terminates whenever
some finite universal solution exists -- in particular it terminates
on inputs where only some orders of the standard chase do (it would,
e.g., tame Example 4's divergent order by folding the spurious nulls
away each round).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.chase.core import core
from repro.chase.result import ChaseResult, ChaseStatus
from repro.chase.runner import chase as standard_chase
from repro.chase.step import ChaseStep
from repro.chase.strategies import OrderedStrategy, Strategy
from repro.homomorphism.extend import all_satisfied, violation
from repro.lang.constraints import Constraint
from repro.lang.errors import ChaseFailure
from repro.lang.instance import Instance
from repro.lang.terms import NullFactory, NULLS


def core_chase(instance: Instance, sigma: Iterable[Constraint],
               max_rounds: int = 200,
               steps_per_round: int = 500,
               nulls: NullFactory = NULLS) -> ChaseResult:
    """Run the core chase: each round applies one *parallel* batch of
    chase steps (every currently violated constraint fires once) and
    then replaces the instance by its core.

    Terminates iff a finite universal solution exists (within the
    round budget); the returned instance is that solution's core.
    """
    sigma = list(sigma)
    working = instance.copy()
    sequence: list[ChaseStep] = []
    for round_index in range(max_rounds):
        if all_satisfied(sigma, working):
            return ChaseResult(ChaseStatus.TERMINATED, working, sequence)
        # One bounded burst of ordinary chasing ...
        burst = standard_chase(working, sigma, strategy=OrderedStrategy(),
                               max_steps=steps_per_round, copy=False,
                               nulls=nulls)
        sequence.extend(burst.sequence)
        if burst.status is ChaseStatus.FAILED:
            return ChaseResult(ChaseStatus.FAILED, working, sequence,
                               failure_reason=burst.failure_reason)
        # ... then fold the instance to its core.
        working = core(working)
        if burst.status is ChaseStatus.TERMINATED:
            return ChaseResult(ChaseStatus.TERMINATED, working, sequence)
    return ChaseResult(ChaseStatus.EXCEEDED_BUDGET, working, sequence)
