"""Core computation for instances with labeled nulls.

The *core* of an instance is its smallest retract: a subinstance that
the whole instance maps into homomorphically.  Cores are the canonical
representatives of homomorphic equivalence classes, which makes them
handy when comparing the results of different chase orders (the paper,
after [21], proves those results homomorphically equivalent) and for
the core-chase remark in the conclusions.

Core computation is NP-hard in general; this implementation is the
standard greedy folding loop, adequate for the instance sizes produced
by the test and benchmark workloads.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.homomorphism.engine import (find_homomorphisms,
                                       is_endomorphism_proper)
from repro.lang.atoms import Atom
from repro.lang.instance import Instance
from repro.lang.terms import GroundTerm, Null, Variable


def _frozen_atoms(instance: Instance) -> tuple[list[Atom], Dict[Variable, Null]]:
    """Replace each null by a fresh variable so it becomes movable."""
    renaming = {null: Variable(f"__core{null.label}")
                for null in instance.nulls()}
    atoms = [atom.substitute(dict(renaming)) for atom in instance]
    inverse = {var: null for null, var in renaming.items()}
    return atoms, inverse


def _improving_endomorphism(instance: Instance,
                            search_limit: int = 200_000
                            ) -> Optional[Dict[Null, GroundTerm]]:
    """An endomorphism whose image has strictly fewer facts, if any."""
    atoms, inverse = _frozen_atoms(instance)
    if not inverse:
        return None
    facts = instance.facts()
    examined = 0
    for assignment in find_homomorphisms(atoms, instance):
        examined += 1
        mapping = {inverse[var]: value for var, value in assignment.items()}
        # Null permutations (injective, null-valued) cannot shrink the
        # image -- skip them without materializing it.
        if is_endomorphism_proper(instance, mapping):
            image = {atom.substitute(dict(mapping)) for atom in facts}
            if len(image) < len(facts):
                return mapping
        if examined >= search_limit:
            break
    return None


def core(instance: Instance) -> Instance:
    """The core of ``instance`` (a fresh instance, same backend)."""
    current = instance.copy()
    while True:
        mapping = _improving_endomorphism(current)
        if mapping is None:
            return current
        current = Instance((atom.substitute(dict(mapping))
                            for atom in current),
                           backend=current.backend)


def is_core(instance: Instance) -> bool:
    """True when no proper retraction exists."""
    return _improving_endomorphism(instance) is None
