"""Chase application strategies (which applicable constraint fires next).

The paper imposes "no strict order what constraint must be applied in
case several constraints apply" (Section 2) -- so the engine is
parameterized by a strategy.  Three are essential to the reproduction:

* :class:`OrderedStrategy` / :class:`RoundRobinStrategy` reproduce the
  divergent sequence of Example 4 (apply alpha_1..alpha_4 cyclically);
* :class:`RandomStrategy` exercises order-independence properties;
* :class:`StratifiedStrategy` implements Theorem 2: chase the strongly
  connected components of the chase graph in topological order, which
  yields a terminating sequence for every stratified constraint set.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Optional, Sequence

from repro.homomorphism.engine import Assignment, find_homomorphisms
from repro.homomorphism.extend import head_extends, violation
from repro.lang.constraints import Constraint, EGD, TGD
from repro.lang.instance import Instance

Selection = Optional[tuple[Constraint, Assignment]]


class Strategy:
    """Base class: pick the next (constraint, active trigger) pair."""

    def start(self, sigma: Sequence[Constraint], instance: Instance) -> None:
        """Called once before the run begins."""

    def select(self, instance: Instance) -> Selection:
        """Return the next step to execute, or None when ``I |= Sigma``."""
        raise NotImplementedError


class OrderedStrategy(Strategy):
    """Always fire the first violated constraint in the listed order."""

    def start(self, sigma: Sequence[Constraint], instance: Instance) -> None:
        self._sigma = list(sigma)

    def select(self, instance: Instance) -> Selection:
        for constraint in self._sigma:
            assignment = violation(constraint, instance)
            if assignment is not None:
                return constraint, assignment
        return None


class RoundRobinStrategy(Strategy):
    """Cycle through the constraints, firing each at most once per turn.

    With Example 4's constraint set this reproduces the paper's
    divergent sequence ``alpha_1, ..., alpha_4, alpha_1, ...``.
    """

    def start(self, sigma: Sequence[Constraint], instance: Instance) -> None:
        self._sigma = list(sigma)
        self._cursor = 0

    def select(self, instance: Instance) -> Selection:
        n = len(self._sigma)
        for offset in range(n):
            constraint = self._sigma[(self._cursor + offset) % n]
            assignment = violation(constraint, instance)
            if assignment is not None:
                self._cursor = (self._cursor + offset + 1) % n
                return constraint, assignment
        return None


class RandomStrategy(Strategy):
    """Pick a uniformly random active trigger (seeded)."""

    def __init__(self, seed: int = 0, trigger_cap: int = 16) -> None:
        self._rng = random.Random(seed)
        self._trigger_cap = trigger_cap

    def start(self, sigma: Sequence[Constraint], instance: Instance) -> None:
        self._sigma = list(sigma)

    def select(self, instance: Instance) -> Selection:
        candidates: list[tuple[Constraint, Assignment]] = []
        for constraint in self._sigma:
            count = 0
            for assignment in find_homomorphisms(list(constraint.body),
                                                 instance):
                if isinstance(constraint, TGD):
                    active = not head_extends(constraint, instance, assignment)
                else:
                    assert isinstance(constraint, EGD)
                    active = (assignment[constraint.lhs]
                              != assignment[constraint.rhs])
                if active:
                    candidates.append((constraint, assignment))
                    count += 1
                    if count >= self._trigger_cap:
                        break
        if not candidates:
            return None
        return self._rng.choice(candidates)


class StratifiedStrategy(Strategy):
    """Theorem 2: chase stratum by stratum.

    ``strata`` is a topologically sorted partition of the constraint
    set (as produced by
    :func:`repro.termination.stratification.chase_strata`).  The
    strategy chases the first stratum to satisfaction, then the second,
    and so on; Theorem 2 shows later strata never re-violate earlier
    ones, which the optional ``verify`` mode asserts.
    """

    def __init__(self, strata: Sequence[Iterable[Constraint]],
                 verify: bool = False) -> None:
        self._strata = [list(stratum) for stratum in strata]
        self._verify = verify
        self._level = 0

    def start(self, sigma: Sequence[Constraint], instance: Instance) -> None:
        covered = {c for stratum in self._strata for c in stratum}
        missing = [c for c in sigma if c not in covered]
        if missing:
            raise ValueError(
                "strata do not cover the constraint set: missing "
                + ", ".join(c.display_name() for c in missing))
        self._level = 0

    def select(self, instance: Instance) -> Selection:
        while self._level < len(self._strata):
            for constraint in self._strata[self._level]:
                assignment = violation(constraint, instance)
                if assignment is not None:
                    return constraint, assignment
            if self._verify:
                for earlier in self._strata[:self._level]:
                    for constraint in earlier:
                        if violation(constraint, instance) is not None:
                            raise AssertionError(
                                "Theorem 2 violated: earlier stratum "
                                f"re-violated at level {self._level}")
            self._level += 1
        return None


StrategyFactory = Callable[[], Strategy]
