"""Chase application strategies (which applicable constraint fires next).

The paper imposes "no strict order what constraint must be applied in
case several constraints apply" (Section 2) -- so the engine is
parameterized by a strategy.  Four are essential to the reproduction:

* :class:`OrderedStrategy` and :class:`RoundRobinStrategy` reproduce
  the divergent sequence of Example 4 (apply alpha_1..alpha_4
  cyclically);
* :class:`RandomStrategy` exercises order-independence properties;
* :class:`StratifiedStrategy` implements Theorem 2: chase the strongly
  connected components of the chase graph in topological order, which
  yields a terminating sequence for every stratified constraint set.

Strategies draw active triggers from a
:class:`repro.chase.triggers.TriggerIndex` when the runner provides
one (the default), falling back to the naive full re-enumeration of
:func:`repro.homomorphism.extend.violation` otherwise (the
``naive=True`` escape hatch of :func:`repro.chase.runner.chase`).
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, List, Optional, Sequence, TYPE_CHECKING

from repro.homomorphism.engine import Assignment, find_homomorphisms
from repro.homomorphism.extend import head_extends, violation
from repro.lang.constraints import Constraint, EGD, TGD
from repro.lang.instance import Instance

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.chase.triggers import TriggerIndex

Selection = Optional[tuple[Constraint, Assignment]]


class Strategy:
    """Base class: pick the next (constraint, active trigger) pair."""

    _triggers: "Optional[TriggerIndex]" = None

    def start(self, sigma: Sequence[Constraint], instance: Instance) -> None:
        """Called once before the run begins.

        The incremental trigger index is delivered separately through
        :meth:`attach_triggers` (and the runner treats that hook as
        optional), so strategies implementing only this historical
        start/select contract keep working -- they simply enumerate
        naively.
        """
        self._sigma = list(sigma)

    def attach_triggers(self, triggers: "Optional[TriggerIndex]") -> None:
        """Hand the strategy the runner's trigger index (None detaches,
        restoring naive enumeration)."""
        self._triggers = triggers

    def select(self, instance: Instance) -> Selection:
        """Return the next step to execute, or None when ``I |= Sigma``."""
        raise NotImplementedError

    def _next_violation(self, constraint: Constraint, instance: Instance
                        ) -> Optional[Assignment]:
        """An active trigger of ``constraint`` -- from the index when
        available, by full enumeration otherwise."""
        if self._triggers is not None and self._triggers.tracks(constraint):
            return self._triggers.next_active(constraint)
        return violation(constraint, instance)


class OrderedStrategy(Strategy):
    """Always fire the first violated constraint in the listed order
    (one deterministic instantiation of Section 2's free choice)."""

    def select(self, instance: Instance) -> Selection:
        """First constraint (in listed order) with an active trigger."""
        for constraint in self._sigma:
            assignment = self._next_violation(constraint, instance)
            if assignment is not None:
                return constraint, assignment
        return None


class RoundRobinStrategy(Strategy):
    """Cycle through the constraints, firing each at most once per turn.

    With Example 4's constraint set this reproduces the paper's
    divergent sequence ``alpha_1, ..., alpha_4, alpha_1, ...``.
    """

    def start(self, sigma: Sequence[Constraint], instance: Instance) -> None:
        """Reset the cursor to the first constraint."""
        super().start(sigma, instance)
        self._cursor = 0

    def select(self, instance: Instance) -> Selection:
        """Next active trigger at or after the cursor (cyclically)."""
        n = len(self._sigma)
        for offset in range(n):
            constraint = self._sigma[(self._cursor + offset) % n]
            assignment = self._next_violation(constraint, instance)
            if assignment is not None:
                self._cursor = (self._cursor + offset + 1) % n
                return constraint, assignment
        return None


class RandomStrategy(Strategy):
    """Pick a uniformly random active trigger (seeded).

    Used to exercise the classical order-independence of terminating
    chase results (homomorphically equivalent, Section 2)."""

    def __init__(self, seed: int = 0, trigger_cap: int = 16) -> None:
        self._rng = random.Random(seed)
        self._trigger_cap = trigger_cap

    def _naive_candidates(self, constraint: Constraint, instance: Instance
                          ) -> List[Assignment]:
        candidates: list[Assignment] = []
        for assignment in find_homomorphisms(list(constraint.body),
                                             instance):
            if isinstance(constraint, TGD):
                active = not head_extends(constraint, instance, assignment)
            else:
                assert isinstance(constraint, EGD)
                active = (assignment[constraint.lhs]
                          != assignment[constraint.rhs])
            if active:
                candidates.append(assignment)
                if len(candidates) >= self._trigger_cap:
                    break
        return candidates

    def select(self, instance: Instance) -> Selection:
        """A seeded-random choice among (capped) active triggers."""
        candidates: list[tuple[Constraint, Assignment]] = []
        for constraint in self._sigma:
            if (self._triggers is not None
                    and self._triggers.tracks(constraint)):
                assignments = self._triggers.active_triggers(
                    constraint, cap=self._trigger_cap)
            else:
                assignments = self._naive_candidates(constraint, instance)
            candidates.extend((constraint, assignment)
                              for assignment in assignments)
        if not candidates:
            return None
        return self._rng.choice(candidates)


class StratifiedStrategy(Strategy):
    """Theorem 2: chase stratum by stratum.

    ``strata`` is a topologically sorted partition of the constraint
    set (as produced by
    :func:`repro.termination.stratification.chase_strata`).  The
    strategy chases the first stratum to satisfaction, then the second,
    and so on; Theorem 2 shows later strata never re-violate earlier
    ones, which the optional ``verify`` mode asserts.
    """

    def __init__(self, strata: Sequence[Iterable[Constraint]],
                 verify: bool = False) -> None:
        self._strata = [list(stratum) for stratum in strata]
        self._verify = verify
        self._level = 0

    def start(self, sigma: Sequence[Constraint], instance: Instance) -> None:
        """Validate that the strata cover ``sigma``; reset to level 0."""
        super().start(sigma, instance)
        covered = {c for stratum in self._strata for c in stratum}
        missing = [c for c in sigma if c not in covered]
        if missing:
            raise ValueError(
                "strata do not cover the constraint set: missing "
                + ", ".join(c.display_name() for c in missing))
        self._level = 0

    def select(self, instance: Instance) -> Selection:
        """Next active trigger of the current stratum, advancing to the
        next stratum once the current one is satisfied (Theorem 2)."""
        while self._level < len(self._strata):
            for constraint in self._strata[self._level]:
                assignment = self._next_violation(constraint, instance)
                if assignment is not None:
                    return constraint, assignment
            if self._verify:
                for earlier in self._strata[:self._level]:
                    for constraint in earlier:
                        if self._next_violation(constraint,
                                                instance) is not None:
                            raise AssertionError(
                                "Theorem 2 violated: earlier stratum "
                                f"re-violated at level {self._level}")
            self._level += 1
        return None


StrategyFactory = Callable[[], Strategy]
