"""Incremental trigger discovery: the semi-naive chase index.

The naive runners re-enumerate every body homomorphism of every
constraint on each ``select()`` call -- quadratic in the chase length.
:class:`TriggerIndex` replaces that with the semi-naive discipline of
datalog evaluation, kept *lazy* at homomorphism granularity:

* **Seed.** Every fact of the input instance is queued as a delta
  (the seed is just the first batch of deltas).
* **Delta.** The index registers as an
  :class:`repro.lang.instance.InstanceListener` on the working
  instance.  Every added fact is routed to a per-constraint *backlog*;
  every removed fact (EGD substitutions) retires the pending triggers
  whose body image used it.
* **Expand.** Backlog facts are expanded only when a selection needs
  more active triggers than are materialized: the delta-restricted
  search (:func:`repro.homomorphism.engine.find_homomorphisms_through`)
  enumerates exactly the homomorphisms using the fact, and the
  enumeration is *suspended* as soon as enough active triggers have
  been found.  On divergent runs an active trigger is almost always at
  hand, so almost nothing is expanded -- matching the naive path's
  first-violation short-circuit -- while terminating runs drain every
  backlog at the final satisfaction check (a selection answers "no
  trigger" only with an empty backlog), which keeps the index complete.
* **Select.** Strategies ask for the next *active* trigger
  (Section 2: the body maps but the head does not extend / the EGD
  equates distinct terms).  Satisfied homomorphisms are remembered but
  never enqueued, and pending triggers found satisfied later are
  dropped **permanently**: new facts can only help a TGD head extend,
  and an EGD substitution that could disturb a satisfied trigger
  necessarily rewrites its body image, which retires the trigger
  through the delta feed first.

Since the storage-layer refactor every internal key is an interned
integer id from the working instance's store: the delta queue and the
per-constraint backlogs carry permanent *fact ids*
(:meth:`repro.storage.base.FactStore.fact_id` -- stable across EGD
remove/re-add cycles), the fact -> pending-trigger reverse map is
keyed on fact ids, and trigger identity plus the satisfied-frontier
cache are tuples of interned *term ids*.  No ``Atom`` or term is
hashed on the trigger hot path; atoms are decoded from ids only to run
the homomorphism search itself.

Trigger identity is the frozen body assignment (the paper's
``(alpha, mu(x))`` naming of chase steps, Section 2), as interned
(variable name, term id) pairs.  Keys once seen are never re-enqueued,
and a suspended enumeration stays sound across instance mutations, for
the same underlying reason: facts are only ever removed by EGD
substitutions eliminating a labeled null, null labels are globally
fresh (:class:`repro.lang.terms.NullFactory`), so a removed fact --
and hence a retired assignment -- can never come back.  Homomorphisms
that appear *after* a suspension use a newly added fact and are found
through that fact's own backlog entry; homomorphisms yielded from
stale enumeration state are filtered by re-validating their body image
against the live instance.

The oblivious mode (Section 3.3's chase variant) keeps every pending
body homomorphism eligible regardless of head satisfaction and relies
on :meth:`TriggerIndex.mark_fired` to consume each exactly once.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import (Deque, Dict, Iterable, Iterator, List, Optional, Set,
                    Tuple)

from repro.homomorphism.engine import (Assignment,
                                       find_homomorphisms_through)
from repro.homomorphism.extend import freeze_assignment_ids, head_extends
from repro.homomorphism.plan import compile_plan
from repro.lang.constraints import Constraint, EGD, TGD
from repro.lang.instance import Instance
from repro.lang.terms import Variable
from repro.obs.metrics import OBS
from repro.storage.base import FactId

#: Hashable identity of a trigger within one constraint: the frozen
#: body assignment ``mu`` as sorted (variable-name, interned-term-id)
#: pairs.  Ids come from the working instance's term table, so the key
#: is two machine ints per variable instead of a boxed term hash.
TriggerKey = Tuple[Tuple[str, int], ...]


class TriggerIndex:
    """Maintains the pending-trigger set of a chase run incrementally.

    Attach to the *working* instance of a run; the index registers
    itself as a change listener and must be :meth:`detach`-ed when the
    run ends (the runners do this in a ``finally`` block).

    ``oblivious=True`` switches the activity condition to the
    oblivious chase's: any unfired body homomorphism is a trigger,
    except EGD triggers that equate a term with itself.
    """

    def __init__(self, sigma: Iterable[Constraint], instance: Instance,
                 oblivious: bool = False) -> None:
        self._sigma: List[Constraint] = list(sigma)
        self._instance = instance
        self._store = instance.store
        self._table = instance.store.terms
        self._oblivious = oblivious
        #: materialized triggers that were active when discovered
        self._pending: Dict[Constraint, "OrderedDict[TriggerKey, Assignment]"] = {
            constraint: OrderedDict() for constraint in self._sigma}
        #: every assignment ever discovered (pending, fired, settled)
        self._seen: Dict[Constraint, Set[TriggerKey]] = {
            constraint: set() for constraint in self._sigma}
        #: fact id -> pending triggers whose body image uses the fact
        self._by_fact: Dict[FactId, Set[Tuple[Constraint, TriggerKey]]] = {}
        self._body_relations: Dict[Constraint, Set[str]] = {
            constraint: {atom.relation for atom in constraint.body}
            for constraint in self._sigma}
        #: inverted routing map: relation -> constraints mentioning it,
        #: so refresh() is O(interested constraints) per added fact
        self._constraints_by_relation: Dict[str, List[Constraint]] = {}
        for constraint in self._sigma:
            for relation in self._body_relations[constraint]:
                self._constraints_by_relation.setdefault(
                    relation, []).append(constraint)
        #: added fact ids not yet expanded, per constraint
        self._backlog: Dict[Constraint, Deque[FactId]] = {
            constraint: deque() for constraint in self._sigma}
        #: suspended delta enumeration for the backlog fact being expanded
        self._expanding: Dict[Constraint, Optional[Iterator[Assignment]]] = {
            constraint: None for constraint in self._sigma}
        #: interned frontier bindings whose TGD head is known to extend;
        #: sound to cache because satisfaction is permanent (module
        #: docstring)
        self._satisfied_frontiers: Dict[Constraint, Set[tuple]] = {
            constraint: set() for constraint in self._sigma}
        self._frontiers: Dict[Constraint, List] = {
            constraint: sorted(constraint.frontier_variables(),
                               key=lambda v: v.name)
            if isinstance(constraint, TGD) else []
            for constraint in self._sigma}
        #: buffered deltas: (op, fact id)
        self._events: Deque[Tuple[str, FactId]] = deque()
        self._attached = False
        instance.add_listener(self)
        self._attached = True
        # Lazy seed: the input facts are simply the first deltas.
        for fact in instance:
            self.fact_added(fact)
        # Empty-body TGDs (axioms) have the empty homomorphism as their
        # one body trigger; its image uses no fact, so delta discovery
        # would never surface it -- seed it explicitly.
        for constraint in self._sigma:
            if not constraint.body:
                self._seen[constraint].add(())
                if not self._is_settled(constraint, {}):
                    self._pending[constraint][()] = {}

    # ------------------------------------------------------------------
    # Trigger identity
    # ------------------------------------------------------------------
    def _freeze(self, assignment: Assignment) -> TriggerKey:
        """The interned trigger key of a body assignment ``mu``."""
        return freeze_assignment_ids(assignment, self._table)

    # ------------------------------------------------------------------
    # InstanceListener protocol: buffer deltas, processed on refresh()
    # ------------------------------------------------------------------
    def fact_added(self, fact) -> None:
        """Record an insertion delta (processed lazily by refresh)."""
        self._events.append(("+", self._store.fact_id(fact)))

    def fact_removed(self, fact) -> None:
        """Record a removal delta (processed lazily by refresh).

        Fact ids are permanent (they survive removal), so the id still
        resolves when the event is drained.
        """
        self._events.append(("-", self._store.fact_id(fact)))

    def detach(self) -> None:
        """Stop listening to the instance (idempotent)."""
        if self._attached:
            self._instance.remove_listener(self)
            self._attached = False

    # ------------------------------------------------------------------
    # Delta consumption
    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Drain buffered deltas: retire dead triggers, route added
        facts to the per-constraint backlogs (expanded lazily).

        Called automatically by every selection method; cheap when no
        mutation happened since the last call.
        """
        if self._events and OBS.enabled:
            OBS.inc("triggers.deltas", len(self._events))
        while self._events:
            op, fid = self._events.popleft()
            if op == "-":
                self._retire_fact(fid)
                continue
            relation = self._store.fact_of(fid).relation
            for constraint in self._constraints_by_relation.get(relation, ()):
                self._backlog[constraint].append(fid)

    def _retire_fact(self, fid: FactId) -> None:
        for constraint, key in self._by_fact.pop(fid, ()):
            self._pending[constraint].pop(key, None)

    # ------------------------------------------------------------------
    # Activity
    # ------------------------------------------------------------------
    def _is_settled(self, constraint: Constraint,
                    assignment: Assignment) -> bool:
        """Is the trigger *inactive for good* (safe to drop)?

        Standard chase: a satisfied trigger stays satisfied while its
        body image survives (see module docstring), so ``True`` means
        the trigger can be removed permanently.  Oblivious chase: only
        trivial EGD triggers (``mu(x_i) = mu(x_j)``) are settled.
        """
        if isinstance(constraint, EGD):
            return assignment[constraint.lhs] == assignment[constraint.rhs]
        if self._oblivious:
            return False
        assert isinstance(constraint, TGD)
        # Satisfaction only depends on the frontier binding, and stays
        # true once established -- so one check covers every body
        # homomorphism sharing the frontier (a big saving for bodies
        # with non-frontier join variables).
        intern = self._table.intern
        frontier = tuple(intern(assignment[var])
                         for var in self._frontiers[constraint])
        cache = self._satisfied_frontiers[constraint]
        if frontier in cache:
            if OBS.enabled:
                OBS.inc("triggers.frontier_prune_hits")
            return True
        if head_extends(constraint, self._instance, assignment):
            cache.add(frontier)
            return True
        return False

    # ------------------------------------------------------------------
    # Expansion (lazy semi-naive delta search)
    # ------------------------------------------------------------------
    def _prune_for(self, constraint: Constraint):
        """A search-pruning predicate for the delta enumeration.

        Prunes subtrees guaranteed to yield only settled homomorphisms:
        TGD bindings whose fully-bound frontier is cached as satisfied
        (every completion shares that frontier), and EGD bindings that
        already equate the two sides (every completion stays trivial).
        Sound in the standard chase only -- the oblivious chase must
        fire satisfied TGD triggers, so there no pruning happens.

        The predicates accept both binding flavours: the plan engine
        calls them with interned ids (int equality, direct cache
        lookups), the reference engine with ground terms (interned on
        the fly for the frontier cache).
        """
        if isinstance(constraint, EGD):
            lhs, rhs = constraint.lhs, constraint.rhs

            def prune_egd(binding):
                left = binding.get(lhs)
                return left is not None and left == binding.get(rhs)
            # Declaring the variables the predicate reads lets the plan
            # executor abandon a whole scan on the first True when the
            # scanned atom binds none of them (the predicate's answer
            # cannot change row to row).
            prune_egd.depends_on = frozenset((lhs, rhs))
            return prune_egd
        if self._oblivious:
            return None
        frontier_vars = self._frontiers[constraint]
        cache = self._satisfied_frontiers[constraint]
        intern = self._table.intern

        def prune_tgd(binding):
            values = []
            for var in frontier_vars:
                value = binding.get(var)
                if value is None:
                    return False
                values.append(value if type(value) is int
                              else intern(value))
            return tuple(values) in cache
        prune_tgd.depends_on = frozenset(frontier_vars)
        return prune_tgd

    def _expand_backlog(self, constraint: Constraint,
                        found: List[Assignment],
                        found_keys: Set[TriggerKey],
                        cap: Optional[int]) -> None:
        """Expand backlog facts until ``cap`` active triggers are in
        ``found`` or nothing is left to expand.

        The enumeration for the fact currently being expanded is kept
        suspended between calls; yielded assignments are re-validated
        against the live instance (module docstring explains why this
        is sound across mutations).
        """
        store = self._store
        intern = self._table.intern
        seen = self._seen[constraint]
        backlog = self._backlog[constraint]
        body = list(constraint.body)
        # The compiled plan of the body doubles as its id-level image
        # template: body atoms are re-grounded as interned-id tuples,
        # validated with one row_fid probe each -- no Atom is built or
        # hashed on this path.
        specs = compile_plan(constraint.body).specs
        prune = self._prune_for(constraint)
        while True:
            enumeration = self._expanding[constraint]
            if enumeration is None:
                fact = None
                while backlog:
                    candidate = backlog.popleft()
                    if store.alive(candidate):
                        fact = store.fact_of(candidate)
                        break
                if fact is None:
                    return
                if OBS.enabled:
                    OBS.inc("triggers.backlog_expanded")
                    OBS.observe("triggers.backlog_depth", len(backlog))
                enumeration = find_homomorphisms_through(
                    body, self._instance, fact, prune=prune)
                self._expanding[constraint] = enumeration
            for assignment in enumeration:
                ids_by_var = {var: intern(value)
                              for var, value in assignment.items()}
                # Inlined freeze_assignment_ids (reusing ids_by_var so
                # each value is interned once) -- must keep producing
                # the same key shape as :meth:`_freeze`.
                key = tuple(sorted((var.name, tid)
                                   for var, tid in ids_by_var.items()))
                if key in seen:
                    continue
                image_fids = []
                stale = False
                for spec in specs:
                    ids = tuple(ids_by_var[arg]
                                if isinstance(arg, Variable) else intern(arg)
                                for arg in spec.args)
                    fid = store.row_fid(spec.relation, spec.arity, ids)
                    if fid is None:
                        stale = True  # an image fact was removed
                        break
                    image_fids.append(fid)
                if stale:
                    continue
                seen.add(key)
                if self._is_settled(constraint, assignment):
                    continue  # remembered, never enqueued
                # The engine yields a fresh dict per assignment; safe
                # to keep without copying.
                self._pending[constraint][key] = assignment
                for fid in image_fids:
                    self._by_fact.setdefault(fid, set()).add(
                        (constraint, key))
                found.append(dict(assignment))
                found_keys.add(key)
                if cap is not None and len(found) >= cap:
                    return  # enumeration stays suspended for next time
            self._expanding[constraint] = None  # fact fully expanded

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def _collect_active(self, constraint: Constraint,
                        found: List[Assignment], found_keys: Set[TriggerKey],
                        cap: Optional[int]) -> None:
        """One pass over the materialized queue: drop settled triggers,
        collect active ones not yet in ``found`` (up to ``cap``)."""
        pending = self._pending[constraint]
        settled: List[TriggerKey] = []
        for key, assignment in pending.items():
            if key in found_keys:
                continue
            if self._is_settled(constraint, assignment):
                settled.append(key)
                continue
            found.append(dict(assignment))
            found_keys.add(key)
            if cap is not None and len(found) >= cap:
                break
        if settled and OBS.enabled:
            OBS.inc("triggers.settled_dropped", len(settled))
        for key in settled:
            del pending[key]

    def tracks(self, constraint: Constraint) -> bool:
        """Is ``constraint`` part of the indexed set?  (Strategies fall
        back to naive enumeration for untracked constraints.)"""
        return constraint in self._pending

    def active_triggers(self, constraint: Constraint,
                        cap: Optional[int] = None) -> List[Assignment]:
        """Up to ``cap`` pending active triggers of ``constraint``
        (all of them when ``cap`` is None), dropping satisfied ones.

        Expands backlog deltas only while fewer than ``cap`` active
        triggers are materialized, so divergent runs -- where an active
        trigger is always at hand -- do almost no delta searching.
        """
        self.refresh()
        found: List[Assignment] = []
        found_keys: Set[TriggerKey] = set()
        self._collect_active(constraint, found, found_keys, cap)
        if cap is None or len(found) < cap:
            self._expand_backlog(constraint, found, found_keys, cap)
        return found

    def next_active(self, constraint: Constraint) -> Optional[Assignment]:
        """The first pending active trigger of ``constraint``, or None
        (None is definitive: the backlog has been fully drained).

        Satisfied triggers encountered on the way are dropped
        permanently; the returned trigger stays pending until it is
        fired (:meth:`mark_fired`) or its body image is rewritten.
        """
        found = self.active_triggers(constraint, cap=1)
        return found[0] if found else None

    def pop_unfired(self) -> Optional[Tuple[Constraint, Assignment]]:
        """The next unfired trigger in constraint order (oblivious runs)."""
        for constraint in self._sigma:
            assignment = self.next_active(constraint)
            if assignment is not None:
                return constraint, assignment
        return None

    def mark_fired(self, constraint: Constraint,
                   assignment: Assignment) -> None:
        """Consume a trigger that was just executed (it stays *seen*,
        so it can never be re-discovered and re-fired)."""
        self._pending[constraint].pop(self._freeze(assignment), None)

    # ------------------------------------------------------------------
    # Introspection (tests, diagnostics)
    # ------------------------------------------------------------------
    def _materialize(self, constraint: Constraint) -> None:
        """Expand the full backlog of ``constraint`` (introspection)."""
        self.refresh()
        self._expand_backlog(constraint, [], set(), None)

    def pending_count(self, constraint: Optional[Constraint] = None) -> int:
        """Number of pending (discovered-active, not yet retired/fired)
        triggers, after materializing any outstanding backlog."""
        targets = [constraint] if constraint is not None else self._sigma
        for target in targets:
            self._materialize(target)
        return sum(len(self._pending[target]) for target in set(targets))

    def pending_assignments(self, constraint: Constraint
                            ) -> List[Assignment]:
        """A snapshot of the pending queue of ``constraint`` (in
        discovery order, without activity re-filtering), after
        materializing any outstanding backlog."""
        self._materialize(constraint)
        return [dict(assignment)
                for assignment in self._pending[constraint].values()]
