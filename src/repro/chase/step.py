"""Single chase steps (standard and oblivious) and their records.

A standard chase step ``I --(alpha, mu(x))--> J`` (Section 2):

* for a TGD, extend ``mu`` by fresh labeled nulls for the existential
  variables and add the grounded head atoms;
* for an EGD with ``mu(x_i) != mu(x_j)``, substitute one value by the
  other, preferring to eliminate a labeled null; if both are constants
  the chase *fails* (result undefined).

The oblivious variant differs only in its applicability condition
(checked by the caller): the body merely has to map, the head may
already be satisfied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.homomorphism.engine import Assignment, apply_assignment
from repro.homomorphism.extend import freeze_assignment as _freeze_assignment
from repro.lang.atoms import Atom
from repro.lang.constraints import Constraint, EGD, TGD
from repro.lang.errors import ChaseFailure
from repro.lang.instance import Instance
from repro.lang.terms import (GroundTerm, Null, NullFactory, NULLS, Variable)


@dataclass(frozen=True)
class ChaseStep:
    """A record of one executed chase step."""

    index: int
    constraint: Constraint
    assignment: Tuple[Tuple[str, GroundTerm], ...]
    new_facts: Tuple[Atom, ...]
    new_nulls: Tuple[Null, ...]
    substitution: Optional[Tuple[GroundTerm, GroundTerm]] = None
    oblivious: bool = False

    def assignment_dict(self) -> dict[Variable, GroundTerm]:
        """The body assignment ``mu`` as a variable -> term mapping."""
        return {Variable(name): value for name, value in self.assignment}

    def describe(self) -> str:
        """The paper's arrow notation ``--(alpha, mu(x))-->`` (Section 2)."""
        params = ", ".join(f"{name}={value}"
                           for name, value in self.assignment)
        marker = "*," if self.oblivious else ""
        name = self.constraint.display_name()
        return f"--({marker}{name}, {params})-->"


def apply_tgd_step(instance: Instance, tgd: TGD, assignment: Assignment,
                   index: int = 0, oblivious: bool = False,
                   nulls: NullFactory = NULLS) -> ChaseStep:
    """Execute a TGD step in place and return its record."""
    extension: dict[Variable, GroundTerm] = dict(assignment)
    fresh: list[Null] = []
    for var in sorted(tgd.existential_variables(), key=lambda v: v.name):
        null = nulls.fresh()
        extension[var] = null
        fresh.append(null)
    head_facts = apply_assignment(tgd.head, extension)
    new_facts = instance.add_all(head_facts)
    # Only count nulls that actually made it into a new fact.
    used = {null for fact in new_facts for null in fact.nulls()}
    created = tuple(null for null in fresh if null in used)
    return ChaseStep(index=index, constraint=tgd,
                     assignment=_freeze_assignment(assignment),
                     new_facts=tuple(new_facts), new_nulls=created,
                     oblivious=oblivious)


def apply_egd_step(instance: Instance, egd: EGD, assignment: Assignment,
                   index: int = 0, oblivious: bool = False) -> ChaseStep:
    """Execute an EGD step in place; raises :class:`ChaseFailure` when
    both terms are constants."""
    left = assignment[egd.lhs]
    right = assignment[egd.rhs]
    if left == right:
        raise ValueError("EGD step requires mu(x_i) != mu(x_j)")
    if isinstance(right, Null):
        old, new = right, left
    elif isinstance(left, Null):
        old, new = left, right
    else:
        raise ChaseFailure(
            f"EGD {egd.display_name()} equates distinct constants "
            f"{left} and {right}")
    changed = instance.substitute_term(old, new)
    return ChaseStep(index=index, constraint=egd,
                     assignment=_freeze_assignment(assignment),
                     new_facts=tuple(changed), new_nulls=(),
                     substitution=(old, new), oblivious=oblivious)


def apply_step(instance: Instance, constraint: Constraint,
               assignment: Assignment, index: int = 0,
               oblivious: bool = False,
               nulls: NullFactory = NULLS) -> ChaseStep:
    """Dispatch on the constraint kind."""
    if isinstance(constraint, TGD):
        return apply_tgd_step(instance, constraint, assignment, index,
                              oblivious, nulls)
    assert isinstance(constraint, EGD)
    return apply_egd_step(instance, constraint, assignment, index, oblivious)
