"""The chase engine: steps, strategies, runners, core computation."""

from repro.chase.core import core, is_core
from repro.chase.core_chase import core_chase
from repro.chase.result import ChaseResult, ChaseStatus
from repro.chase.runner import (AbortChase, chase, chase_with_budget_probe,
                                DEFAULT_MAX_STEPS, oblivious_chase)
from repro.chase.step import (apply_egd_step, apply_step, apply_tgd_step,
                              ChaseStep)
from repro.chase.strategies import (OrderedStrategy, RandomStrategy,
                                    RoundRobinStrategy, StratifiedStrategy,
                                    Strategy)
from repro.chase.triggers import TriggerIndex

__all__ = [
    "core", "core_chase", "is_core", "ChaseResult", "ChaseStatus", "AbortChase", "chase",
    "chase_with_budget_probe", "DEFAULT_MAX_STEPS", "oblivious_chase",
    "apply_egd_step", "apply_step", "apply_tgd_step", "ChaseStep",
    "OrderedStrategy", "RandomStrategy", "RoundRobinStrategy",
    "StratifiedStrategy", "Strategy", "TriggerIndex",
]
