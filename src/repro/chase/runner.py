"""Chase runners: the standard chase and the oblivious chase.

``chase`` repeatedly fires active triggers until either the instance
satisfies the constraint set (``TERMINATED``), an EGD fails
(``FAILED``), the step or fact budget is exhausted
(``EXCEEDED_BUDGET``), the wall-clock budget is exhausted
(``EXCEEDED_WALL_CLOCK``) or an observer aborts the run
(``ABORTED_BY_MONITOR``; see Section 4.2 of the paper and
:mod:`repro.datadep.monitored_chase`).  Every budget abort surfaces as
a :class:`~repro.chase.result.ChaseResult` carrying the partial run --
budgets never raise, so a divergent chase can be bounded and its
prefix inspected (the operational face of the paper's termination
guarantees; the batch service of :mod:`repro.service` relies on it).

``oblivious_chase`` fires every (constraint, body-homomorphism) pair
exactly once regardless of satisfaction -- the variant underlying the
corrected stratification condition of Section 3.3.

Both runners discover triggers incrementally through a
:class:`repro.chase.triggers.TriggerIndex` (semi-naive evaluation:
seed once, then only delta-restricted searches per step).  Pass
``naive=True`` to restore full re-enumeration on every step -- the
reference path used by the cross-validation tests.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Optional, Sequence

from repro.chase.result import ChaseResult, ChaseStatus
from repro.chase.step import ChaseStep, apply_step
from repro.chase.strategies import RoundRobinStrategy, Strategy
from repro.chase.triggers import TriggerIndex
from repro.homomorphism.engine import find_homomorphisms
from repro.homomorphism.extend import freeze_assignment_ids
from repro.lang.constraints import Constraint
from repro.lang.errors import ChaseFailure
from repro.lang.instance import Instance
from repro.lang.terms import NullFactory, NULLS
from repro.obs import trace as _trace
from repro.obs.metrics import OBS

Observer = Callable[[ChaseStep, Instance], None]


def _record_run(result: ChaseResult, max_steps: int) -> None:
    """Fold one finished run into the metrics registry.

    Run-level only -- the per-step loop stays uninstrumented so the
    enabled overhead is one pass over the recorded sequence, and the
    disabled overhead is a single ``OBS.enabled`` check per run.
    """
    steps = len(result.sequence)
    OBS.inc("chase.runs")
    OBS.inc(f"chase.status.{result.status.value}")
    OBS.inc("chase.steps", steps)
    OBS.inc("chase.triggers_fired", steps)
    OBS.inc("chase.facts_added",
            sum(len(step.new_facts) for step in result.sequence))
    OBS.inc("chase.new_nulls", result.new_null_count())
    OBS.observe("chase.steps_per_run", steps)
    if max_steps > 0:
        # Pay-as-you-go accounting (Proposition 11): how much of the
        # granted step budget the run actually consumed.
        OBS.observe("chase.budget.step_fraction", steps / max_steps)


class AbortChase(Exception):
    """Raised by an observer to abort the run (monitored chase)."""

    def __init__(self, reason: str) -> None:
        self.reason = reason
        super().__init__(reason)


DEFAULT_MAX_STEPS = 10_000


def _guard_fresh_nulls(working: Instance, nulls: NullFactory) -> None:
    """Make the factory's future labels disjoint from the instance's.

    Source instances may carry labeled nulls (``?n7`` in spec text);
    a factory whose counter lags behind them would hand out "fresh"
    nulls that alias existing values, and an EGD equating the old one
    would silently corrupt the new one.
    """
    nulls.advance_past(max((null.label for null in working.nulls()),
                           default=0))


class _Budget:
    """Shared per-run budget bookkeeping (facts + wall clock).

    ``check`` returns the abort result to hand back, or None to keep
    going.  The step budget stays with the runner loops themselves
    (their iteration counters double as step indices)."""

    __slots__ = ("max_facts", "wall_clock", "deadline")

    def __init__(self, max_facts: Optional[int],
                 wall_clock: Optional[float]) -> None:
        if max_facts is not None and max_facts < 0:
            raise ValueError("max_facts must be non-negative")
        if wall_clock is not None and wall_clock < 0:
            raise ValueError("wall_clock must be non-negative")
        self.max_facts = max_facts
        self.wall_clock = wall_clock
        self.deadline = (None if wall_clock is None
                         else time.monotonic() + wall_clock)

    def check(self, working: Instance, sequence: list,
              steps: int) -> Optional[ChaseResult]:
        if self.max_facts is not None and len(working) > self.max_facts:
            return ChaseResult(
                ChaseStatus.EXCEEDED_BUDGET, working, sequence,
                failure_reason=(f"fact budget of {self.max_facts} exceeded "
                                f"({len(working)} facts after {steps} steps)"))
        if self.deadline is not None and time.monotonic() >= self.deadline:
            return ChaseResult(
                ChaseStatus.EXCEEDED_WALL_CLOCK, working, sequence,
                failure_reason=(f"wall-clock budget of {self.wall_clock:g}s "
                                f"exhausted after {steps} steps"))
        return None


def chase(instance: Instance, sigma: Iterable[Constraint],
          strategy: Optional[Strategy] = None,
          max_steps: int = DEFAULT_MAX_STEPS,
          copy: bool = True,
          nulls: NullFactory = NULLS,
          observers: Sequence[Observer] = (),
          naive: bool = False,
          max_facts: Optional[int] = None,
          wall_clock: Optional[float] = None) -> ChaseResult:
    """Run the standard chase of ``instance`` with ``sigma`` (Section 2).

    The input instance is left untouched unless ``copy=False``.
    ``naive=True`` disables the incremental trigger index and
    re-enumerates all body homomorphisms on every selection (the
    pre-index reference behaviour, kept for cross-validation).

    ``max_facts`` bounds the working instance size (abort status
    ``EXCEEDED_BUDGET``, like the step budget); ``wall_clock`` bounds
    the elapsed seconds (abort status ``EXCEEDED_WALL_CLOCK``).  Both
    return the partial run instead of raising.
    """
    sigma = list(sigma)
    working = instance.copy() if copy else instance
    _guard_fresh_nulls(working, nulls)
    if strategy is None:
        strategy = RoundRobinStrategy()
    # start() keeps its historical two-argument shape, and the attach
    # hook is optional, so pre-index strategy objects (duck-typed or
    # subclassed) still work -- they just enumerate naively, and no
    # index is built (or fed deltas) for them at all.
    attach = getattr(strategy, "attach_triggers", None)
    triggers = (None if naive or attach is None
                else TriggerIndex(sigma, working))
    tracer = _trace.active()
    run_span = (tracer.start("chase", constraints=len(sigma),
                             max_steps=max_steps)
                if tracer is not None else None)

    def done(result: ChaseResult) -> ChaseResult:
        if OBS.enabled:
            _record_run(result, max_steps)
        if run_span is not None:
            tracer.finish(run_span, status=result.status.value,
                          steps=len(result.sequence))
        return result

    try:
        strategy.start(sigma, working)
        if attach is not None:
            attach(triggers)
        budget = _Budget(max_facts, wall_clock)
        sequence: list[ChaseStep] = []
        for index in range(max_steps):
            if tracer is not None and index % tracer.sample == 0:
                step_span = tracer.start("step", index=index)
                search_span = tracer.start("homomorphism_search")
                selection = strategy.select(working)
                tracer.finish(search_span)
            else:
                step_span = None
                selection = strategy.select(working)
            if selection is None:
                if step_span is not None:
                    tracer.finish(step_span, terminal=True)
                return done(ChaseResult(ChaseStatus.TERMINATED, working,
                                        sequence))
            # Budgets are checked only once an active trigger exists:
            # an instance that already reached its fixpoint is
            # TERMINATED no matter how large it is or how long the
            # final satisfaction check took.
            aborted = budget.check(working, sequence, index)
            if aborted is not None:
                return done(aborted)
            constraint, assignment = selection
            try:
                step = apply_step(working, constraint, assignment,
                                  index=index, nulls=nulls)
            except ChaseFailure as failure:
                return done(ChaseResult(ChaseStatus.FAILED, working,
                                        sequence,
                                        failure_reason=str(failure)))
            if triggers is not None:
                triggers.mark_fired(constraint, assignment)
            sequence.append(step)
            if step_span is not None:
                tracer.finish(step_span,
                              constraint=constraint.display_name(),
                              new_facts=len(step.new_facts))
            try:
                for observer in observers:
                    observer(step, working)
            except AbortChase as abort:
                return done(ChaseResult(ChaseStatus.ABORTED_BY_MONITOR,
                                        working, sequence,
                                        failure_reason=abort.reason))
        return done(ChaseResult(ChaseStatus.EXCEEDED_BUDGET, working,
                                sequence))
    finally:
        if triggers is not None:
            triggers.detach()
        if attach is not None:
            # Release the run-local index so a reused strategy falls
            # back to naive enumeration instead of consulting a dead
            # index bound to this run's working instance.
            attach(None)


def oblivious_chase(instance: Instance, sigma: Iterable[Constraint],
                    max_steps: int = DEFAULT_MAX_STEPS,
                    copy: bool = True,
                    nulls: NullFactory = NULLS,
                    observers: Sequence[Observer] = (),
                    naive: bool = False,
                    max_facts: Optional[int] = None,
                    wall_clock: Optional[float] = None) -> ChaseResult:
    """Run the oblivious chase: every trigger fires exactly once
    (Section 3.3's chase variant).

    Triggers are identified by (constraint, body image); new facts
    create new triggers, so the run terminates only when no unfired
    trigger remains or a budget (steps, facts or wall clock) runs out.
    The incremental path consumes the trigger queue directly -- the
    naive restart-enumeration loop (``naive=True``) re-scans all
    homomorphisms after every step.
    """
    if naive:
        return _oblivious_chase_naive(instance, sigma, max_steps, copy,
                                      nulls, observers, max_facts,
                                      wall_clock)
    sigma = list(sigma)
    working = instance.copy() if copy else instance
    _guard_fresh_nulls(working, nulls)
    triggers = TriggerIndex(sigma, working, oblivious=True)

    def done(result: ChaseResult) -> ChaseResult:
        if OBS.enabled:
            OBS.inc("chase.oblivious_runs")
            _record_run(result, max_steps)
        return result

    try:
        budget = _Budget(max_facts, wall_clock)
        sequence: list[ChaseStep] = []
        index = 0
        while True:
            selection = triggers.pop_unfired()
            if selection is None:
                return done(ChaseResult(ChaseStatus.TERMINATED, working,
                                        sequence))
            # As in the standard chase: a drained trigger queue is
            # TERMINATED; budgets only cut short runs with work left.
            aborted = budget.check(working, sequence, index)
            if aborted is not None:
                return done(aborted)
            constraint, assignment = selection
            if index >= max_steps:
                return done(ChaseResult(ChaseStatus.EXCEEDED_BUDGET,
                                        working, sequence))
            triggers.mark_fired(constraint, assignment)
            try:
                step = apply_step(working, constraint, assignment,
                                  index=index, oblivious=True, nulls=nulls)
            except ChaseFailure as failure:
                return done(ChaseResult(ChaseStatus.FAILED, working,
                                        sequence,
                                        failure_reason=str(failure)))
            index += 1
            sequence.append(step)
            try:
                for observer in observers:
                    observer(step, working)
            except AbortChase as abort:
                return done(ChaseResult(ChaseStatus.ABORTED_BY_MONITOR,
                                        working, sequence,
                                        failure_reason=abort.reason))
    finally:
        triggers.detach()


def _oblivious_chase_naive(instance: Instance, sigma: Iterable[Constraint],
                           max_steps: int = DEFAULT_MAX_STEPS,
                           copy: bool = True,
                           nulls: NullFactory = NULLS,
                           observers: Sequence[Observer] = (),
                           max_facts: Optional[int] = None,
                           wall_clock: Optional[float] = None) -> ChaseResult:
    """Reference oblivious chase: restart full enumeration per step."""
    sigma = list(sigma)
    working = instance.copy() if copy else instance
    _guard_fresh_nulls(working, nulls)
    # Fired-trigger keys are (constraint, interned assignment) pairs --
    # like the trigger index, the cache never hashes a boxed term.
    table = working.term_table
    budget = _Budget(max_facts, wall_clock)
    fired: set[tuple] = set()
    sequence: list[ChaseStep] = []
    index = 0
    progress = True
    while progress:
        progress = False
        for constraint in sigma:
            for assignment in find_homomorphisms(list(constraint.body),
                                                 working):
                key = (constraint, freeze_assignment_ids(assignment, table))
                if key in fired:
                    continue
                fired.add(key)
                if constraint.is_egd:
                    left = assignment[constraint.lhs]      # type: ignore[attr-defined]
                    right = assignment[constraint.rhs]     # type: ignore[attr-defined]
                    if left == right:
                        continue
                if index >= max_steps:
                    return ChaseResult(ChaseStatus.EXCEEDED_BUDGET, working,
                                       sequence)
                # A trigger is about to fire: budgets apply now (a
                # drained enumeration instead falls through to
                # TERMINATED regardless of instance size or time).
                aborted = budget.check(working, sequence, index)
                if aborted is not None:
                    return aborted
                try:
                    step = apply_step(working, constraint, assignment,
                                      index=index, oblivious=True,
                                      nulls=nulls)
                except ChaseFailure as failure:
                    return ChaseResult(ChaseStatus.FAILED, working, sequence,
                                       failure_reason=str(failure))
                index += 1
                sequence.append(step)
                progress = True
                try:
                    for observer in observers:
                        observer(step, working)
                except AbortChase as abort:
                    return ChaseResult(ChaseStatus.ABORTED_BY_MONITOR,
                                       working, sequence,
                                       failure_reason=abort.reason)
                # Restart enumeration: the instance (and hence the
                # trigger set) changed under our feet.
                break
            else:
                continue
            break
    return ChaseResult(ChaseStatus.TERMINATED, working, sequence)


def chase_with_budget_probe(instance: Instance, sigma: Iterable[Constraint],
                            budgets: Sequence[int],
                            strategy_factory=RoundRobinStrategy
                            ) -> tuple[ChaseResult, int]:
    """Run the chase with increasing budgets; return the first result
    that is not ``EXCEEDED_BUDGET`` (or the last one), plus the budget
    used.  Convenient for divergence experiments (Example 4)."""
    result: ChaseResult | None = None
    used = 0
    for budget in budgets:
        used = budget
        result = chase(instance, sigma, strategy=strategy_factory(),
                       max_steps=budget)
        if result.status is not ChaseStatus.EXCEEDED_BUDGET:
            return result, used
    assert result is not None
    return result, used
