"""Chase runners: the standard chase and the oblivious chase.

``chase`` repeatedly fires active triggers until either the instance
satisfies the constraint set (``TERMINATED``), an EGD fails
(``FAILED``), the step budget is exhausted (``EXCEEDED_BUDGET``) or an
observer aborts the run (``ABORTED_BY_MONITOR``; see Section 4.2 of
the paper and :mod:`repro.datadep.monitored_chase`).

``oblivious_chase`` fires every (constraint, body-homomorphism) pair
exactly once regardless of satisfaction -- the variant underlying the
corrected stratification condition of Section 3.3.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from repro.chase.result import ChaseResult, ChaseStatus
from repro.chase.step import ChaseStep, apply_step
from repro.chase.strategies import RoundRobinStrategy, Strategy
from repro.homomorphism.engine import find_homomorphisms
from repro.homomorphism.extend import trigger_key
from repro.lang.constraints import Constraint
from repro.lang.errors import ChaseFailure
from repro.lang.instance import Instance
from repro.lang.terms import NullFactory, NULLS

Observer = Callable[[ChaseStep, Instance], None]


class AbortChase(Exception):
    """Raised by an observer to abort the run (monitored chase)."""

    def __init__(self, reason: str) -> None:
        self.reason = reason
        super().__init__(reason)


DEFAULT_MAX_STEPS = 10_000


def chase(instance: Instance, sigma: Iterable[Constraint],
          strategy: Optional[Strategy] = None,
          max_steps: int = DEFAULT_MAX_STEPS,
          copy: bool = True,
          nulls: NullFactory = NULLS,
          observers: Sequence[Observer] = ()) -> ChaseResult:
    """Run the standard chase of ``instance`` with ``sigma``.

    The input instance is left untouched unless ``copy=False``.
    """
    sigma = list(sigma)
    working = instance.copy() if copy else instance
    if strategy is None:
        strategy = RoundRobinStrategy()
    strategy.start(sigma, working)
    sequence: list[ChaseStep] = []
    for index in range(max_steps):
        selection = strategy.select(working)
        if selection is None:
            return ChaseResult(ChaseStatus.TERMINATED, working, sequence)
        constraint, assignment = selection
        try:
            step = apply_step(working, constraint, assignment,
                              index=index, nulls=nulls)
        except ChaseFailure as failure:
            return ChaseResult(ChaseStatus.FAILED, working, sequence,
                               failure_reason=str(failure))
        sequence.append(step)
        try:
            for observer in observers:
                observer(step, working)
        except AbortChase as abort:
            return ChaseResult(ChaseStatus.ABORTED_BY_MONITOR, working,
                               sequence, failure_reason=abort.reason)
    return ChaseResult(ChaseStatus.EXCEEDED_BUDGET, working, sequence)


def oblivious_chase(instance: Instance, sigma: Iterable[Constraint],
                    max_steps: int = DEFAULT_MAX_STEPS,
                    copy: bool = True,
                    nulls: NullFactory = NULLS,
                    observers: Sequence[Observer] = ()) -> ChaseResult:
    """Run the oblivious chase: every trigger fires exactly once.

    Triggers are identified by (constraint, body image); new facts
    create new triggers, so the run terminates only when no unfired
    trigger remains or the budget runs out.
    """
    sigma = list(sigma)
    working = instance.copy() if copy else instance
    fired: set[tuple] = set()
    sequence: list[ChaseStep] = []
    index = 0
    progress = True
    while progress:
        progress = False
        for constraint in sigma:
            for assignment in find_homomorphisms(list(constraint.body),
                                                 working):
                key = trigger_key(constraint, assignment)
                if key in fired:
                    continue
                fired.add(key)
                if constraint.is_egd:
                    left = assignment[constraint.lhs]      # type: ignore[attr-defined]
                    right = assignment[constraint.rhs]     # type: ignore[attr-defined]
                    if left == right:
                        continue
                if index >= max_steps:
                    return ChaseResult(ChaseStatus.EXCEEDED_BUDGET, working,
                                       sequence)
                try:
                    step = apply_step(working, constraint, assignment,
                                      index=index, oblivious=True,
                                      nulls=nulls)
                except ChaseFailure as failure:
                    return ChaseResult(ChaseStatus.FAILED, working, sequence,
                                       failure_reason=str(failure))
                index += 1
                sequence.append(step)
                progress = True
                try:
                    for observer in observers:
                        observer(step, working)
                except AbortChase as abort:
                    return ChaseResult(ChaseStatus.ABORTED_BY_MONITOR,
                                       working, sequence,
                                       failure_reason=abort.reason)
                # Restart enumeration: the instance (and hence the
                # trigger set) changed under our feet.
                break
            else:
                continue
            break
    return ChaseResult(ChaseStatus.TERMINATED, working, sequence)


def chase_with_budget_probe(instance: Instance, sigma: Iterable[Constraint],
                            budgets: Sequence[int],
                            strategy_factory=RoundRobinStrategy
                            ) -> tuple[ChaseResult, int]:
    """Run the chase with increasing budgets; return the first result
    that is not ``EXCEEDED_BUDGET`` (or the last one), plus the budget
    used.  Convenient for divergence experiments."""
    result: ChaseResult | None = None
    used = 0
    for budget in budgets:
        used = budget
        result = chase(instance, sigma, strategy=strategy_factory(),
                       max_steps=budget)
        if result.status is not ChaseStatus.EXCEEDED_BUDGET:
            return result, used
    assert result is not None
    return result, used
