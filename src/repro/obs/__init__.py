"""Observability: a near-zero-overhead metrics registry and tracer.

The engine's execution is spread over three join paths, a fingerprint
cache and a multiprocess pool; :mod:`repro.obs` is the one place their
runtime behaviour becomes visible.  Two small modules:

* :mod:`repro.obs.metrics` -- process-wide counters / gauges /
  histograms behind a module-level registry (``OBS``).  Disabled by
  default; every instrumented call site guards with ``if OBS.enabled``
  so the disabled cost is a single attribute load per site and the
  registry never allocates.  Enable with ``REPRO_OBS=1`` or the
  ``--metrics`` CLI flags.  Snapshots are plain JSON-able dicts that
  merge associatively -- the worker pool ships per-job snapshots over
  its result pipe and the scheduler merges them into fleet-wide
  totals.
* :mod:`repro.obs.trace` -- hierarchical spans (job -> chase -> step
  -> homomorphism search) emitted as NDJSON records with monotonic
  timestamps, the job fingerprint as trace id, and step-level
  sampling (``--trace-sample N``).

Neither module imports anything from the rest of the package, so any
layer may instrument itself without cycles.
"""

from repro.obs.metrics import (OBS, enable, enabled, merge, render_text,
                               render_prometheus, snapshot)
from repro.obs.trace import Tracer, active, ndjson_writer, set_tracer

__all__ = [
    "OBS", "enable", "enabled", "merge", "render_text",
    "render_prometheus", "snapshot",
    "Tracer", "active", "ndjson_writer", "set_tracer",
]
