"""Hierarchical tracing: NDJSON span records with sampling.

A :class:`Tracer` maintains a stack of open :class:`Span` objects and
emits one JSON-able record per *finished* span::

    {"trace": <trace id>, "span": "<pid>-<n>", "parent": ... | null,
     "name": "chase", "ts": <monotonic start>, "dur": <seconds>,
     "attrs": {...}}

Spans nest through the stack: whatever span is open when ``start`` is
called becomes the new span's parent, giving the job -> chase -> step
-> homomorphism-search hierarchy without any plumbing through the
layers.  Records are emitted *child first* (a parent closes last);
consumers that need the tree resolve parents after reading the whole
file (``tools/check_trace.py`` does).

The **trace id** groups all spans of one logical request; the service
layer sets it to the job's content fingerprint
(:meth:`Tracer.trace_context`), so a multi-worker batch's interleaved
records can be attributed per job.  Outside a job (bare ``repro
chase``) the id is ``"-"``.

``sample`` rate-limits the *step-granularity* spans: the chase loop
consults :meth:`Tracer.sampled` and only opens step/search spans for
every Nth step.  Run-level spans (job, chase) are always recorded.

Like the metrics registry, the module keeps one process-wide active
tracer (:func:`active` / :func:`set_tracer`); instrumented sites treat
``active() is None`` as "tracing off" and skip all work.  Worker
processes collect records into a list and ship them over the pool
pipe; the parent replays them into its own sink via :meth:`Tracer.emit`.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, List, Optional

#: Trace id used outside any job context.
NO_TRACE = "-"


class Span:
    """One open span; closed (and emitted) by :meth:`Tracer.finish`."""

    __slots__ = ("span_id", "parent", "name", "trace", "start", "attrs")

    def __init__(self, span_id: str, parent: Optional[str], name: str,
                 trace: str, start: float, attrs: dict) -> None:
        self.span_id = span_id
        self.parent = parent
        self.name = name
        self.trace = trace
        self.start = start
        self.attrs = attrs


class Tracer:
    """Emit hierarchical span records to a sink callable.

    ``sink`` receives one JSON-able dict per finished span (and per
    replayed record); ``sample`` is the step-span sampling rate (1 =
    every step); ``clock`` is injectable for tests.
    """

    def __init__(self, sink: Callable[[dict], None], sample: int = 1,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if sample < 1:
            raise ValueError("sample must be at least 1")
        self._sink = sink
        self.sample = sample
        self._clock = clock
        self._stack: List[Span] = []
        self._traces: List[str] = []
        self._count = 0
        self._pid = os.getpid()

    # -- trace identity -------------------------------------------------
    @property
    def trace_id(self) -> str:
        return self._traces[-1] if self._traces else NO_TRACE

    def trace_context(self, trace_id: str) -> "_TraceContext":
        """``with tracer.trace_context(fingerprint):`` -- spans opened
        inside carry ``trace_id`` (nested contexts restore on exit)."""
        return _TraceContext(self, trace_id)

    def sampled(self, index: int) -> bool:
        """Should the step-granularity span for step ``index`` be
        recorded under this tracer's sampling rate?"""
        return index % self.sample == 0

    # -- span lifecycle -------------------------------------------------
    def start(self, name: str, **attrs) -> Span:
        """Open a span named ``name``; the currently open span (if
        any) becomes its parent."""
        self._count += 1
        span = Span(
            span_id=f"{self._pid}-{self._count}",
            parent=self._stack[-1].span_id if self._stack else None,
            name=name, trace=self.trace_id,
            start=self._clock(), attrs=dict(attrs))
        self._stack.append(span)
        return span

    def finish(self, span: Span, **attrs) -> None:
        """Close ``span`` (plus any younger spans left open above it)
        and emit its record; ``attrs`` are merged in at close time."""
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if attrs:
            span.attrs.update(attrs)
        self.emit({
            "trace": span.trace,
            "span": span.span_id,
            "parent": span.parent,
            "name": span.name,
            "ts": span.start,
            "dur": max(0.0, self._clock() - span.start),
            "attrs": span.attrs,
        })

    def span(self, name: str, **attrs) -> "_SpanContext":
        """``with tracer.span("step", index=3):`` convenience form."""
        return _SpanContext(self, name, attrs)

    def emit(self, record: dict) -> None:
        """Send a finished-span record to the sink (also the replay
        entry point for records shipped from worker processes)."""
        self._sink(record)


class _TraceContext:
    __slots__ = ("_tracer", "_trace_id")

    def __init__(self, tracer: Tracer, trace_id: str) -> None:
        self._tracer = tracer
        self._trace_id = trace_id

    def __enter__(self) -> Tracer:
        self._tracer._traces.append(self._trace_id)
        return self._tracer

    def __exit__(self, *exc_info) -> None:
        self._tracer._traces.pop()


class _SpanContext:
    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: Tracer, name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> Span:
        self._span = self._tracer.start(self._name, **self._attrs)
        return self._span

    def __exit__(self, *exc_info) -> None:
        self._tracer.finish(self._span)


def ndjson_writer(handle) -> Callable[[dict], None]:
    """A sink writing one compact JSON line per record to ``handle``."""
    def sink(record: dict) -> None:
        handle.write(json.dumps(record, sort_keys=True,
                                separators=(",", ":")) + "\n")
    return sink


# ----------------------------------------------------------------------
# The process-wide active tracer
# ----------------------------------------------------------------------
_ACTIVE: Optional[Tracer] = None


def active() -> Optional[Tracer]:
    """The process-wide tracer, or None when tracing is off (the
    instrumented sites' fast path)."""
    return _ACTIVE


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` as the process-wide tracer; returns the
    previous one so callers can restore it."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


class tracing:
    """``with tracing(tracer):`` -- install for a scope, then restore."""

    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer: Optional[Tracer]) -> None:
        self._tracer = tracer

    def __enter__(self) -> Optional[Tracer]:
        self._previous = set_tracer(self._tracer)
        return self._tracer

    def __exit__(self, *exc_info) -> None:
        set_tracer(self._previous)
