"""The process-wide metrics registry (counters, gauges, histograms).

One module-level :class:`Registry` instance, :data:`OBS`, serves the
whole process.  The contract with instrumented call sites is what
keeps the disabled path truly free:

* every hot site guards itself with ``if OBS.enabled:`` before calling
  :meth:`Registry.inc` / :meth:`Registry.observe` -- when disabled the
  per-site cost is one attribute load and a falsy branch, and the
  registry's dicts are **never touched** (the no-op fast-path test
  asserts they stay empty);
* the methods themselves do *not* re-check ``enabled``, so tests can
  drive a private :class:`Registry` directly.

Metric names are flat dotted strings (``chase.steps``,
``plan.order_cache.hits``); there are no labels.  Counters are
monotonic ints, gauges are last-write-wins floats, histograms keep
``count / sum / min / max`` -- enough for throughput and latency
accounting without per-sample storage.

Snapshots (:func:`snapshot`) are plain JSON-able dicts and merge
associatively (:func:`merge` / :meth:`Registry.merge_snapshot`): the
worker pool ships per-job snapshots over its result pipe and the
scheduler folds them into the parent registry, so ``repro batch``
reports fleet-wide totals no matter which process did the work.

``REPRO_OBS`` enables the registry at import time (unset, empty,
``0``, ``false``, ``off`` and ``no`` mean disabled -- the default);
the ``--metrics`` CLI flags enable it per invocation.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

#: Environment switch; anything except 0/false/off/no/empty enables.
OBS_ENV_VAR = "REPRO_OBS"

_DISABLED_VALUES = frozenset(("", "0", "false", "off", "no"))


def _env_enabled(environ=os.environ) -> bool:
    return environ.get(OBS_ENV_VAR, "").strip().lower() \
        not in _DISABLED_VALUES


class Registry:
    """Counters, gauges and histograms under flat dotted names.

    ``enabled`` is public state consulted by every instrumented call
    site (see module docstring); flipping it never clears the data.
    """

    __slots__ = ("enabled", "counters", "gauges", "_hist")

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        # name -> [count, sum, min, max]
        self._hist: Dict[str, List[float]] = {}

    # -- recording ------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` (last write wins)."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the histogram ``name``."""
        entry = self._hist.get(name)
        if entry is None:
            self._hist[name] = [1, value, value, value]
            return
        entry[0] += 1
        entry[1] += value
        if value < entry[2]:
            entry[2] = value
        if value > entry[3]:
            entry[3] = value

    # -- snapshots ------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-able copy of everything recorded so far."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: {"count": entry[0], "sum": entry[1],
                       "min": entry[2], "max": entry[3]}
                for name, entry in self._hist.items()},
        }

    def merge_snapshot(self, snap: Optional[dict]) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histogram counts/sums add, histogram min/max
        widen, gauges take the incoming value (last write wins --
        gauges are point-in-time readings, not totals).  ``None`` and
        empty snapshots are accepted and ignored, so callers can merge
        ``result.metrics`` unconditionally.
        """
        if not snap:
            return
        for name, amount in snap.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + amount
        for name, value in snap.get("gauges", {}).items():
            self.gauges[name] = value
        for name, incoming in snap.get("histograms", {}).items():
            entry = self._hist.get(name)
            if entry is None:
                self._hist[name] = [incoming["count"], incoming["sum"],
                                    incoming["min"], incoming["max"]]
                continue
            entry[0] += incoming["count"]
            entry[1] += incoming["sum"]
            if incoming["min"] < entry[2]:
                entry[2] = incoming["min"]
            if incoming["max"] > entry[3]:
                entry[3] = incoming["max"]

    def clear(self) -> None:
        """Drop all recorded data (``enabled`` is untouched)."""
        self.counters.clear()
        self.gauges.clear()
        self._hist.clear()

    def empty(self) -> bool:
        """Has nothing ever been recorded?  (The no-op fast-path
        invariant: a disabled run leaves the registry empty.)"""
        return not (self.counters or self.gauges or self._hist)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Registry(enabled={self.enabled}, "
                f"{len(self.counters)} counters, "
                f"{len(self.gauges)} gauges, {len(self._hist)} histograms)")


#: The process-wide registry every instrumented call site consults.
OBS = Registry(enabled=_env_enabled())


# ----------------------------------------------------------------------
# Module-level convenience API over the global registry
# ----------------------------------------------------------------------
def enable(on: bool = True) -> None:
    """Turn the global registry on (or off)."""
    OBS.enabled = on


def enabled() -> bool:
    return OBS.enabled


def snapshot() -> dict:
    return OBS.snapshot()


def merge(snap: Optional[dict]) -> None:
    OBS.merge_snapshot(snap)


def reset() -> None:
    OBS.clear()


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_text(snap: dict) -> str:
    """A human-readable, sorted ``name value`` listing of a snapshot
    (the ``--metrics`` stderr report and ``repro stats`` output)."""
    lines: List[str] = []
    for name, value in sorted(snap.get("counters", {}).items()):
        lines.append(f"{name} {value}")
    for name, value in sorted(snap.get("gauges", {}).items()):
        lines.append(f"{name} {value:g}")
    for name, entry in sorted(snap.get("histograms", {}).items()):
        count = entry["count"]
        mean = entry["sum"] / count if count else 0.0
        lines.append(f"{name} count={count} sum={entry['sum']:g} "
                     f"min={entry['min']:g} max={entry['max']:g} "
                     f"mean={mean:g}")
    return "\n".join(lines) if lines else "(no metrics recorded)"


def _prom_name(name: str) -> str:
    """Prometheus metric name: ``repro_`` prefix, dots to underscores,
    anything outside ``[a-zA-Z0-9_]`` folded to ``_``."""
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_"
                      for ch in name)
    return f"repro_{cleaned}"


def render_prometheus(snap: dict) -> str:
    """Prometheus text exposition of a snapshot.

    Counters become ``counter`` samples, gauges ``gauge`` samples,
    histograms ``summary`` pairs (``_count`` / ``_sum``) plus
    ``_min`` / ``_max`` gauges -- the shape a future HTTP front-end
    can serve from ``/metrics`` verbatim.
    """
    lines: List[str] = []
    for name, value in sorted(snap.get("counters", {}).items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {value}")
    for name, value in sorted(snap.get("gauges", {}).items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {value}")
    for name, entry in sorted(snap.get("histograms", {}).items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} summary")
        lines.append(f"{prom}_count {entry['count']}")
        lines.append(f"{prom}_sum {entry['sum']}")
        lines.append(f"# TYPE {prom}_min gauge")
        lines.append(f"{prom}_min {entry['min']}")
        lines.append(f"# TYPE {prom}_max gauge")
        lines.append(f"{prom}_max {entry['max']}")
    return "\n".join(lines) + ("\n" if lines else "")
