"""An asyncio HTTP/1.1 gateway over the batch service.

``repro serve --http`` promotes the NDJSON stdin loop to a network
front-end.  The transport is deliberately minimal -- a hand-rolled
HTTP/1.1 parser over ``asyncio`` streams, stdlib only -- because the
serving semantics all live below it: every request body is interpreted
by the same :class:`~repro.service.dispatch.ServiceSession` dispatch
table the NDJSON loop uses, jobs execute through the same
:class:`~repro.service.scheduler.BatchScheduler` /
:class:`~repro.service.pool.WorkerPool`, and results replay from the
same fingerprint cache.  The NDJSON loop remains the transport-free
reference implementation; ``tests/service/test_http_stress.py``
cross-validates the two byte-for-byte.

Endpoints
---------
``POST /jobs``
    Submit a chase or query job spec (JSON body).  Replies ``202``
    with ``{"id", "fingerprint", "status": "queued"}``; ``?wait=1``
    blocks until completion and replies ``200`` with the result
    inline.  A warm fingerprint is answered ``200`` immediately from
    the cache without occupying a queue slot.
``GET /jobs/<id>``
    Poll a submitted job: state (``queued`` / ``running`` / ``done``),
    fingerprint, event count, and the result payload once done.
``GET /jobs/<id>/events``
    Chunked NDJSON stream of the job's progress events (the pool's
    ``queued`` / ``started`` / ``progress`` / ``finished`` stream),
    terminated by one ``{"kind": "result", ...}`` record.
``GET /results/<fingerprint>``
    Fetch a cached result by content fingerprint (``404`` on a miss).
``GET /stats``
    The live merged observability registry plus cache and gateway
    state.  Content negotiation: ``?format=prometheus`` or an
    ``Accept`` header preferring ``text/plain`` gets Prometheus text
    exposition (:func:`repro.obs.metrics.render_prometheus`).
``GET /healthz``
    Liveness probe (``200 {"status": "ok"}``; ``503`` while draining).
``POST /shutdown``
    Graceful drain (only when the gateway was started with
    ``allow_shutdown=True`` / ``--shutdown-endpoint``; ``404``
    otherwise).

Operational guarantees
----------------------
* **Backpressure**: the pending queue is bounded (``queue_bound``);
  submits beyond it get ``429`` with a ``Retry-After`` header instead
  of unbounded memory growth.
* **Budgets**: the session's per-request wall-clock clamp reuses the
  runner's ``EXCEEDED_WALL_CLOCK`` machinery, so an over-budget
  request surfaces as a structured partial result.
* **Robustness**: oversized payloads get ``413``, truncated bodies
  and malformed chunked encodings get ``400``, unknown paths ``404``,
  wrong methods ``405`` with ``Allow`` -- always a structured JSON
  error body, never a traceback or a hang (fuzzed in
  ``tests/integration/test_http_adversarial.py``).
* **Graceful shutdown**: draining rejects new submits with ``503``,
  finishes every queued and in-flight job, lets event streams
  complete, then releases the worker processes.
* **Observability**: request/status counters, queue-depth gauge and
  per-request latency histograms under ``http.*`` (visible on
  ``/stats`` like every other subsystem).

Execution model: the asyncio loop never blocks on a chase.  A single
runner task drains the pending queue in micro-batches of up to the
scheduler's worker count and hands them to
:meth:`BatchScheduler.run_batch` on a one-thread executor -- so
parallelism comes from the worker *processes* (one fork per worker,
as everywhere else), while the event loop keeps accepting, polling
and streaming.  Progress events hop threads via
``call_soon_threadsafe`` and are routed to job records by content
fingerprint.
"""

from __future__ import annotations

import asyncio
import json
import re
import signal
import time
from collections import deque, OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.obs import metrics as _metrics
from repro.obs.metrics import OBS
from repro.service.dispatch import (error_payload, JOB_KINDS, RequestError,
                                    request_kind, ServiceSession)
from repro.service.jobs import JobResult, STATUS_ERROR

__all__ = ["HttpGateway", "HttpError", "serve_http"]

_PHRASES = {
    200: "OK", 202: "Accepted", 204: "No Content",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    408: "Request Timeout", 411: "Length Required",
    413: "Payload Too Large", 429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error", 501: "Not Implemented",
    503: "Service Unavailable",
}

#: StreamReader buffer limit: bounds request/header/chunk-size lines
#: (bodies are length-checked explicitly against ``max_body``).
_LINE_LIMIT = 64 * 1024
_MAX_HEADERS = 100


class HttpError(Exception):
    """A request rejection carrying its HTTP mapping.

    ``code`` feeds the structured JSON error body (same shape as the
    NDJSON loop's error payloads); ``close`` forces the connection
    shut afterwards (set when the stream state is unknown, e.g. after
    a malformed body).
    """

    def __init__(self, status: int, reason: str,
                 code: str = "bad_request",
                 retry_after: Optional[float] = None,
                 allow: Optional[str] = None,
                 close: bool = False) -> None:
        super().__init__(reason)
        self.status = status
        self.reason = reason
        self.code = code
        self.retry_after = retry_after
        self.allow = allow
        self.close = close


@dataclass
class _Request:
    method: str
    path: str
    query: dict
    headers: dict
    body: bytes
    keep_alive: bool


@dataclass
class _JobRecord:
    """Parent-side state of one submitted job."""

    id: str
    name: str
    kind: str
    fingerprint: str
    job: object
    state: str = "queued"            # queued | running | done
    result: Optional[dict] = None
    events: List[dict] = field(default_factory=list)
    wakeup: asyncio.Event = field(default_factory=asyncio.Event)
    finished: asyncio.Event = field(default_factory=asyncio.Event)
    submitted: float = field(default_factory=time.monotonic)

    def poll_payload(self) -> dict:
        return {"id": self.id, "job": self.name, "kind": self.kind,
                "fingerprint": self.fingerprint, "status": self.state,
                "events": len(self.events), "result": self.result}


def _truthy(values: Optional[list]) -> bool:
    if not values:
        return False
    return values[0].strip().lower() not in ("", "0", "false", "no")


class HttpGateway:
    """The asyncio HTTP front-end over one :class:`ServiceSession`.

    The gateway does not own the session's scheduler -- whoever built
    the scheduler closes it (after :meth:`shutdown` has drained).
    ``queue_bound`` bounds the pending queue (backpressure);
    ``max_body`` bounds request bodies; ``batch_max`` (default: the
    pool's worker count) bounds how many queued jobs one executor
    round hands to the scheduler; ``max_records`` bounds the
    completed-job history kept for polling.
    """

    def __init__(self, session: ServiceSession,
                 host: str = "127.0.0.1", port: int = 0,
                 queue_bound: int = 64,
                 max_body: int = 1024 * 1024,
                 batch_max: Optional[int] = None,
                 header_timeout: float = 10.0,
                 max_records: int = 1024,
                 allow_shutdown: bool = False) -> None:
        if queue_bound < 1:
            raise ValueError("queue_bound must be at least 1")
        self.session = session
        self.host = host
        self.port = port
        self.queue_bound = queue_bound
        self.max_body = max_body
        self.batch_max = batch_max or max(
            1, session.scheduler.pool.workers)
        self.header_timeout = header_timeout
        self.max_records = max_records
        self.allow_shutdown = allow_shutdown
        self.draining = False
        self._records: "OrderedDict[str, _JobRecord]" = OrderedDict()
        self._by_fp: dict = {}       # fingerprint -> [record ids]
        self._queue: deque = deque()
        self._queued = asyncio.Event()
        self._open_jobs = 0
        self._drained = asyncio.Event()
        self._drained.set()
        self._next_id = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._runner_task: Optional[asyncio.Task] = None
        self._terminated = asyncio.Event()
        self._conn_tasks: set = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        # One executor thread: the scheduler (and its pool's pipe
        # polling) is single-threaded by design; parallelism comes
        # from the worker processes inside run_batch.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-http-runner")
        self._routes: List[Tuple[str, re.Pattern, Callable]] = [
            ("POST", re.compile(r"^/jobs$"), self._post_job),
            ("GET", re.compile(r"^/jobs/([^/]+)$"), self._get_job),
            ("GET", re.compile(r"^/jobs/([^/]+)/events$"),
             self._get_events),
            ("GET", re.compile(r"^/results/([0-9a-f]{6,64})$"),
             self._get_result),
            ("GET", re.compile(r"^/stats$"), self._get_stats),
            ("GET", re.compile(r"^/healthz$"), self._get_health),
            ("POST", re.compile(r"^/shutdown$"), self._post_shutdown),
        ]

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> "HttpGateway":
        self._loop = asyncio.get_running_loop()
        self._runner_task = asyncio.create_task(self._runner())
        self._server = await asyncio.start_server(
            self._on_connection, host=self.host, port=self.port,
            limit=_LINE_LIMIT)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def __aenter__(self) -> "HttpGateway":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.shutdown()

    def request_shutdown(self) -> None:
        """Signal-handler / endpoint entry: start a graceful drain."""
        if self._loop is not None and not self._terminated.is_set():
            self._loop.create_task(self.shutdown())

    async def wait_terminated(self) -> None:
        await self._terminated.wait()

    async def shutdown(self, drain_timeout: Optional[float] = None
                       ) -> None:
        """Graceful drain: refuse new submits, finish every queued and
        in-flight job, then stop the server and the runner.  The
        session's scheduler (and its worker processes) is left to its
        owner to close."""
        if self._terminated.is_set():
            return
        self.draining = True
        if self._server is not None:
            self._server.close()
        try:
            await asyncio.wait_for(self._drained.wait(),
                                   timeout=drain_timeout)
        except asyncio.TimeoutError:     # pragma: no cover - defensive
            pass
        if self._runner_task is not None:
            self._runner_task.cancel()
            try:
                await self._runner_task
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            await self._server.wait_closed()
        # Event streams have replayed their final record by now (all
        # jobs are done); anything still open is an idle keep-alive
        # connection parked on readline -- cut it.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks,
                                 return_exceptions=True)
        self._executor.shutdown(wait=True)
        self._terminated.set()

    # -- the runner -----------------------------------------------------
    async def _runner(self) -> None:
        while True:
            await self._queued.wait()
            batch: List[_JobRecord] = []
            while self._queue and len(batch) < self.batch_max:
                batch.append(self._queue.popleft())
            if not self._queue:
                self._queued.clear()
            self._gauge_queue()
            if not batch:
                continue
            for record in batch:
                record.state = "running"
                record.wakeup.set()
            try:
                results = await self._loop.run_in_executor(
                    self._executor, self._execute,
                    [record.job for record in batch])
            except Exception as exc:              # noqa: BLE001
                # The scheduler contract is "never raises"; this is
                # the transport's last-resort backstop so a submitted
                # job can never hang in "running" forever.
                results = [JobResult(
                    job=record.name, fingerprint=record.fingerprint,
                    status=STATUS_ERROR,
                    failure_reason=f"{type(exc).__name__}: {exc}")
                    for record in batch]
            for record, result in zip(batch, results):
                self._finish(record, result.to_dict())

    def _execute(self, jobs):
        """Executor-thread entry: one scheduler batch, events routed
        back into the loop thread."""
        loop = self._loop

        def on_event(event) -> None:
            payload = {"kind": event.kind, "job": event.job,
                       "detail": event.detail, "ts": event.ts,
                       "fingerprint": event.fingerprint}
            loop.call_soon_threadsafe(self._apply_event, payload)

        return self.session.scheduler.run_batch(jobs, on_event=on_event)

    def _apply_event(self, payload: dict) -> None:
        for record_id in self._by_fp.get(payload["fingerprint"], ()):
            record = self._records.get(record_id)
            if record is not None and record.state != "done":
                record.events.append(payload)
                record.wakeup.set()

    def _finish(self, record: _JobRecord, result: dict) -> None:
        record.result = result
        record.state = "done"
        ids = self._by_fp.get(record.fingerprint)
        if ids is not None:
            try:
                ids.remove(record.id)
            except ValueError:               # pragma: no cover
                pass
            if not ids:
                del self._by_fp[record.fingerprint]
        record.wakeup.set()
        record.finished.set()
        self._open_jobs -= 1
        if self._open_jobs == 0:
            self._drained.set()
        if OBS.enabled:
            OBS.inc("http.jobs_completed")
            OBS.observe("http.job_turnaround_s",
                        time.monotonic() - record.submitted)

    def _enqueue(self, record: _JobRecord) -> None:
        self._records[record.id] = record
        self._by_fp.setdefault(record.fingerprint, []).append(record.id)
        self._queue.append(record)
        self._open_jobs += 1
        self._drained.clear()
        self._queued.set()
        self._gauge_queue()
        self._prune_records()

    def _remember(self, record: _JobRecord) -> None:
        """Track a record that never queues (cache fast path)."""
        self._records[record.id] = record
        self._prune_records()

    def _prune_records(self) -> None:
        while len(self._records) > self.max_records:
            oldest = next(iter(self._records))
            if self._records[oldest].state != "done":
                break
            del self._records[oldest]

    def _new_id(self) -> str:
        self._next_id += 1
        return f"j{self._next_id}"

    def _gauge_queue(self) -> None:
        if OBS.enabled:
            OBS.gauge("http.queue_depth", float(len(self._queue)))

    # -- connection handling -------------------------------------------
    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            pass
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.TimeoutError, OSError):
            pass
        finally:
            self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_connection(self, reader, writer) -> None:
        while True:
            started = time.perf_counter()
            try:
                request = await self._read_request(reader)
            except HttpError as exc:
                await self._respond_error(writer, exc, started)
                return                       # parser state is unknown
            if request is None:
                return                       # clean EOF between requests
            keep_alive = request.keep_alive
            try:
                streamed = await self._route(request, writer, started)
            except HttpError as exc:
                await self._respond_error(writer, exc, started)
                if exc.close or not keep_alive:
                    return
                continue
            except Exception as exc:          # noqa: BLE001
                await self._respond_error(
                    writer, HttpError(500, f"{type(exc).__name__}: {exc}",
                                      code="internal"), started)
                if not keep_alive:
                    return
                continue
            if streamed or not keep_alive:
                return

    async def _read_request(self, reader) -> Optional[_Request]:
        try:
            line = await asyncio.wait_for(reader.readline(),
                                          timeout=self.header_timeout)
        except asyncio.TimeoutError:
            raise HttpError(408, "timed out waiting for a request",
                            code="timeout", close=True) from None
        except ValueError:
            raise HttpError(431, "request line too long",
                            code="oversized_header", close=True) from None
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].upper().startswith("HTTP/1."):
            raise HttpError(400, "malformed request line",
                            code="malformed_request", close=True)
        method, target, version = parts
        headers = await self._read_headers(reader)
        body = await self._read_body(reader, method, headers)
        split = urlsplit(target)
        keep_alive = headers.get("connection", "").lower() != "close" \
            and not version.upper().endswith("/1.0")
        return _Request(method=method.upper(), path=split.path,
                        query=parse_qs(split.query), headers=headers,
                        body=body, keep_alive=keep_alive)

    async def _read_headers(self, reader) -> dict:
        headers: dict = {}
        for _ in range(_MAX_HEADERS + 1):
            try:
                line = await asyncio.wait_for(reader.readline(),
                                              timeout=self.header_timeout)
            except asyncio.TimeoutError:
                raise HttpError(408, "timed out reading headers",
                                code="timeout", close=True) from None
            except ValueError:
                raise HttpError(431, "header line too long",
                                code="oversized_header",
                                close=True) from None
            if line in (b"\r\n", b"\n"):
                return headers
            if not line:
                raise HttpError(400, "connection closed inside headers",
                                code="truncated_request", close=True)
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise HttpError(400, f"malformed header {name.strip()!r}",
                                code="malformed_header", close=True)
            headers[name.strip().lower()] = value.strip()
        raise HttpError(431, f"more than {_MAX_HEADERS} headers",
                        code="oversized_header", close=True)

    async def _read_body(self, reader, method: str, headers: dict) -> bytes:
        encoding = headers.get("transfer-encoding", "").lower()
        if encoding:
            if encoding != "chunked":
                raise HttpError(501, f"unsupported transfer encoding "
                                f"{encoding!r}", code="bad_chunking",
                                close=True)
            return await self._read_chunked(reader)
        raw_length = headers.get("content-length")
        if raw_length is None:
            # No Content-Length and no Transfer-Encoding: the request
            # has no body (RFC 9112); endpoints that need one reply
            # with a structured 400 for the empty payload.
            return b""
        try:
            length = int(raw_length)
        except ValueError:
            raise HttpError(400, f"malformed Content-Length "
                            f"{raw_length!r}", code="malformed_request",
                            close=True) from None
        if length < 0:
            raise HttpError(400, "negative Content-Length",
                            code="malformed_request", close=True)
        if length > self.max_body:
            raise HttpError(413, f"body of {length} bytes exceeds the "
                            f"{self.max_body}-byte limit",
                            code="payload_too_large", close=True)
        try:
            return await asyncio.wait_for(reader.readexactly(length),
                                          timeout=self.header_timeout)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "request body truncated",
                            code="truncated_body", close=True) from None
        except asyncio.TimeoutError:
            raise HttpError(408, "timed out reading the request body",
                            code="timeout", close=True) from None

    async def _read_chunked(self, reader) -> bytes:
        chunks: List[bytes] = []
        total = 0
        while True:
            try:
                line = await asyncio.wait_for(reader.readline(),
                                              timeout=self.header_timeout)
            except asyncio.TimeoutError:
                raise HttpError(408, "timed out reading chunks",
                                code="timeout", close=True) from None
            if not line.endswith(b"\n"):
                raise HttpError(400, "request body truncated inside "
                                "chunked encoding", code="truncated_body",
                                close=True)
            size_token = line.split(b";", 1)[0].strip()
            try:
                size = int(size_token, 16)
            except ValueError:
                raise HttpError(400, f"malformed chunk size "
                                f"{size_token[:32]!r}", code="bad_chunking",
                                close=True) from None
            if size < 0:
                raise HttpError(400, "negative chunk size",
                                code="bad_chunking", close=True)
            if size == 0:
                # Trailer section: lines until the blank terminator.
                for _ in range(_MAX_HEADERS):
                    trailer = await reader.readline()
                    if trailer in (b"\r\n", b"\n", b""):
                        return b"".join(chunks)
                raise HttpError(400, "unterminated chunk trailers",
                                code="bad_chunking", close=True)
            total += size
            if total > self.max_body:
                raise HttpError(413, f"chunked body exceeds the "
                                f"{self.max_body}-byte limit",
                                code="payload_too_large", close=True)
            try:
                data = await asyncio.wait_for(
                    reader.readexactly(size),
                    timeout=self.header_timeout)
                terminator = await asyncio.wait_for(
                    reader.readline(), timeout=self.header_timeout)
            except (asyncio.IncompleteReadError, asyncio.TimeoutError):
                raise HttpError(400, "request body truncated inside a "
                                "chunk", code="truncated_body",
                                close=True) from None
            if terminator not in (b"\r\n", b"\n"):
                raise HttpError(400, "chunk missing its CRLF terminator",
                                code="bad_chunking", close=True)
            chunks.append(data)

    # -- routing & responses -------------------------------------------
    async def _route(self, request: _Request, writer,
                     started: float) -> bool:
        """Dispatch one request; returns True if the handler streamed
        (connection must close its request/response cycle there)."""
        path_matched = []
        for method, pattern, handler in self._routes:
            match = pattern.match(request.path)
            if match is None:
                continue
            if method != request.method:
                path_matched.append(method)
                continue
            return await handler(request, writer, started,
                                 *match.groups())
        if path_matched:
            raise HttpError(405, f"{request.method} not allowed on "
                            f"{request.path}", code="method_not_allowed",
                            allow=", ".join(sorted(set(path_matched))))
        raise HttpError(404, f"no such endpoint: {request.path}",
                        code="not_found")

    def _json_body(self, request: _Request) -> dict:
        try:
            return json.loads(request.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}",
                            code="invalid_json") from None

    async def _respond_json(self, writer, status: int, payload: dict,
                            started: float,
                            extra: Optional[dict] = None) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        await self._respond_raw(writer, status, body, "application/json",
                                started, extra)

    async def _respond_raw(self, writer, status: int, body: bytes,
                           content_type: str, started: float,
                           extra: Optional[dict] = None) -> None:
        headers = {"Content-Type": content_type,
                   "Content-Length": str(len(body)),
                   "Connection": "keep-alive"}
        if extra:
            headers.update(extra)
        head = f"HTTP/1.1 {status} {_PHRASES.get(status, 'Unknown')}\r\n"
        head += "".join(f"{name}: {value}\r\n"
                        for name, value in headers.items())
        writer.write(head.encode("latin-1") + b"\r\n" + body)
        await writer.drain()
        self._account(status, started)

    async def _respond_error(self, writer, exc: HttpError,
                             started: float) -> None:
        extra = {}
        if exc.retry_after is not None:
            extra["Retry-After"] = f"{exc.retry_after:g}"
        if exc.allow is not None:
            extra["Allow"] = exc.allow
        if exc.close:
            extra["Connection"] = "close"
        try:
            await self._respond_json(writer, exc.status,
                                     error_payload(exc.reason, exc.code),
                                     started, extra)
        except (ConnectionError, OSError):   # client already gone
            self._account(exc.status, started)

    def _account(self, status: int, started: float) -> None:
        if OBS.enabled:
            OBS.inc("http.requests")
            OBS.inc(f"http.status.{status}")
            OBS.observe("http.request_latency_s",
                        time.perf_counter() - started)
            OBS.gauge("http.queue_depth", float(len(self._queue)))

    # -- endpoint handlers ---------------------------------------------
    async def _post_job(self, request: _Request, writer,
                        started: float) -> bool:
        if self.draining:
            raise HttpError(503, "gateway is draining", code="draining")
        payload = self._json_body(request)
        try:
            kind = request_kind(payload)
            if kind not in JOB_KINDS:
                raise RequestError(
                    f"POST /jobs takes a chase or query job spec, "
                    f"got kind {kind!r}", code="invalid_request",
                    kind=kind)
            job = self.session.parse_job(payload, kind)
        except RequestError as exc:
            raise HttpError(400, str(exc), code=exc.code) from None
        fingerprint = job.fingerprint()
        cache = self.session.scheduler.cache
        if fingerprint in cache.results:
            hit = cache.lookup_result(job)
            if hit is not None:
                record = _JobRecord(id=self._new_id(), name=job.name,
                                    kind=kind, fingerprint=fingerprint,
                                    job=job, state="done",
                                    result=hit.to_dict())
                record.wakeup.set()
                record.finished.set()
                self._remember(record)
                if OBS.enabled:
                    OBS.inc("http.cache_fastpath")
                await self._respond_json(writer, 200,
                                         record.poll_payload(), started)
                return False
        if len(self._queue) >= self.queue_bound:
            if OBS.enabled:
                OBS.inc("http.backpressure_429")
            raise HttpError(429, f"pending queue is full "
                            f"({self.queue_bound} jobs); retry shortly",
                            code="backpressure", retry_after=1.0)
        record = _JobRecord(id=self._new_id(), name=job.name, kind=kind,
                            fingerprint=fingerprint, job=job)
        self._enqueue(record)
        if OBS.enabled:
            OBS.inc("http.jobs_submitted")
        if _truthy(request.query.get("wait")):
            await record.finished.wait()
            await self._respond_json(writer, 200, record.poll_payload(),
                                     started)
            return False
        await self._respond_json(
            writer, 202,
            {"id": record.id, "job": job.name, "kind": kind,
             "fingerprint": fingerprint, "status": "queued",
             "queue_depth": len(self._queue),
             "links": {"poll": f"/jobs/{record.id}",
                       "events": f"/jobs/{record.id}/events",
                       "result": f"/results/{fingerprint}"}},
            started)
        return False

    def _record_or_404(self, record_id: str) -> _JobRecord:
        record = self._records.get(record_id)
        if record is None:
            raise HttpError(404, f"no such job: {record_id}",
                            code="not_found")
        return record

    async def _get_job(self, request: _Request, writer, started: float,
                       record_id: str) -> bool:
        record = self._record_or_404(record_id)
        await self._respond_json(writer, 200, record.poll_payload(),
                                 started)
        return False

    async def _get_events(self, request: _Request, writer,
                          started: float, record_id: str) -> bool:
        record = self._record_or_404(record_id)
        head = (b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/x-ndjson\r\n"
                b"Transfer-Encoding: chunked\r\n"
                b"Connection: close\r\n\r\n")
        writer.write(head)
        await writer.drain()
        if OBS.enabled:
            OBS.inc("http.event_streams")
        index = 0
        while True:
            while index < len(record.events):
                await self._write_chunk(writer, record.events[index])
                index += 1
            if record.state == "done":
                break
            record.wakeup.clear()
            await record.wakeup.wait()
        await self._write_chunk(writer, {"kind": "result",
                                         "job": record.name,
                                         "id": record.id,
                                         "result": record.result})
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        self._account(200, started)
        return True

    @staticmethod
    async def _write_chunk(writer, payload: dict) -> None:
        data = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        writer.write(f"{len(data):x}\r\n".encode("latin-1")
                     + data + b"\r\n")
        await writer.drain()

    async def _get_result(self, request: _Request, writer,
                          started: float, fingerprint: str) -> bool:
        payload = self.session.cached_result(fingerprint)
        if payload is None:
            raise HttpError(404, f"no cached result for fingerprint "
                            f"{fingerprint[:12]}...", code="not_found")
        await self._respond_json(writer, 200, payload, started)
        return False

    async def _get_stats(self, request: _Request, writer,
                         started: float) -> bool:
        accept = request.headers.get("accept", "")
        fmt = (request.query.get("format") or [""])[0].lower()
        wants_prometheus = (fmt == "prometheus"
                            or "openmetrics" in accept
                            or accept.startswith("text/plain"))
        snapshot = _metrics.snapshot()
        if wants_prometheus:
            body = _metrics.render_prometheus(snapshot).encode("utf-8")
            await self._respond_raw(writer, 200, body,
                                    "text/plain; version=0.0.4",
                                    started)
            return False
        payload = self.session.stats_payload()
        payload["gateway"] = {
            "queue_depth": len(self._queue),
            "queue_bound": self.queue_bound,
            "open_jobs": self._open_jobs,
            "records": len(self._records),
            "draining": self.draining,
            "workers_alive": self.session.scheduler.pool.alive_workers,
        }
        await self._respond_json(writer, 200, payload, started)
        return False

    async def _get_health(self, request: _Request, writer,
                          started: float) -> bool:
        status = 503 if self.draining else 200
        await self._respond_json(writer, status,
                                 {"status": "draining" if self.draining
                                  else "ok"}, started)
        return False

    async def _post_shutdown(self, request: _Request, writer,
                             started: float) -> bool:
        if not self.allow_shutdown:
            raise HttpError(404, "shutdown endpoint is not enabled "
                            "(--shutdown-endpoint)", code="not_found")
        await self._respond_json(writer, 202, {"status": "draining"},
                                 started)
        self.request_shutdown()
        return True


def serve_http(session: ServiceSession, host: str = "127.0.0.1",
               port: int = 8765, queue_bound: int = 64,
               max_body: int = 1024 * 1024,
               allow_shutdown: bool = False,
               announce=None) -> int:
    """Blocking entry point behind ``repro serve --http``.

    Prints one ``{"kind": "listening", ...}`` JSON line to stdout once
    the socket is bound (with ``--port 0`` this is how callers learn
    the ephemeral port), then serves until SIGINT/SIGTERM or a
    ``POST /shutdown`` triggers the graceful drain.
    """
    async def _main() -> None:
        gateway = HttpGateway(session, host=host, port=port,
                              queue_bound=queue_bound, max_body=max_body,
                              allow_shutdown=allow_shutdown)
        await gateway.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, gateway.request_shutdown)
            except (NotImplementedError, RuntimeError):
                pass                      # pragma: no cover - non-posix
        emit = announce or (lambda line: print(line, flush=True))
        emit(json.dumps({"kind": "listening", "host": gateway.host,
                         "port": gateway.port,
                         "queue_bound": gateway.queue_bound},
                        sort_keys=True))
        await gateway.wait_terminated()

    asyncio.run(_main())
    return 0
