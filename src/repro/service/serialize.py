"""Stable wire encoding of terms, facts, instances and chase results.

Everything that crosses a process boundary in the service layer does
so as plain JSON-able data produced here -- worker processes never
pickle live ``Instance``/``ChaseResult`` objects (their fact stores
carry listeners, posting lists and interning tables that have no
business on a wire).  The encoding is *stable*: encoding the same
content always yields the same bytes (facts are emitted in a canonical
sort order), which is what makes the encodings usable as fingerprint
payloads (:func:`repro.service.jobs.instance_fingerprint`).

Term encoding is tagged so that constants and nulls -- and constants
of different Python types -- never collide::

    Constant("a")  ->  ["c", "a"]
    Constant(7)    ->  ["c", 7]
    Null(3)        ->  ["n", 3]

An atom is ``[relation, [term, ...]]``; an instance is a dict carrying
its backend name and the sorted fact list; a chase result carries the
status, the final instance and summary statistics (the step sequence
deliberately does not cross the wire -- it holds live constraint and
assignment objects and is only consumed by in-process analyses).
"""

from __future__ import annotations

import json
from typing import Any, List, Optional

from repro.chase.result import ChaseResult, ChaseStatus
from repro.lang.atoms import Atom
from repro.lang.errors import ReproError
from repro.lang.instance import Instance
from repro.lang.terms import Constant, GroundTerm, Null


class WireError(ReproError):
    """Raised on malformed wire payloads or unencodable values."""


def encode_term(term: GroundTerm) -> list:
    """``["c", value]`` for constants, ``["n", label]`` for nulls."""
    if isinstance(term, Constant):
        if not isinstance(term.value, (str, int, float, bool)):
            raise WireError(f"constant value {term.value!r} is not "
                            "JSON-encodable")
        return ["c", term.value]
    if isinstance(term, Null):
        return ["n", term.label]
    raise WireError(f"cannot encode non-ground term {term!r}")


def decode_term(payload: Any) -> GroundTerm:
    # The isinstance guard matters: bare strings like "c7" would also
    # unpack into two characters and decode silently wrong.
    if not isinstance(payload, (list, tuple)) or len(payload) != 2:
        raise WireError(f"malformed term payload {payload!r}")
    tag, value = payload
    if tag == "c":
        return Constant(value)
    if tag == "n":
        return Null(int(value))
    raise WireError(f"unknown term tag {tag!r}")


def encode_atom(fact: Atom) -> list:
    """``[relation, [term, ...]]``."""
    return [fact.relation, [encode_term(arg) for arg in fact.args]]


def decode_atom(payload: Any) -> Atom:
    if not isinstance(payload, (list, tuple)) or len(payload) != 2:
        raise WireError(f"malformed atom payload {payload!r}")
    relation, args = payload
    if not isinstance(args, (list, tuple)):
        raise WireError(f"malformed atom payload {payload!r}")
    return Atom(relation, tuple(decode_term(arg) for arg in args))


def atom_sort_key(fact: Atom) -> str:
    """A canonical, injective sort key for facts (used everywhere the
    wire or a fingerprint needs a deterministic fact order)."""
    return json.dumps(encode_atom(fact), sort_keys=True)


def encode_facts(facts) -> List[list]:
    """The facts of any iterable, in canonical order."""
    return [encode_atom(fact)
            for fact in sorted(facts, key=atom_sort_key)]


def encode_instance(instance: Instance) -> dict:
    """A stable dict encoding of an instance (backend + sorted facts)."""
    return {"backend": instance.backend,
            "facts": encode_facts(instance)}


def decode_instance(payload: dict,
                    backend: Optional[str] = None) -> Instance:
    """Rebuild an instance; ``backend`` overrides the encoded one."""
    if not isinstance(payload, dict) or "facts" not in payload:
        raise WireError(f"malformed instance payload {payload!r}")
    facts = [decode_atom(fact) for fact in payload["facts"]]
    return Instance(facts, backend=backend or payload.get("backend"))


def encode_result(result: ChaseResult) -> dict:
    """Summary encoding of a chase result (no step sequence)."""
    return {
        "status": result.status.value,
        "steps": result.length,
        "new_nulls": result.new_null_count(),
        "failure_reason": result.failure_reason,
        "instance": encode_instance(result.instance),
    }


def decode_result(payload: dict) -> ChaseResult:
    """Rebuild a (sequence-free) chase result from its encoding."""
    if not isinstance(payload, dict) or "status" not in payload:
        raise WireError(f"malformed result payload {payload!r}")
    return ChaseResult(ChaseStatus(payload["status"]),
                       decode_instance(payload["instance"]),
                       sequence=(),
                       failure_reason=payload.get("failure_reason"))
