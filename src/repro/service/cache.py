"""Bounded LRU caches for job results and termination reports.

The service cache has two compartments, both keyed on content
fingerprints:

* **results** -- :class:`~repro.service.jobs.JobResult` objects keyed
  on :meth:`ChaseJob.fingerprint`.  Only *deterministic* outcomes are
  stored (``JobResult.cacheable``): a cached result replays exactly
  what execution would produce, so a warm hit legitimately skips the
  chase altogether.
* **reports** -- :class:`~repro.termination.report.TerminationReport`
  objects keyed on the set-level constraint fingerprint plus probe
  depth.  The scheduler consults this before every job to pick a
  strategy and a priority class; with a warm cache, scheduling a batch
  over one shared schema costs one analysis total.

Unlike the process-wide ``functools.lru_cache`` memo inside
:func:`repro.termination.report.analyze`, these caches are owned by a
service instance: bounded explicitly, shareable across batches, and
droppable without touching global state.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import replace
from typing import Any, Hashable, Iterable, Optional

from repro.lang.constraints import Constraint
from repro.obs.metrics import OBS
from repro.service.jobs import ChaseJob, JobResult
from repro.termination.report import (analyze, constraint_set_fingerprint,
                                      TerminationReport)


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    ``get`` promotes, ``put`` inserts/overwrites and evicts the
    coldest entries beyond ``maxsize``.  ``maxsize=0`` disables the
    cache entirely (every ``get`` misses, ``put`` is a no-op) --
    the switch behind ``repro batch --no-cache``.

    ``metric``, if given, mirrors the hit/miss/eviction counters into
    the observability registry under ``cache.<metric>.*`` (only while
    the registry is enabled).
    """

    def __init__(self, maxsize: int = 128,
                 metric: Optional[str] = None) -> None:
        if maxsize < 0:
            raise ValueError("maxsize must be non-negative")
        self.maxsize = maxsize
        self.metric = metric
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            if self.metric is not None and OBS.enabled:
                OBS.inc(f"cache.{self.metric}.misses")
            return default
        self._data.move_to_end(key)
        self.hits += 1
        if self.metric is not None and OBS.enabled:
            OBS.inc(f"cache.{self.metric}.hits")
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if self.maxsize == 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1
            if self.metric is not None and OBS.enabled:
                OBS.inc(f"cache.{self.metric}.evictions")

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        # Membership probes do not promote and are not counted.
        return key in self._data

    def clear(self) -> None:
        self._data.clear()

    def stats(self) -> dict:
        return {"size": len(self._data), "maxsize": self.maxsize,
                "hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LRUCache({self.stats()})"


class ServiceCache:
    """The two-compartment cache a scheduler (or server) owns."""

    def __init__(self, result_size: int = 256,
                 report_size: int = 128) -> None:
        self.results = LRUCache(result_size, metric="results")
        self.reports = LRUCache(report_size, metric="reports")

    # -- chase results --------------------------------------------------
    def lookup_result(self, job: ChaseJob) -> Optional[JobResult]:
        """A cached result for ``job``'s fingerprint, marked as such.

        The returned object is a fresh copy with ``cached=True`` and
        the *requesting* job's name, so callers can tell a warm hit
        from an execution without mutating the stored entry.
        """
        hit = self.results.get(job.fingerprint())
        if hit is None:
            return None
        return replace(hit, cached=True, job=job.name)

    def store_result(self, result: JobResult) -> bool:
        """Store ``result`` if its outcome is deterministic.

        Returns True if it was stored.  Timing-dependent outcomes
        (wall-clock aborts, kills, errors) are rejected: serving them
        for a later identical job would be unsound.
        """
        if not result.cacheable:
            return False
        # Metrics snapshots are stripped before caching: they describe
        # the *execution* that produced the result, and a warm replay
        # must not re-merge them into fleet-wide totals.
        self.results.put(result.fingerprint,
                         replace(result, cached=False, metrics=None))
        return True

    # -- termination reports --------------------------------------------
    def report_for(self, sigma: Iterable[Constraint],
                   max_k: int = 3) -> TerminationReport:
        """The termination report for ``sigma``, cached by content.

        Keyed on the *set-level* fingerprint (order- and label-
        insensitive), so jobs listing the same constraints in any
        order share one analysis.
        """
        sigma = list(sigma)
        key = (constraint_set_fingerprint(sigma), max_k)
        report = self.reports.get(key)
        if report is None:
            report = analyze(sigma, max_k=max_k)
            self.reports.put(key, report)
        return report

    def stats(self) -> dict:
        return {"results": self.results.stats(),
                "reports": self.reports.stats()}

    def clear(self) -> None:
        self.results.clear()
        self.reports.clear()
