"""Transport-neutral request dispatch for the serve front-ends.

Both serve transports -- the NDJSON stdin loop (``repro serve``) and
the asyncio HTTP gateway (``repro serve --http``,
:mod:`repro.service.http`) -- accept the same request payloads: job
spec dicts (chase or query) plus the ``{"kind": "stats"}``
introspection request.  This module is the single place those payloads
are interpreted, so the two transports cannot drift: a
:class:`ServiceSession` owns the scheduler, a **dispatch table** keyed
on the request kind, the per-request wall-clock budget clamp, and the
structured-error contract.

The error contract (regression-pinned in
``tests/service/test_dispatch.py``): *every* reply is a JSON-able
dict.  A request that fails -- unknown kind, missing required fields,
bad field types, or a handler blowing up after the dispatch-table
lookup succeeded -- comes back as::

    {"status": "error", "error": "<code>", "kind": "<kind-if-known>",
     "failure_reason": "<human-readable reason>"}

never as silence, a raised exception, or a traceback.  The ``kind``
echo matters operationally: a client batching mixed chase/query
requests over one connection can attribute a rejection without
correlating offsets.

Per-request budgets: a session constructed with ``request_wall_clock``
clamps every job's soft wall-clock budget to at most that many
seconds.  The clamp reuses the runner's ``EXCEEDED_WALL_CLOCK``
machinery -- an over-budget request comes back as a structured partial
result, not a dropped connection -- and is sound with respect to the
cache because the wall-clock budget is deliberately excluded from job
fingerprints (see :mod:`repro.service.jobs`).
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import Callable, Optional

from repro.lang.errors import ReproError
from repro.obs import metrics as _metrics
from repro.service.jobs import EventCallback, job_from_dict
from repro.service.scheduler import BatchScheduler
from repro.service.serialize import WireError

__all__ = ["RequestError", "ServiceSession", "error_payload",
           "request_kind"]

#: Request kinds the dispatch table serves (job kinds + introspection).
JOB_KINDS = ("chase", "query")


class RequestError(ReproError):
    """A structured request rejection any transport can map.

    ``code`` is a stable machine-readable discriminator (the
    ``error`` field of the reply payload), ``http_status`` the status
    the HTTP transport should use, ``kind`` the request kind when the
    dispatch-table lookup got far enough to know it.
    """

    def __init__(self, reason: str, *, code: str = "bad_request",
                 http_status: int = 400,
                 kind: Optional[str] = None) -> None:
        super().__init__(reason)
        self.code = code
        self.http_status = http_status
        self.kind = kind


def error_payload(reason: str, code: str = "bad_request",
                  kind: Optional[str] = None) -> dict:
    """The structured error reply shared by every transport."""
    payload = {"status": "error", "error": code,
               "failure_reason": reason}
    if kind is not None:
        payload["kind"] = kind
    return payload


def request_kind(request) -> str:
    """The dispatch key of a request payload.

    Mirrors :func:`repro.service.jobs.job_from_dict`'s discriminator
    exactly (explicit ``kind``; a ``query`` field implies a query
    job), so the table lookup and the job parser can never disagree
    about what a payload *is*.  Raises :class:`RequestError` for
    non-dict payloads and unknown kinds.
    """
    if not isinstance(request, dict):
        raise RequestError(
            f"request must be a JSON object, got {type(request).__name__}",
            code="invalid_request")
    kind = request.get("kind")
    if kind is None:
        return "query" if "query" in request else "chase"
    if not isinstance(kind, str):
        raise RequestError(f"request kind must be a string, got {kind!r}",
                           code="invalid_request")
    return kind


class ServiceSession:
    """One serving session: scheduler + dispatch table + budgets.

    ``scheduler`` is owned by the caller (close it there);
    ``request_wall_clock`` is the per-request budget clamp in seconds
    (None = trust job budgets as-is).
    """

    def __init__(self, scheduler: BatchScheduler,
                 request_wall_clock: Optional[float] = None) -> None:
        self.scheduler = scheduler
        self.request_wall_clock = request_wall_clock
        #: kind -> handler(request, kind, on_event) -> reply payload.
        self.handlers: dict = {
            "chase": self._handle_job,
            "query": self._handle_job,
            "stats": self._handle_stats,
        }

    # -- request handling ----------------------------------------------
    def handle(self, request,
               on_event: Optional[EventCallback] = None) -> dict:
        """Serve one request payload; always returns a reply dict.

        The try/except *around the handler call* is the satellite fix
        pinned by ``test_dispatch.py``: a request whose kind resolves
        through the dispatch table but whose required fields are
        missing (or whose handler raises for any other reason) must
        still produce a structured error reply -- the table lookup
        succeeding is no promise the payload is complete.
        """
        try:
            kind = request_kind(request)
            handler = self.handlers.get(kind)
            if handler is None:
                raise RequestError(
                    f"unknown request kind {kind!r} (expected one of "
                    f"{sorted(self.handlers)})", code="unknown_kind")
        except RequestError as exc:
            return error_payload(str(exc), exc.code, exc.kind)
        try:
            return handler(request, kind, on_event)
        except RequestError as exc:
            return error_payload(str(exc), exc.code, exc.kind or kind)
        except Exception as exc:                      # noqa: BLE001
            return error_payload(f"{type(exc).__name__}: {exc}",
                                 code="internal", kind=kind)

    def handle_line(self, line: str,
                    on_event: Optional[EventCallback] = None
                    ) -> Optional[dict]:
        """The NDJSON transport: one input line -> one reply payload
        (None for blank lines)."""
        line = line.strip()
        if not line:
            return None
        try:
            request = json.loads(line)
        except ValueError as exc:
            return error_payload(f"invalid JSON: {exc}",
                                 code="invalid_json")
        return self.handle(request, on_event=on_event)

    # -- job plumbing (shared with the HTTP gateway) -------------------
    def parse_job(self, request, kind: Optional[str] = None):
        """Parse, budget-clamp and plan a job spec payload.

        Returns the *planned* job (strategy pinned, unknown-set step
        cap applied), so its fingerprint is the one the cache and the
        results endpoint key on.  All parse/plan failures surface as
        :class:`RequestError`.
        """
        if kind is None:
            kind = request_kind(request)
        if kind not in JOB_KINDS:
            raise RequestError(f"not a job request kind: {kind!r}",
                               code="invalid_request", kind=kind)
        try:
            job = job_from_dict(request)
        except (WireError, ReproError) as exc:
            raise RequestError(f"{type(exc).__name__}: {exc}",
                               code="invalid_spec", kind=kind) from exc
        job = self.budgeted(job)
        try:
            job, _, _ = self.scheduler.plan_job(job)
        except Exception as exc:                      # noqa: BLE001
            raise RequestError(f"planning failed: {exc}",
                               code="invalid_spec", kind=kind) from exc
        return job

    def budgeted(self, job):
        """Clamp the job's soft wall-clock budget to the session's
        per-request budget (the tighter bound wins).  Sound for the
        cache: wall_clock is excluded from fingerprints."""
        budget = self.request_wall_clock
        if budget is None:
            return job
        if job.wall_clock is None or job.wall_clock > budget:
            return job.with_updates(wall_clock=budget)
        return job

    def cached_result(self, fingerprint: str) -> Optional[dict]:
        """A cached result payload by raw fingerprint (the HTTP
        ``GET /results/<fingerprint>`` endpoint); None on a miss."""
        hit = self.scheduler.cache.results.get(fingerprint)
        if hit is None:
            return None
        return replace(hit, cached=True).to_dict()

    def stats_payload(self) -> dict:
        """The introspection reply: live merged registry + cache."""
        return {"kind": "stats",
                "metrics": _metrics.snapshot(),
                "cache": self.scheduler.cache.stats()}

    # -- dispatch-table handlers ---------------------------------------
    def _handle_job(self, request, kind: str,
                    on_event: Optional[EventCallback]) -> dict:
        job = self.parse_job(request, kind)
        result = self.scheduler.run_one(job, on_event=on_event)
        return result.to_dict()

    def _handle_stats(self, request, kind: str,
                      on_event: Optional[EventCallback]) -> dict:
        return self.stats_payload()
