"""The batch chase service layer (above every other layer).

:mod:`repro.service` turns the single-run chase engine into a small
multi-request execution service -- the operational face of the paper's
termination guarantees: a request whose constraint set is provably
terminating can run unguarded, everything else runs behind explicit
step/fact/wall-clock budgets, and identical requests are answered from
a fingerprint-keyed cache without re-executing anything.

* :mod:`repro.service.serialize` -- stable wire encoding of terms,
  facts, instances and results (the only representation that crosses a
  process boundary);
* :mod:`repro.service.jobs` -- the declarative :class:`ChaseJob` spec
  with canonical content fingerprints over interned term/fact ids,
  plus in-process execution and the job-kind dispatch;
* :mod:`repro.service.query` -- certain-answer :class:`QueryJob`
  requests (Section 5 as a served workload: compiled CQ evaluation,
  Section 4 semantic optimization, depth-bounded fallback) sharing
  the same result form, cache, pool and scheduler;
* :mod:`repro.service.cache` -- bounded LRU caches for job results and
  termination reports;
* :mod:`repro.service.pool` -- a ``multiprocessing`` worker pool with
  per-job hard timeouts, cancellation and graceful degradation to
  in-process execution;
* :mod:`repro.service.scheduler` -- the batch scheduler: consults the
  cached :class:`~repro.termination.report.TerminationReport` to pick
  a strategy, runs guaranteed-terminating jobs ahead of budget-capped
  unknown ones, and streams progress events;
* :mod:`repro.service.dispatch` -- transport-neutral request dispatch
  (:class:`ServiceSession`): the kind-keyed dispatch table, structured
  error contract and per-request wall-clock clamp shared by the NDJSON
  loop and the HTTP gateway;
* :mod:`repro.service.http` -- the asyncio HTTP/1.1 front-end
  (``repro serve --http``): job submission, polling, chunked NDJSON
  event streams, fingerprint-keyed result fetches, ``/stats`` with
  Prometheus negotiation, bounded-queue backpressure and graceful
  drain.

CLI entry points: ``repro batch <dir>``, ``repro serve`` (NDJSON or
``--http``) and ``repro query``.
"""

from repro.service.cache import LRUCache, ServiceCache
from repro.service.dispatch import (error_payload, request_kind,
                                    RequestError, ServiceSession)
from repro.service.jobs import (ChaseJob, execute_any, execute_job,
                                instance_fingerprint, job_from_dict,
                                job_from_path, JobResult, ProgressEvent,
                                resolve_strategy, STATUS_ERROR,
                                STATUS_KILLED)
from repro.service.pool import WorkerPool
from repro.service.query import execute_query_job, QueryJob
from repro.service.scheduler import BatchScheduler
from repro.service.serialize import (decode_atom, decode_instance,
                                     decode_result, encode_atom,
                                     encode_instance, encode_result)

__all__ = [
    "BatchScheduler", "ChaseJob", "error_payload", "execute_any",
    "execute_job", "execute_query_job", "instance_fingerprint",
    "job_from_dict", "job_from_path", "JobResult", "LRUCache",
    "ProgressEvent", "QueryJob", "request_kind", "RequestError",
    "resolve_strategy", "ServiceCache", "ServiceSession", "STATUS_ERROR",
    "STATUS_KILLED", "WorkerPool", "decode_atom", "decode_instance",
    "decode_result", "encode_atom", "encode_instance", "encode_result",
]
