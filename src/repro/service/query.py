"""Certain-answer query jobs: Section 5 served as a batch workload.

A :class:`QueryJob` asks for the certain answers of a conjunctive
query over the knowledge base ``(I, Sigma)`` -- Theorem 9 /
Corollary 1 as a service request.  Query jobs are full citizens of the
batch layer: they share the :class:`~repro.service.jobs.JobResult`
wire form, the fingerprint-keyed :class:`~repro.service.cache
.ServiceCache`, the :class:`~repro.service.pool.WorkerPool` and the
:class:`~repro.service.scheduler.BatchScheduler`'s termination-aware
planning (``strategy="auto"`` pins Theorem 2's stratum order for
stratified-only sets; unknown sets get step-capped).  ``repro query``
is the CLI entry point, and ``repro batch`` / ``repro serve`` accept
query specs alongside chase specs (discriminated by the ``kind`` field
or simply the presence of ``query``).

Execution (:func:`execute_query_job`):

1. chase the instance exactly under the job's budgets (private
   :class:`~repro.lang.terms.NullFactory`, pinned strategy);
2. on termination, optionally rewrite the query through Section 4's
   semantic optimization (:func:`repro.kb.answering.optimize_query` --
   chase the frozen query, minimize via the core) and evaluate the
   rewriting: ``I^Sigma`` satisfies ``Sigma``, so equivalent queries
   agree there;
3. on a budget abort, fall back to the **depth-bounded chase** of
   :mod:`repro.kb.answering` and evaluate the *original* query on the
   finite prefix (sound for constants-only answers; the prefix need
   not satisfy ``Sigma``, so rewritings are not used) -- the result is
   flagged ``truncated``;
4. evaluate through the compiled id-level path of
   :mod:`repro.cq.evaluate` and return the answers as canonically
   sorted encoded rows.

Certain answers are constants-only, so the encoded result is
independent of null labeling -- byte-identical across workers and
process trees by construction, which makes every deterministic chase
status safely cacheable under the job fingerprint.
"""

from __future__ import annotations

import hashlib
import json
import time
import traceback
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.chase.result import ChaseStatus
from repro.chase.runner import DEFAULT_MAX_STEPS
from repro.cq.query import ConjunctiveQuery
from repro.kb.answering import (default_depth, depth_bounded_chase,
                                optimize_query)
from repro.lang.constraints import Constraint
from repro.lang.errors import ReproError
from repro.lang.instance import Instance
from repro.lang.parser import (_render_constraint_body, parse_constraints,
                               parse_query, render_constraints, render_query)
from repro.service.jobs import (check_spec_schema,
                                decode_spec_instance, EventCallback,
                                instance_fingerprint, JobResult,
                                load_spec_file, run_declared_chase,
                                spec_bool, spec_budget, spec_value,
                                STATUS_ERROR)
from repro.service.serialize import encode_instance, encode_term, WireError

__all__ = ["QueryJob", "execute_query_job"]


@dataclass(frozen=True)
class QueryJob:
    """A declarative certain-answer request.

    The chase-facing knobs (``strategy``, ``backend``, budgets,
    ``cycle_limit``, ``max_k``) mean exactly what they mean on
    :class:`~repro.service.jobs.ChaseJob`.  ``optimize`` switches the
    Section 4 rewriting step; ``depth_limit`` overrides the
    query-sized default of the depth-bounded fallback (and of the
    optimizer's own frozen-query chase).
    """

    #: Wire discriminator (see :func:`repro.service.jobs.job_from_dict`).
    kind = "query"

    name: str
    sigma: Tuple[Constraint, ...]
    instance: Instance
    query: ConjunctiveQuery
    strategy: str = "auto"
    backend: Optional[str] = None
    max_steps: int = DEFAULT_MAX_STEPS
    max_facts: Optional[int] = None
    wall_clock: Optional[float] = None
    cycle_limit: int = 0
    max_k: int = 3
    optimize: bool = True
    depth_limit: Optional[int] = None

    # -- canonical content fingerprint ---------------------------------
    def fingerprint(self) -> str:
        """SHA-256 digest of every outcome-relevant field.

        Same contract as :meth:`ChaseJob.fingerprint`: constraints in
        listed order (label-free), the instance via
        :func:`~repro.service.jobs.instance_fingerprint`, the rendered
        query, and every deterministic knob; the job name and the
        wall-clock budget are excluded.  Memoized on the frozen job.
        """
        memo = self.__dict__.get("_fingerprint")
        if memo is not None:
            return memo
        payload = json.dumps({
            "v": 1,
            "kind": "query",
            "sigma": [_render_constraint_body(c) for c in self.sigma],
            "instance": instance_fingerprint(self.instance),
            "query": render_query(self.query),
            "strategy": self.strategy,
            "backend": self.backend or self.instance.backend,
            "max_steps": self.max_steps,
            "max_facts": self.max_facts,
            "cycle_limit": self.cycle_limit,
            "max_k": self.max_k,
            "optimize": self.optimize,
            "depth_limit": self.depth_limit,
        }, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        object.__setattr__(self, "_fingerprint", digest)
        return digest

    # -- wire form ------------------------------------------------------
    def to_dict(self) -> dict:
        """A lossless JSON-able encoding (the pool's wire format)."""
        return {
            "kind": "query",
            "name": self.name,
            "constraints": render_constraints(self.sigma),
            "instance": encode_instance(self.instance),
            "query": render_query(self.query),
            "strategy": self.strategy,
            "backend": self.backend,
            "max_steps": self.max_steps,
            "max_facts": self.max_facts,
            "wall_clock": self.wall_clock,
            "cycle_limit": self.cycle_limit,
            "max_k": self.max_k,
            "optimize": self.optimize,
            "depth_limit": self.depth_limit,
        }

    @classmethod
    def from_dict(cls, payload: dict, name: Optional[str] = None
                  ) -> "QueryJob":
        """Build a query job from a spec dict (file, stdin line, wire).

        ``query`` is query text (``ans(x) <- body``); ``constraints``
        and ``instance`` follow the :meth:`ChaseJob.from_dict`
        conventions.
        """
        if not isinstance(payload, dict):
            raise WireError(f"job spec must be an object, got {payload!r}")
        try:
            constraints = payload["constraints"]
            raw_instance = payload["instance"]
            query_text = payload["query"]
        except KeyError as missing:
            raise WireError(f"query job spec misses key {missing}") from None
        if isinstance(constraints, (list, tuple)):
            constraints = "\n".join(constraints)
        if not isinstance(query_text, str):
            raise WireError(f"query must be query text, got {query_text!r}")
        backend = payload.get("backend")
        sigma = tuple(parse_constraints(constraints))
        instance = decode_spec_instance(raw_instance, backend)
        query = parse_query(query_text)
        check_spec_schema(sigma, instance, *query.body)
        return cls(
            name=payload.get("name") or name or "query",
            sigma=sigma,
            instance=instance,
            query=query,
            strategy=spec_value(payload, "strategy", "auto", str),
            backend=backend,
            max_steps=spec_value(payload, "max_steps", DEFAULT_MAX_STEPS,
                                 spec_budget("max_steps")),
            max_facts=spec_value(payload, "max_facts", None,
                                 spec_budget("max_facts")),
            wall_clock=spec_value(payload, "wall_clock", None,
                                  spec_budget("wall_clock", convert=float)),
            cycle_limit=spec_value(payload, "cycle_limit", 0,
                                   spec_budget("cycle_limit")),
            max_k=spec_value(payload, "max_k", 3, spec_budget("max_k")),
            optimize=spec_value(payload, "optimize", True,
                                spec_bool("optimize")),
            depth_limit=spec_value(payload, "depth_limit", None,
                                   spec_budget("depth_limit")),
        )

    @classmethod
    def from_path(cls, path) -> "QueryJob":
        """Load a query job from a JSON file (name defaults to stem)."""
        payload, stem = load_spec_file(path)
        return cls.from_dict(payload, name=stem)

    def with_updates(self, **changes) -> "QueryJob":
        """A copy with the given fields replaced (scheduler rewrites)."""
        return replace(self, **changes)

    def run_in_process(self, on_event: Optional[EventCallback] = None,
                       progress_every: int = 0,
                       worker: str = "inproc") -> JobResult:
        """The executor hook :func:`repro.service.jobs.execute_any`
        dispatches on."""
        return execute_query_job(self, on_event=on_event,
                                 progress_every=progress_every,
                                 worker=worker)


def _answer_sort_key(row: list) -> str:
    return json.dumps(row, sort_keys=True)


def execute_query_job(job: QueryJob,
                      on_event: Optional[EventCallback] = None,
                      progress_every: int = 0,
                      worker: str = "inproc") -> JobResult:
    """Run ``job`` in this process and return its wire-safe result.

    Exceptions never propagate (``status="error"`` results instead),
    and the encoded answers are canonically sorted -- deterministic
    regardless of worker, process tree or hash seed, since certain
    answers contain no nulls.
    """
    started = time.perf_counter()
    fingerprint = job.fingerprint()
    try:
        result, instance, sigma = run_declared_chase(
            job, on_event=on_event, progress_every=progress_every)
        if result.status is ChaseStatus.FAILED:
            # Inconsistent knowledge base: the chase result is
            # undefined (Section 2), so there is no instance to answer
            # over; surface the failure instead of fabricating answers.
            return JobResult(
                job=job.name, fingerprint=fingerprint,
                status=result.status.value, steps=result.length,
                failure_reason=result.failure_reason,
                query=render_query(job.query),
                elapsed=time.perf_counter() - started, worker=worker)
        target = job.query
        truncated = False
        if result.status is ChaseStatus.TERMINATED:
            evaluation_instance = result.instance
            if job.optimize:
                target = optimize_query(job.query, sigma,
                                        depth_limit=job.depth_limit)
        else:
            truncated = True
            depth = (job.depth_limit if job.depth_limit is not None
                     else default_depth(job.query, sigma))
            # The fallback honours the job's budgets too: total chase
            # work stays within ~2x the declared budget, so a
            # divergent request's blast radius remains bounded even
            # without the pool's hard-timeout backstop.
            evaluation_instance = depth_bounded_chase(
                instance, sigma, depth, max_steps=job.max_steps,
                max_facts=job.max_facts,
                wall_clock=job.wall_clock).instance
        answers = target.evaluate(evaluation_instance, constants_only=True)
        encoded = sorted(([encode_term(term) for term in row]
                          for row in answers), key=_answer_sort_key)
        return JobResult(
            job=job.name, fingerprint=fingerprint,
            status=result.status.value, steps=result.length,
            new_nulls=result.new_null_count(),
            answers=encoded, query=render_query(target),
            truncated=truncated,
            elapsed=time.perf_counter() - started, worker=worker)
    except ReproError as exc:
        reason = str(exc)
    except Exception:                                 # noqa: BLE001
        reason = traceback.format_exc(limit=8)
    return JobResult(job=job.name, fingerprint=fingerprint,
                     status=STATUS_ERROR, failure_reason=reason,
                     elapsed=time.perf_counter() - started, worker=worker)
