"""Budgeted batch scheduling of chase jobs.

The scheduler is where the paper's termination theory becomes an
operational policy.  For every job it consults the (cached)
:class:`~repro.termination.report.TerminationReport` of the job's
constraint set and derives:

* a **strategy** -- jobs with ``strategy="auto"`` keep the default
  order when every chase sequence is bounded (Theorems 3/5/6/7), get
  Theorem 2's stratum order when the set is merely stratified, and
  otherwise stay on the default but **must** be budget-capped;
* a **priority class** -- jobs whose constraint sets guarantee
  termination are scheduled ahead of unknown ones, so a batch's
  guaranteed work is never starved behind divergence suspects burning
  their budgets;
* a **budget cap** -- an unknown job whose step budget exceeds
  ``unknown_step_cap`` is clamped (with an event, never silently), so
  a single divergent request has bounded blast radius even before the
  pool's hard timeout.

Before dispatch, every job is looked up in the fingerprint cache --
warm hits are answered without executing anything.  Results with
deterministic outcomes are stored back, so re-running a batch is O(1)
per previously-seen job.

Progress streams through :class:`~repro.service.jobs.ProgressEvent`
callbacks: ``queued`` (with the scheduling verdict), ``cached``,
``started`` / ``progress`` / ``finished`` (from the pool and the
runner's observer hooks), ``killed`` and ``degraded``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Optional, Sequence, Tuple

from repro.chase.strategies import StratifiedStrategy
from repro.obs.metrics import OBS
from repro.service.cache import ServiceCache
from repro.service.jobs import (ChaseJob, EventCallback, JobResult,
                                ProgressEvent, STATUS_ERROR)
from repro.service.pool import WorkerPool
from repro.termination.report import TerminationReport

#: Step cap imposed on jobs whose termination is unknown.
DEFAULT_UNKNOWN_STEP_CAP = 10_000


class BatchScheduler:
    """Schedule and run a batch of chase jobs.

    ``workers``/``force_inprocess``/``default_hard_timeout``/
    ``progress_every`` configure the :class:`WorkerPool`; ``cache`` is
    shared across batches when provided (a server owns one for its
    lifetime).  ``unknown_step_cap`` bounds the step budget of jobs
    whose constraint set guarantees nothing (set to None to trust job
    budgets as-is).
    """

    def __init__(self, workers: int = 2,
                 cache: Optional[ServiceCache] = None,
                 on_event: Optional[EventCallback] = None,
                 unknown_step_cap: Optional[int] = DEFAULT_UNKNOWN_STEP_CAP,
                 default_hard_timeout: Optional[float] = None,
                 progress_every: int = 0,
                 force_inprocess: bool = False) -> None:
        self.cache = cache if cache is not None else ServiceCache()
        self.on_event = on_event
        self.unknown_step_cap = unknown_step_cap
        self.pool = WorkerPool(workers=workers,
                               default_hard_timeout=default_hard_timeout,
                               progress_every=progress_every,
                               force_inprocess=force_inprocess)

    # ------------------------------------------------------------------
    def _emit(self, event: ProgressEvent) -> None:
        if self.on_event is not None:
            self.on_event(event)

    def peek_cached(self, job: ChaseJob) -> Optional[JobResult]:
        """A cached result for ``job`` (after planning), without
        executing anything or emitting events; None on a miss or when
        planning itself fails (the failure will resurface, structured,
        when the job actually runs).  The HTTP gateway's submit fast
        path: a warm fingerprint is answered inline instead of
        occupying a queue slot."""
        try:
            planned, _, _ = self.plan_job(job)
        except Exception:                             # noqa: BLE001
            return None
        return self.cache.lookup_result(planned)

    def plan_job(self, job: ChaseJob) -> Tuple[ChaseJob, TerminationReport,
                                               bool]:
        """Resolve one job against its termination report.

        Returns ``(rewritten job, report, guaranteed)`` where
        ``guaranteed`` means some checked condition promises a
        terminating sequence for the strategy the job will run.
        """
        report = self.cache.report_for(job.sigma, max_k=job.max_k)
        if job.strategy == "auto":
            # Pin the concrete strategy now so the fingerprint (and
            # hence the cache key) reflects what actually runs, and so
            # worker processes skip re-resolving.  The policy itself
            # lives in TerminationReport.recommended_strategy() -- the
            # same source resolve_strategy("auto") consults.
            recommended = report.recommended_strategy()
            job = job.with_updates(
                strategy="stratified"
                if isinstance(recommended, StratifiedStrategy)
                else "round_robin")
        if job.strategy == "stratified" and not report.stratified:
            raise ValueError(f"job {job.name!r} requests the stratified "
                             "strategy but its constraint set is not "
                             "stratified")
        guaranteed = bool(report.guarantees_all_sequences
                          or (report.stratified
                              and job.strategy == "stratified"))
        if not guaranteed and self.unknown_step_cap is not None \
                and job.max_steps > self.unknown_step_cap:
            job = job.with_updates(max_steps=self.unknown_step_cap)
        return job, report, guaranteed

    # ------------------------------------------------------------------
    def run_batch(self, jobs: Sequence[ChaseJob],
                  should_cancel: Optional[Callable[[], bool]] = None,
                  on_event: Optional[EventCallback] = None
                  ) -> List[JobResult]:
        """Plan, cache-check, execute and collect a batch.

        Results come back in the *input* order regardless of the
        execution order (guaranteed-first) and of which results were
        answered from the cache.  ``on_event`` overrides the
        constructor's event sink for this call only -- the transport
        split: one scheduler can serve the NDJSON loop and the HTTP
        gateway's per-batch event routing at different call sites.
        """
        emit = on_event if on_event is not None else self._emit
        planned: List[Tuple[int, ChaseJob, bool]] = []
        results: List[Optional[JobResult]] = [None] * len(jobs)
        for index, job in enumerate(jobs):
            try:
                job, report, guaranteed = self.plan_job(job)
            except Exception as exc:                  # noqa: BLE001
                results[index] = JobResult(
                    job=job.name, fingerprint="", status=STATUS_ERROR,
                    failure_reason=f"planning failed: {exc}")
                emit(ProgressEvent("finished", job.name,
                                   {"status": STATUS_ERROR}))
                continue
            emit(ProgressEvent("queued", job.name, {
                "guaranteed": guaranteed,
                "strategy": job.strategy,
                "max_steps": job.max_steps,
                "report": report.fingerprint()[:12],
            }, fingerprint=job.fingerprint()))
            hit = self.cache.lookup_result(job)
            if hit is not None:
                results[index] = hit
                emit(ProgressEvent("cached", job.name,
                                   {"status": hit.status,
                                    "steps": hit.steps},
                                   fingerprint=job.fingerprint()))
                continue
            planned.append((index, job, guaranteed))
        # Intra-batch dedup: jobs with equal fingerprints execute once
        # and share the result (marked cached for the duplicates --
        # unless the shared outcome turns out non-deterministic, in
        # which case the duplicates run after all, below).  A disabled
        # result cache (--no-cache) disables dedup too: the user asked
        # for every job to really execute.
        dedup = self.cache.results.maxsize > 0
        first_of: dict = {}
        duplicates: List[Tuple[int, ChaseJob, str]] = []
        unique: List[Tuple[int, ChaseJob, bool]] = []
        for index, job, guaranteed in planned:
            fingerprint = job.fingerprint()
            if dedup and fingerprint in first_of:
                duplicates.append((index, job, fingerprint))
            else:
                first_of.setdefault(fingerprint, index)
                unique.append((index, job, guaranteed))
        # Guaranteed-terminating jobs first; stable within each class.
        unique.sort(key=lambda item: 0 if item[2] else 1)
        executed = self.pool.run([job for _, job, _ in unique],
                                 on_event=emit,
                                 should_cancel=should_cancel)
        by_index = {index: result
                    for (index, _, _), result in zip(unique, executed)}
        for index, result in by_index.items():
            results[index] = result
            self._absorb_metrics(result)
            self.cache.store_result(result)
        retry: List[Tuple[int, ChaseJob]] = []
        for index, job, fingerprint in duplicates:
            source = by_index[first_of[fingerprint]]
            if source.cacheable:
                results[index] = replace(source, job=job.name, cached=True)
                emit(ProgressEvent("cached", job.name,
                                   {"status": source.status,
                                    "via": source.job}))
            else:
                # The shared run ended in a timing-dependent state
                # (killed, error, wall clock) -- replaying that for a
                # job that never ran would be unsound, so execute it.
                retry.append((index, job))
        if retry:
            rerun = self.pool.run([job for _, job in retry],
                                  on_event=emit,
                                  should_cancel=should_cancel)
            for (index, _), result in zip(retry, rerun):
                results[index] = result
                self._absorb_metrics(result)
                self.cache.store_result(result)
        return results  # type: ignore[return-value]

    @staticmethod
    def _absorb_metrics(result: JobResult) -> None:
        """Fold a worker's per-job metrics snapshot into the parent
        registry (cross-process aggregation): after a batch the
        parent's counters are fleet-wide totals no matter which
        process -- or how many workers -- did the chasing.  In-process
        executions carry no snapshot (their counters landed here
        directly), so nothing double-counts.
        """
        if result.metrics:
            OBS.merge_snapshot(result.metrics)

    # ------------------------------------------------------------------
    def run_one(self, job: ChaseJob,
                should_cancel: Optional[Callable[[], bool]] = None,
                on_event: Optional[EventCallback] = None) -> JobResult:
        """Serve a single job through the same plan/cache/execute path
        (the ``repro serve`` loop).  Worker processes persist across
        calls; :meth:`close` releases them."""
        return self.run_batch([job], should_cancel=should_cancel,
                              on_event=on_event)[0]

    def close(self) -> None:
        """Release the pool's persistent worker processes."""
        self.pool.close()

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
