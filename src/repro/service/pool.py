"""A multiprocessing worker pool for chase and query jobs.

The pool keeps up to ``workers`` **persistent worker processes**, each
running a small job loop: receive a job spec over its pipe, execute
it (any job kind -- the loop dispatches through
:func:`repro.service.jobs.job_from_dict` / ``execute_any``), send the
wire-form result back, wait for the next.  Spawning is
paid once per worker (not once per job), so batch throughput scales
with workers instead of drowning in fork overhead; a worker that gets
killed (hard timeout, cancellation) is simply replaced by a fresh one
for the remaining jobs.  Live instances never cross the boundary --
everything on the pipe is the wire encoding of
:mod:`repro.service.serialize`.

On top of parallelism, the pool adds the operational guarantees the
in-process runner cannot give:

* **hard timeouts** -- a job that blows past its deadline (the soft
  ``wall_clock`` budget plus a grace period, or the pool-wide default)
  gets its worker SIGTERMed and surfaces as ``status="killed"``
  without disturbing sibling jobs;
* **cancellation** -- a ``should_cancel`` probe checked on every poll
  tick terminates running workers and drains the queue;
* **isolation** -- a worker that crashes (or a job that raises before
  the runner even starts) yields a ``status="error"`` result, never an
  exception in the caller.

When no hard-kill deadline is in play, single-job batches and
``workers=1`` runs skip worker startup and execute in-process; jobs
with a deadline always get a worker process (in-process execution
could not kill them).  If worker processes cannot be created at all
(restricted containers) or ``force_inprocess`` is set, the pool
**degrades gracefully** to sequential in-process execution: same
results, same events, minus the hard-kill backstop (the soft
wall-clock budget still bounds each job).

Workers stream :class:`~repro.service.jobs.ProgressEvent` messages
through the same pipe (every ``progress_every`` steps, via the
runner's observer hook), so a batch caller sees live per-step progress
from every process.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from typing import Callable, List, Optional, Sequence

from repro.obs import trace as _trace
from repro.obs.metrics import OBS
from repro.obs.trace import Tracer
from repro.service.jobs import (ChaseJob, EventCallback, execute_any,
                                job_from_dict, JobResult, ProgressEvent,
                                STATUS_ERROR, STATUS_KILLED)

#: Pipe sentinel telling a worker loop to exit cleanly.
_STOP = None

# Workers are created with the ``fork`` start method where the
# platform offers it: forked children inherit the parent's string-hash
# seed, and the byte-identical-results invariant of
# :func:`repro.service.jobs.execute_job` (iteration orders -> null
# labels) holds across the whole process tree.  On spawn-only
# platforms each worker draws its own hash seed, so results are only
# guaranteed equal up to null renaming there.
try:
    _MP = multiprocessing.get_context("fork")
except ValueError:  # pragma: no cover - spawn-only platform
    _MP = multiprocessing.get_context()


def _worker_loop(conn) -> None:
    """Worker-process entry point: serve jobs until told to stop.

    Must stay top-level (picklable under spawn start methods).  Every
    message in is ``(job_payload, progress_every, obs_cfg)`` where
    ``obs_cfg`` mirrors the parent's live observability state (or is
    None when everything is off); every message out is ``("event",
    kind, job, detail, ts, fingerprint)``, ``("trace", records)`` or
    ``("result", payload)``.

    Per-job observability: when the parent has metrics enabled the
    worker clears its own registry before the job and attaches the
    snapshot to the result payload as ``metrics`` (the scheduler
    merges it -- cross-process aggregation).  Trace records collect
    into a list and ship as one ``("trace", ...)`` message *before*
    the result, so the parent has replayed them by the time the
    worker is marked idle.
    """
    worker = f"pid-{os.getpid()}"
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is _STOP:
            break
        payload, progress_every, obs_cfg = message
        obs_cfg = obs_cfg or {}
        # Reconfigure per job: a persistent worker may serve metered
        # and unmetered jobs back to back.
        OBS.enabled = bool(obs_cfg.get("metrics"))
        if OBS.enabled:
            OBS.clear()
        records: list = []
        tracer = (Tracer(records.append,
                         sample=obs_cfg.get("sample", 1))
                  if obs_cfg.get("trace") else None)
        try:
            job = job_from_dict(payload)
            on_event: Optional[EventCallback] = None
            if progress_every > 0:
                def on_event(event: ProgressEvent) -> None:
                    try:
                        conn.send(("event", event.kind, event.job,
                                   event.detail, event.ts,
                                   event.fingerprint))
                    except (BrokenPipeError, OSError):  # parent went away
                        pass
            with _trace.tracing(tracer):
                result = execute_any(job, on_event=on_event,
                                     progress_every=progress_every,
                                     worker=worker)
        except Exception:                             # noqa: BLE001
            result = JobResult(job=payload.get("name", "job"),
                               fingerprint="", status=STATUS_ERROR,
                               failure_reason=traceback.format_exc(limit=8),
                               worker=worker)
        out = result.to_dict()
        if OBS.enabled:
            out["metrics"] = OBS.snapshot()
        try:
            if records:
                conn.send(("trace", records))
            conn.send(("result", out))
        except (BrokenPipeError, OSError):  # pragma: no cover
            break
    conn.close()


@dataclass
class _Assignment:
    index: int
    job: ChaseJob
    deadline: Optional[float]
    started: float


class _Worker:
    """Parent-side handle of one persistent worker process."""

    __slots__ = ("process", "conn", "assignment")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.assignment: Optional[_Assignment] = None

    @property
    def busy(self) -> bool:
        return self.assignment is not None

    def label(self) -> str:
        return f"pid-{self.process.pid}"


class WorkerPool:
    """Run chase jobs in parallel persistent worker processes.

    ``workers`` bounds concurrency; ``default_hard_timeout`` (seconds,
    None = never) is the kill deadline for jobs without a soft
    ``wall_clock`` budget; jobs *with* one get ``wall_clock +
    hard_timeout_grace`` (the soft budget aborts gracefully inside the
    worker, the hard deadline is only the backstop for a worker stuck
    inside one enormous step).  ``progress_every`` > 0 streams
    per-step progress events from the workers.
    """

    def __init__(self, workers: int = 2,
                 default_hard_timeout: Optional[float] = None,
                 hard_timeout_grace: float = 2.0,
                 progress_every: int = 0,
                 force_inprocess: bool = False) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.default_hard_timeout = default_hard_timeout
        self.hard_timeout_grace = hard_timeout_grace
        self.progress_every = progress_every
        self.force_inprocess = force_inprocess
        self.degraded = False
        self.executed = 0  # jobs actually run (workers + in-process)
        # Idle workers survive across run() calls ("one fork per
        # worker, not per job" holds for a serve loop too); close()
        # releases them.  Workers die with the parent regardless
        # (daemon processes), so close() is about promptness, not
        # correctness.
        self._workers: List[_Worker] = []

    # ------------------------------------------------------------------
    def worker_pids(self) -> List[int]:
        """PIDs of the currently live persistent workers.  The HTTP
        gateway's ``/stats`` gauge and the stress suite's no-leak
        assertion both read this (a drained pool reports [])."""
        return [worker.process.pid for worker in self._workers
                if worker.process.is_alive()]

    @property
    def alive_workers(self) -> int:
        return len(self.worker_pids())

    # ------------------------------------------------------------------
    def hard_timeout_for(self, job: ChaseJob) -> Optional[float]:
        if job.wall_clock is not None:
            return job.wall_clock + self.hard_timeout_grace
        return self.default_hard_timeout

    def run(self, jobs: Sequence[ChaseJob],
            on_event: Optional[EventCallback] = None,
            should_cancel: Optional[Callable[[], bool]] = None
            ) -> List[JobResult]:
        """Run ``jobs`` and return their results in input order."""
        jobs = list(jobs)
        emit = on_event or (lambda event: None)
        if self.force_inprocess:
            return self._run_inprocess(jobs, emit, should_cancel)
        needs_kill = any(self.hard_timeout_for(job) is not None
                         for job in jobs)
        if not needs_kill and (self.workers == 1 or len(jobs) <= 1):
            # No parallelism to gain and no kill deadline to enforce:
            # skip the worker startup.  Jobs *with* a hard timeout
            # always go through a worker process, even alone or at
            # workers=1 -- in-process execution could not kill them.
            return self._run_inprocess(jobs, emit, should_cancel)
        return self._run_pool(jobs, emit, should_cancel)

    # ------------------------------------------------------------------
    def _run_inprocess(self, jobs, emit, should_cancel) -> List[JobResult]:
        """Sequential degradation path: same contract, one process."""
        results: List[JobResult] = []
        for job in jobs:
            if should_cancel is not None and should_cancel():
                results.append(self._cancelled_result(job))
                emit(ProgressEvent("killed", job.name,
                                   {"reason": "cancelled"},
                                   fingerprint=job.fingerprint()))
                continue
            emit(ProgressEvent("started", job.name, {"worker": "inproc"},
                               fingerprint=job.fingerprint()))
            result = execute_any(job, on_event=emit,
                                 progress_every=self.progress_every)
            self.executed += 1
            results.append(result)
            emit(ProgressEvent("finished", job.name,
                               {"status": result.status,
                                "elapsed": round(result.elapsed, 3)},
                               fingerprint=job.fingerprint()))
        return results

    def _run_pool(self, jobs, emit, should_cancel) -> List[JobResult]:
        results: List[Optional[JobResult]] = [None] * len(jobs)
        queued_at = time.monotonic()
        pending = deque((index, job, queued_at)
                        for index, job in enumerate(jobs))
        pool = self._workers
        try:
            while pending or any(worker.busy for worker in pool):
                if should_cancel is not None and should_cancel():
                    self._cancel_everything(pool, pending, results, emit)
                    break
                self._dispatch(pool, pending, results, emit,
                               should_cancel)
                self._collect(pool, results, emit)
        finally:
            # Busy workers at this point mean an abnormal exit (an
            # exception above): kill them.  Idle workers are kept for
            # the next run() -- close() ends them for good.
            for worker in list(pool):
                if worker.busy:
                    self._terminate(worker)
                    worker.conn.close()
                    pool.remove(worker)
        for index, result in enumerate(results):
            if result is None:  # pragma: no cover - defensive
                results[index] = JobResult(
                    job=jobs[index].name,
                    fingerprint=jobs[index].fingerprint(),
                    status=STATUS_ERROR, failure_reason="lost result")
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _dispatch(self, pool, pending, results, emit,
                  should_cancel=None) -> None:
        """Hand pending jobs to idle workers, growing the pool up to
        its bound; degrade to in-process execution if workers cannot
        be created at all."""
        while pending:
            worker = next((w for w in pool
                           if not w.busy and w.process.is_alive()), None)
            if worker is None:
                alive = sum(1 for w in pool if w.process.is_alive())
                if alive >= self.workers:
                    return
                worker = self._spawn()
                if worker is None:
                    self.degraded = True
                    emit(ProgressEvent("degraded", pending[0][1].name,
                                       {"reason": "no worker process"}))
                    while pending:
                        index, job, _ = pending.popleft()
                        if (should_cancel is not None
                                and should_cancel()):
                            results[index] = self._cancelled_result(job)
                            emit(ProgressEvent(
                                "killed", job.name,
                                {"reason": "cancelled"},
                                fingerprint=job.fingerprint()))
                            continue
                        results[index] = execute_any(
                            job, on_event=emit,
                            progress_every=self.progress_every)
                        self.executed += 1
                        emit(ProgressEvent(
                            "finished", job.name,
                            {"status": results[index].status,
                             "elapsed": round(results[index].elapsed, 3)},
                            fingerprint=job.fingerprint()))
                    return
                pool.append(worker)
            index, job, enqueued = pending.popleft()
            try:
                worker.conn.send((job.to_dict(), self.progress_every,
                                  self._obs_config()))
            except (BrokenPipeError, OSError):
                # Worker died between jobs: drop it, requeue, retry.
                pending.appendleft((index, job, enqueued))
                pool.remove(worker)
                worker.conn.close()
                continue
            hard = self.hard_timeout_for(job)
            now = time.monotonic()
            if OBS.enabled:
                OBS.inc("pool.jobs_dispatched")
                OBS.observe("pool.dispatch_latency_s", now - enqueued)
            worker.assignment = _Assignment(
                index=index, job=job,
                deadline=(None if hard is None else now + hard),
                started=now)
            self.executed += 1
            emit(ProgressEvent("started", job.name,
                               {"worker": worker.label()},
                               fingerprint=job.fingerprint()))

    @staticmethod
    def _obs_config() -> Optional[dict]:
        """The parent's live observability state, shipped with every
        job so workers meter/trace exactly when the parent does (None
        when everything is off -- the common case)."""
        tracer = _trace.active()
        if not OBS.enabled and tracer is None:
            return None
        return {"metrics": OBS.enabled,
                "trace": tracer is not None,
                "sample": tracer.sample if tracer is not None else 1}

    def _spawn(self) -> Optional[_Worker]:
        try:
            parent_conn, child_conn = _MP.Pipe()
            process = _MP.Process(target=_worker_loop,
                                  args=(child_conn,),
                                  daemon=True)
            process.start()
            child_conn.close()
        except (OSError, ImportError, ValueError):
            return None
        return _Worker(process, parent_conn)

    def _collect(self, pool, results, emit) -> None:
        """One poll tick: drain ready pipes, enforce deadlines."""
        busy = {worker.conn: worker for worker in pool if worker.busy}
        if not busy:
            return
        now = time.monotonic()
        deadlines = [w.assignment.deadline for w in busy.values()
                     if w.assignment.deadline is not None]
        timeout = 0.2
        if deadlines:
            timeout = max(0.01, min(timeout, min(deadlines) - now))
        for conn in _connection_wait(list(busy), timeout=timeout):
            worker = busy[conn]
            assignment = worker.assignment
            try:
                message = conn.recv()
            except (EOFError, OSError):
                # The worker died mid-job (crash, OOM-kill, ...).
                worker.process.join(timeout=1.0)
                if OBS.enabled:
                    OBS.inc("pool.worker_crashes")
                results[assignment.index] = JobResult(
                    job=assignment.job.name,
                    fingerprint=assignment.job.fingerprint(),
                    status=STATUS_ERROR,
                    failure_reason=("worker exited with code "
                                    f"{worker.process.exitcode}"),
                    elapsed=time.monotonic() - assignment.started,
                    worker=worker.label())
                emit(ProgressEvent("finished", assignment.job.name,
                                   {"status": STATUS_ERROR},
                                   fingerprint=assignment.job.fingerprint()))
                pool.remove(worker)
                conn.close()
                continue
            if message[0] == "event":
                _, kind, name, detail, ts, fingerprint = message
                emit(ProgressEvent(kind, name, detail, ts=ts,
                                   fingerprint=fingerprint))
                continue
            if message[0] == "trace":
                # Replay worker-side span records into the parent's
                # sink (they already carry the job's trace id).
                tracer = _trace.active()
                if tracer is not None:
                    for record in message[1]:
                        tracer.emit(record)
                continue
            result = JobResult.from_dict(message[1])
            if result.elapsed == 0.0:
                # Results synthesized before the runner started (spec
                # parse errors in the worker) carry no elapsed time;
                # account the pool-observed wall clock so *every*
                # JobResult reports one.
                result.elapsed = time.monotonic() - assignment.started
            results[assignment.index] = result
            emit(ProgressEvent("finished", assignment.job.name,
                               {"status": result.status,
                                "steps": result.steps,
                                "elapsed": round(result.elapsed, 3)},
                               fingerprint=assignment.job.fingerprint()))
            worker.assignment = None        # idle again, ready for reuse
        now = time.monotonic()
        for worker in list(pool):
            assignment = worker.assignment
            if (assignment is not None and assignment.deadline is not None
                    and now > assignment.deadline):
                self._terminate(worker)
                if OBS.enabled:
                    OBS.inc("pool.hard_timeout_kills")
                results[assignment.index] = JobResult(
                    job=assignment.job.name,
                    fingerprint=assignment.job.fingerprint(),
                    status=STATUS_KILLED,
                    failure_reason=(
                        "hard timeout of "
                        f"{self.hard_timeout_for(assignment.job):g}s "
                        "exceeded; worker terminated"),
                    elapsed=now - assignment.started,
                    worker=worker.label())
                emit(ProgressEvent("killed", assignment.job.name,
                                   {"after": round(now - assignment.started,
                                                   3)},
                                   fingerprint=assignment.job.fingerprint()))
                pool.remove(worker)
                worker.conn.close()

    # ------------------------------------------------------------------
    def _cancel_everything(self, pool, pending, results, emit) -> None:
        for worker in list(pool):
            if worker.busy:
                assignment = worker.assignment
                self._terminate(worker)
                if OBS.enabled:
                    OBS.inc("pool.cancelled_jobs")
                results[assignment.index] = self._cancelled_result(
                    assignment.job)
                emit(ProgressEvent("killed", assignment.job.name,
                                   {"reason": "cancelled"},
                                   fingerprint=assignment.job.fingerprint()))
                pool.remove(worker)
                worker.conn.close()
        while pending:
            index, job, _ = pending.popleft()
            if OBS.enabled:
                OBS.inc("pool.cancelled_jobs")
            results[index] = self._cancelled_result(job)
            emit(ProgressEvent("killed", job.name, {"reason": "cancelled"},
                               fingerprint=job.fingerprint()))

    def close(self) -> None:
        """Stop every persistent worker (idle ones get the stop
        sentinel and a clean exit; anything unresponsive is killed).
        The pool can be used again afterwards -- workers respawn on
        demand."""
        for worker in self._workers:
            if worker.busy:
                self._terminate(worker)
            else:
                try:
                    worker.conn.send(_STOP)
                except (BrokenPipeError, OSError):
                    pass
                worker.process.join(timeout=1.0)
                if worker.process.is_alive():  # pragma: no cover
                    self._terminate(worker)
            worker.conn.close()
        self._workers.clear()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def _terminate(worker: _Worker, grace: float = 1.0) -> None:
        process = worker.process
        if process.is_alive():
            process.terminate()
        process.join(timeout=grace)
        if process.is_alive():  # pragma: no cover - stubborn worker
            process.kill()
            process.join(timeout=grace)

    @staticmethod
    def _cancelled_result(job: ChaseJob) -> JobResult:
        return JobResult(job=job.name, fingerprint=job.fingerprint(),
                         status=STATUS_KILLED, failure_reason="cancelled")
