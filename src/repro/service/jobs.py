"""Declarative chase jobs, content fingerprints and job execution.

A :class:`ChaseJob` is the unit of work of the batch service: a
constraint set, an input instance, a strategy spec and explicit
budgets.  Jobs are plain declarative data -- they can be written as
JSON files (``repro batch``), streamed over stdin (``repro serve``) or
built programmatically -- and every job has a canonical **content
fingerprint**: a SHA-256 digest computed over the interned term/fact
ids of its instance (via a fresh :class:`repro.storage.interning.TermTable`
filled in canonical fact order) together with the rendered constraint
list and every outcome-relevant knob.  Two jobs with equal
fingerprints are guaranteed to produce identical results, which is
what makes the fingerprint a sound cache key
(:mod:`repro.service.cache`).

The **wall-clock budget is deliberately excluded** from the
fingerprint: it can only change the outcome into the timing-dependent
``EXCEEDED_WALL_CLOCK`` status, which is never cached, so a cached
deterministic result remains valid for any wall-clock setting (and is
always faster than re-running).

Execution (:func:`execute_job`) is deterministic per job: every run
uses a private :class:`~repro.lang.terms.NullFactory` starting at 1,
so the same job yields byte-identical encoded results no matter which
worker process -- or how many sibling jobs -- ran it.
"""

from __future__ import annotations

import hashlib
import json
import time
import traceback
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from repro.chase.result import ChaseStatus
from repro.chase.runner import chase, DEFAULT_MAX_STEPS
from repro.chase.strategies import (OrderedStrategy, RandomStrategy,
                                    RoundRobinStrategy, Strategy)
from repro.datadep.monitored_chase import monitored_chase
from repro.lang.constraints import Constraint
from repro.lang.errors import ReproError
from repro.lang.instance import Instance
from repro.lang.schema import Schema
from repro.lang.parser import (_render_constraint_body, parse_atoms,
                               parse_constraints, render_constraints)
from repro.lang.terms import NullFactory
from repro.obs import trace as _trace
from repro.service.serialize import (atom_sort_key, decode_atom,
                                     encode_facts, encode_instance,
                                     encode_term, WireError)
from repro.storage.interning import TermTable

#: Non-chase job outcomes (the pool synthesizes these).
STATUS_KILLED = "killed"
STATUS_ERROR = "error"

#: Chase statuses whose outcome is a pure function of the job spec --
#: the only ones the result cache may store.
_DETERMINISTIC_STATUSES = frozenset(
    s.value for s in ChaseStatus if s.is_deterministic)

_STRATEGY_NAMES = ("auto", "ordered", "round_robin", "random", "stratified")


@dataclass(frozen=True)
class ProgressEvent:
    """One streaming event of a batch run (see the scheduler docs).

    ``ts`` is a monotonic timestamp taken at construction (workers
    construct events in their own process; on Linux ``CLOCK_MONOTONIC``
    is system-wide, so parent and worker timestamps interleave
    meaningfully).  ``fingerprint`` is the content fingerprint of the
    job the event belongs to -- with it, the interleaved event stream
    of a multi-worker batch can be attributed and timed per job even
    when two jobs share a name.
    """

    kind: str          # queued|started|progress|finished|cached|killed|...
    job: str           # job name
    detail: dict = field(default_factory=dict)
    ts: float = field(default_factory=time.monotonic)
    fingerprint: str = ""

    def render(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        tagged = f"[{self.kind}] {self.job}" + (f" {extras}" if extras else "")
        if self.fingerprint:
            tagged += f" fp={self.fingerprint[:12]}"
        return tagged + f" t={self.ts:.3f}"


def instance_fingerprint(instance: Instance) -> str:
    """Canonical content digest of an instance over interned ids.

    Facts are sorted canonically, their terms interned into a fresh
    :class:`TermTable` in first-occurrence order, and the digest is
    taken over both the id-level fact rows *and* the id -> term
    decoding table -- so the fingerprint depends on exactly the
    instance content, never on backend, insertion order or interning
    history of the live store.
    """
    table = TermTable()
    rows: List[list] = []
    for fact in sorted(instance, key=atom_sort_key):
        rows.append([fact.relation,
                     [table.intern(term) for term in fact.args]])
    terms = [encode_term(table.term(tid)) for tid in range(len(table))]
    payload = json.dumps({"terms": terms, "rows": rows},
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def resolve_strategy(spec: Optional[str],
                     sigma: List[Constraint],
                     max_k: int = 3) -> Optional[Strategy]:
    """Build a strategy object from a declarative spec string.

    ``ordered`` / ``round_robin`` / ``random[:seed]`` / ``stratified``
    map to the corresponding :mod:`repro.chase.strategies` classes.
    ``auto`` (or None) consults the memoized termination report: for
    sets where every order terminates the default round-robin is kept
    (returns None); for merely stratified sets Theorem 2's stratum
    order is required and returned; otherwise no strategy can help and
    the default is kept (budgets must bound the run).
    """
    if spec is None or spec == "auto":
        from repro.termination.report import analyze
        return analyze(sigma, max_k=max_k).recommended_strategy()
    name, _, arg = spec.partition(":")
    if name == "ordered":
        return OrderedStrategy()
    if name == "round_robin":
        return RoundRobinStrategy()
    if name == "random":
        return RandomStrategy(seed=int(arg) if arg else 0)
    if name == "stratified":
        from repro.termination.stratification import stratified_strategy
        return stratified_strategy(sigma)
    raise ValueError(f"unknown strategy spec {spec!r} "
                     f"(expected one of {_STRATEGY_NAMES})")


def decode_spec_instance(raw_instance, backend: Optional[str]) -> Instance:
    """Decode a job spec's instance field: either instance text (bare
    identifiers are constants, ``?n7`` nulls) or the wire dict of
    :func:`repro.service.serialize.encode_instance`."""
    if isinstance(raw_instance, dict):
        return Instance((decode_atom(fact) for fact in raw_instance["facts"]),
                        backend=backend or raw_instance.get("backend"))
    return Instance(parse_atoms(raw_instance, instance_mode=True),
                    backend=backend)


def check_spec_schema(sigma, instance: Instance, *extra_atoms) -> None:
    """Reject specs whose relations are used at inconsistent arities.

    Constraints, instance facts and (for query jobs) query atoms must
    agree on every relation's arity; a spec writing ``R(a)`` next to
    ``R(a, b)`` raises :class:`~repro.lang.errors.SchemaError` here --
    a structured, catchable error -- instead of producing undefined
    matching behaviour deep inside the chase.
    """
    schema = instance.schema()
    for constraint in sigma:
        schema = schema.merged(constraint.schema())
    for atom in extra_atoms:
        schema = schema.merged(Schema.infer([atom]))


def spec_value(payload: dict, key: str, default, convert):
    """A knob from a job spec dict: explicit JSON ``null`` (or an
    absent key) means "use the default", anything else is converted.
    Shared by every job kind's ``from_dict``."""
    value = payload.get(key)
    return default if value is None else convert(value)


def spec_budget(key: str, convert=int, minimum=0):
    """A validating numeric converter for :func:`spec_value`.

    Budgets from the wire must be numbers and non-negative (``max_k``
    at least 1): a negative or non-numeric budget in a hand-written or
    adversarial spec must surface as a structured :class:`WireError`
    -- which the serve loop and the CLI turn into an error payload --
    never as a traceback from deep inside the runner.
    """
    def converter(value):
        if isinstance(value, bool):
            raise WireError(f"{key} must be a number, got {value!r}")
        try:
            converted = convert(value)
        except (TypeError, ValueError):
            raise WireError(f"{key} must be a number, got {value!r}") \
                from None
        if converted < minimum:
            raise WireError(f"{key} must be >= {minimum}, "
                            f"got {converted!r}")
        return converted
    return converter


def spec_bool(key: str):
    """A strict boolean converter for :func:`spec_value`: JSON
    true/false only.  ``bool("false")`` is True, so coercing strings
    would silently invert a hand-written opt-out."""
    def convert(value):
        if not isinstance(value, bool):
            raise WireError(f"{key} must be true or false, "
                            f"got {value!r}")
        return value
    return convert


def load_spec_file(path) -> Tuple[dict, str]:
    """Read a JSON job spec file; returns ``(payload, stem)`` with
    JSON errors wrapped as :class:`WireError` (one loader for every
    job kind's ``from_path`` and for :func:`job_from_path`)."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise WireError(f"{path}: invalid job JSON ({exc})") from exc
    return payload, path.stem


@dataclass(frozen=True)
class ChaseJob:
    """A declarative chase request.

    ``strategy`` is a spec string (see :func:`resolve_strategy`);
    ``backend`` overrides the instance's fact-store backend;
    ``max_steps``/``max_facts``/``wall_clock`` are the budgets
    forwarded to the runner; ``cycle_limit`` > 0 arms the Section 4.2
    monitor; ``max_k`` bounds the termination probe used by ``auto``
    strategy resolution and by the scheduler.
    """

    #: Wire discriminator (see :func:`job_from_dict`).
    kind = "chase"

    name: str
    sigma: Tuple[Constraint, ...]
    instance: Instance
    strategy: str = "auto"
    backend: Optional[str] = None
    max_steps: int = DEFAULT_MAX_STEPS
    max_facts: Optional[int] = None
    wall_clock: Optional[float] = None
    cycle_limit: int = 0
    max_k: int = 3

    # -- canonical content fingerprint ---------------------------------
    def fingerprint(self) -> str:
        """SHA-256 content fingerprint of every outcome-relevant field.

        Constraints are digested in *listed order* (strategies iterate
        them in order, so order changes the executed sequence), the
        instance through :func:`instance_fingerprint`, plus strategy,
        effective backend and the deterministic budgets.  The job name
        and the wall-clock budget (timing-only, see module docs) are
        excluded.

        The digest is memoized on the (frozen) job -- the scheduler,
        cache and pool all key on it, and the canonical sort +
        re-intern pass over a large instance is worth paying once.
        """
        memo = self.__dict__.get("_fingerprint")
        if memo is not None:
            return memo
        # Labels are rendered for humans but never affect execution
        # (constraint equality ignores them too), so the fingerprint
        # digests the label-free canonical bodies in listed order.
        payload = json.dumps({
            "v": 1,
            "sigma": [_render_constraint_body(c) for c in self.sigma],
            "instance": instance_fingerprint(self.instance),
            "strategy": self.strategy,
            "backend": self.backend or self.instance.backend,
            "max_steps": self.max_steps,
            "max_facts": self.max_facts,
            "cycle_limit": self.cycle_limit,
            "max_k": self.max_k,
        }, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        object.__setattr__(self, "_fingerprint", digest)
        return digest

    # -- wire form ------------------------------------------------------
    def to_dict(self) -> dict:
        """A lossless JSON-able encoding (the pool's wire format)."""
        return {
            "name": self.name,
            "constraints": render_constraints(self.sigma),
            "instance": encode_instance(self.instance),
            "strategy": self.strategy,
            "backend": self.backend,
            "max_steps": self.max_steps,
            "max_facts": self.max_facts,
            "wall_clock": self.wall_clock,
            "cycle_limit": self.cycle_limit,
            "max_k": self.max_k,
        }

    @classmethod
    def from_dict(cls, payload: dict, name: Optional[str] = None
                  ) -> "ChaseJob":
        """Build a job from a spec dict (job file, stdin line or wire).

        ``constraints`` is constraint text; ``instance`` is either
        instance text (bare identifiers are constants, ``?n7`` nulls)
        or the wire dict of :func:`repro.service.serialize.encode_instance`.
        """
        if not isinstance(payload, dict):
            raise WireError(f"job spec must be an object, got {payload!r}")
        try:
            constraints = payload["constraints"]
            raw_instance = payload["instance"]
        except KeyError as missing:
            raise WireError(f"job spec misses key {missing}") from None
        if isinstance(constraints, (list, tuple)):
            constraints = "\n".join(constraints)
        sigma = tuple(parse_constraints(constraints))
        backend = payload.get("backend")
        instance = decode_spec_instance(raw_instance, backend)
        check_spec_schema(sigma, instance)
        return cls(
            name=payload.get("name") or name or "job",
            sigma=sigma,
            instance=instance,
            strategy=spec_value(payload, "strategy", "auto", str),
            backend=backend,
            max_steps=spec_value(payload, "max_steps", DEFAULT_MAX_STEPS,
                                 spec_budget("max_steps")),
            max_facts=spec_value(payload, "max_facts", None,
                                 spec_budget("max_facts")),
            wall_clock=spec_value(payload, "wall_clock", None,
                                  spec_budget("wall_clock", convert=float)),
            cycle_limit=spec_value(payload, "cycle_limit", 0,
                                   spec_budget("cycle_limit")),
            max_k=spec_value(payload, "max_k", 3, spec_budget("max_k")),
        )

    @classmethod
    def from_path(cls, path) -> "ChaseJob":
        """Load a job from a JSON file (name defaults to the stem)."""
        payload, stem = load_spec_file(path)
        return cls.from_dict(payload, name=stem)

    def with_updates(self, **changes) -> "ChaseJob":
        """A copy with the given fields replaced (scheduler rewrites)."""
        return replace(self, **changes)


@dataclass
class JobResult:
    """The outcome of one job, in wire-safe form.

    ``status`` is a :class:`ChaseStatus` value, ``"killed"`` (the pool
    enforced a hard timeout or a cancellation) or ``"error"`` (the job
    raised).  ``facts`` is the canonical encoding of the final
    instance (None for killed/error jobs).

    Query jobs (:class:`repro.service.query.QueryJob`) share this
    result type: they carry their certain answers in ``answers``
    (sorted encoded term rows; None on chase jobs and on killed/error
    query jobs), the evaluated -- possibly semantically optimized --
    query text in ``query``, and ``truncated=True`` when the exact
    chase blew a budget and the answers come from the depth-bounded
    prefix.  ``facts`` stays None for query jobs: the answer relation,
    not the chased instance, is their deliverable.
    """

    job: str
    fingerprint: str
    status: str
    steps: int = 0
    new_nulls: int = 0
    facts: Optional[List[list]] = None
    failure_reason: Optional[str] = None
    elapsed: float = 0.0
    cached: bool = False
    worker: str = "inproc"
    answers: Optional[List[list]] = None
    query: Optional[str] = None
    truncated: bool = False
    #: Per-job observability snapshot recorded by a *worker process*
    #: (:func:`repro.obs.metrics.snapshot`); None for in-process
    #: executions (their counters land in the parent registry
    #: directly) and for cache replays.  The scheduler merges non-None
    #: snapshots into the parent registry -- fleet-wide totals.
    metrics: Optional[dict] = None

    @property
    def ok(self) -> bool:
        """Did the job complete a chase run (any chase status)?"""
        return self.status not in (STATUS_KILLED, STATUS_ERROR)

    @property
    def terminated(self) -> bool:
        return self.status == ChaseStatus.TERMINATED.value

    @property
    def cacheable(self) -> bool:
        """May this result be served for an equal fingerprint later?
        Only deterministic chase outcomes qualify -- wall-clock aborts,
        kills and errors depend on timing, not content."""
        return self.status in _DETERMINISTIC_STATUSES

    def instance(self) -> Optional[Instance]:
        """Decode the final instance (None for killed/error jobs)."""
        if self.facts is None:
            return None
        return Instance(decode_atom(fact) for fact in self.facts)

    def to_dict(self) -> dict:
        return {
            "job": self.job, "fingerprint": self.fingerprint,
            "status": self.status, "steps": self.steps,
            "new_nulls": self.new_nulls, "facts": self.facts,
            "failure_reason": self.failure_reason,
            "elapsed": self.elapsed, "cached": self.cached,
            "worker": self.worker, "answers": self.answers,
            "query": self.query, "truncated": self.truncated,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobResult":
        return cls(**payload)

    def describe(self) -> str:
        origin = "cache" if self.cached else self.worker
        reason = f" ({self.failure_reason})" if self.failure_reason else ""
        if self.answers is not None:
            prefix = "truncated-prefix " if self.truncated else ""
            return (f"{self.job}: {self.status} after {self.steps} steps, "
                    f"{len(self.answers)} {prefix}answers, "
                    f"{self.elapsed:.3f}s [{origin}]{reason}")
        return (f"{self.job}: {self.status} after {self.steps} steps, "
                f"{len(self.facts or [])} facts, {self.elapsed:.3f}s "
                f"[{origin}]{reason}")


EventCallback = Callable[[ProgressEvent], None]


def run_declared_chase(job, on_event: Optional[EventCallback] = None,
                       progress_every: int = 0):
    """Run the chase a job spec declares; returns
    ``(result, instance, sigma)``.

    The one place the spec knobs become a chase run -- backend
    rebuild, strategy resolution, progress-observer wiring, private
    :class:`NullFactory`, Section 4.2 monitor arming, budget
    passthrough -- shared by :func:`execute_job` and
    :func:`repro.service.query.execute_query_job` so both job kinds
    get identical runner semantics for identical knobs.
    """
    sigma = list(job.sigma)
    instance = job.instance
    if job.backend and instance.backend != job.backend:
        instance = Instance(instance, backend=job.backend)
    strategy = resolve_strategy(job.strategy, sigma, max_k=job.max_k)
    observers = []
    if on_event is not None and progress_every > 0:
        def progress(step, working):
            if (step.index + 1) % progress_every == 0:
                on_event(ProgressEvent(
                    "progress", job.name,
                    {"steps": step.index + 1, "facts": len(working)},
                    fingerprint=job.fingerprint()))
        observers.append(progress)
    nulls = NullFactory()
    if job.cycle_limit > 0:
        result = monitored_chase(
            instance, sigma, job.cycle_limit, strategy=strategy,
            max_steps=job.max_steps, observers=observers,
            max_facts=job.max_facts, wall_clock=job.wall_clock,
            nulls=nulls).result
    else:
        result = chase(instance, sigma, strategy=strategy,
                       max_steps=job.max_steps, observers=observers,
                       max_facts=job.max_facts,
                       wall_clock=job.wall_clock, nulls=nulls)
    return result, instance, sigma


def execute_job(job: ChaseJob,
                on_event: Optional[EventCallback] = None,
                progress_every: int = 0,
                worker: str = "inproc") -> JobResult:
    """Run ``job`` in this process and return its wire-safe result.

    Deterministic by construction: a private null factory (labels
    restart at 1 per job) plus seeded strategies mean the encoded
    result depends only on the job content *within one process tree*
    -- iteration orders (and hence which trigger gets which null
    label) depend on the interpreter's string-hash seed, which is why
    the worker pool forks its workers (inheriting the seed) instead of
    spawning them.  Across different seeds, results for equal
    fingerprints are still equal up to null renaming.  This is the
    invariant behind both the fingerprint cache (in-memory, so never
    shared across seeds) and the parallel-vs-sequential
    cross-validation tests.  Exceptions never propagate; they surface
    as ``status="error"`` results so one bad job cannot take down a
    batch (or a worker pool's collection loop).
    """
    started = time.perf_counter()
    fingerprint = job.fingerprint()
    try:
        result, _, _ = run_declared_chase(job, on_event=on_event,
                                          progress_every=progress_every)
        return JobResult(
            job=job.name, fingerprint=fingerprint,
            status=result.status.value, steps=result.length,
            new_nulls=result.new_null_count(),
            facts=encode_facts(result.instance),
            failure_reason=result.failure_reason,
            elapsed=time.perf_counter() - started, worker=worker)
    except ReproError as exc:
        reason = str(exc)
    except Exception:                                 # noqa: BLE001
        reason = traceback.format_exc(limit=8)
    return JobResult(job=job.name, fingerprint=fingerprint,
                     status=STATUS_ERROR, failure_reason=reason,
                     elapsed=time.perf_counter() - started, worker=worker)


# ----------------------------------------------------------------------
# Job-kind dispatch
# ----------------------------------------------------------------------
def job_from_dict(payload: dict, name: Optional[str] = None):
    """Build the right job kind from a spec dict.

    Specs carry an optional ``kind`` discriminator (``chase`` /
    ``query``); for convenience a spec with a ``query`` field and no
    ``kind`` is treated as a query job, so hand-written query files
    need no boilerplate.  Everything downstream of this point -- the
    scheduler's planning, the fingerprint cache, the worker pool's
    wire protocol -- is shared between the kinds.
    """
    if not isinstance(payload, dict):
        raise WireError(f"job spec must be an object, got {payload!r}")
    kind = payload.get("kind")
    if kind == "query" or (kind is None and "query" in payload):
        from repro.service.query import QueryJob
        return QueryJob.from_dict(payload, name=name)
    if kind not in (None, "chase"):
        raise WireError(f"unknown job kind {kind!r} "
                        "(expected 'chase' or 'query')")
    return ChaseJob.from_dict(payload, name=name)


def job_from_path(path):
    """Load a chase or query job from a JSON spec file (the name
    defaults to the file stem)."""
    payload, stem = load_spec_file(path)
    return job_from_dict(payload, name=stem)


def execute_any(job, on_event: Optional[EventCallback] = None,
                progress_every: int = 0, worker: str = "inproc"
                ) -> JobResult:
    """Execute a job of any kind in this process.

    Query jobs bring their own executor
    (:meth:`~repro.service.query.QueryJob.run_in_process`); plain
    chase jobs run through :func:`execute_job`.  The pool's worker
    loop and its in-process degradation path both funnel through
    here, so every job kind gets the same isolation guarantees.
    """
    runner = getattr(job, "run_in_process", None)
    if runner is None:
        def runner(**kwargs):
            return execute_job(job, **kwargs)
    tracer = _trace.active()
    if tracer is None:
        return runner(on_event=on_event, progress_every=progress_every,
                      worker=worker)
    # The job fingerprint is the trace id: every span of this
    # execution -- chase, steps, searches -- groups under it, so a
    # multi-worker batch's interleaved records attribute per job.
    with tracer.trace_context(job.fingerprint()):
        span = tracer.start("job", job=job.name,
                            kind=getattr(job, "kind", "chase"))
        result = runner(on_event=on_event, progress_every=progress_every,
                        worker=worker)
        tracer.finish(span, status=result.status, steps=result.steps)
    return result
