"""repro -- a reproduction of *On Chase Termination Beyond
Stratification* (Meier, Schmidt, Lausen; VLDB 2009 / arXiv:0906.4228).

The library provides:

* a relational substrate (:mod:`repro.lang`) with TGDs/EGDs, instances
  and a text format;
* a pluggable storage layer (:mod:`repro.storage`): term interning and
  two interchangeable fact-store backends (``set`` reference layout,
  ``column`` columnar/interned-id layout), selected via
  ``Instance(backend=...)`` or ``REPRO_BACKEND``;
* a chase engine (:mod:`repro.chase`) with standard and oblivious
  runners and pluggable application strategies;
* every data-independent termination condition of the paper's Figure 1
  (:mod:`repro.termination`): weak acyclicity, stratification, the
  corrected c-stratification, safety, inductive restriction and the
  T-hierarchy with the ``check`` algorithm;
* data-dependent termination (:mod:`repro.datadep`): irrelevance
  analysis and the monitor-graph/k-cyclicity guard;
* conjunctive queries and chase-based semantic query optimization
  (:mod:`repro.cq`);
* the Section 5 knowledge-base application (:mod:`repro.kb`):
  weakly/restrictedly guarded TGDs and certain-answer computation;
* a batch chase service (:mod:`repro.service`): declarative jobs with
  content fingerprints, an LRU result/report cache, a
  persistent-worker pool and termination-aware scheduling
  (``repro batch`` / ``repro serve``).

Quickstart::

    from repro import parse_constraints, parse_instance, chase, analyze

    sigma = parse_constraints("S(x) -> E(x,y), S(y)")
    print(analyze(sigma).render())            # no condition applies ...
    result = chase(parse_instance("S(a)"), sigma, max_steps=100)
    print(result.status)                      # ... and indeed it diverges
"""

from repro.chase import (chase, ChaseResult, ChaseStatus, core,
                         oblivious_chase, OrderedStrategy, RandomStrategy,
                         RoundRobinStrategy, StratifiedStrategy)
from repro.cq import (compiled_answers, ConjunctiveQuery, contained_in,
                      equivalent, minimize_query, optimize, universal_plan)
from repro.datadep import (monitored_chase, MonitorGraph, pay_as_you_go,
                           relevant_constraints, terminates_statically)
from repro.kb import (certain_answers, is_restrictedly_guarded,
                      is_weakly_guarded, optimize_query)
from repro.lang import (Atom, Constant, EGD, Instance, Null, parse_constraint,
                        parse_constraints, parse_instance, parse_query,
                        Position, Schema, TGD, Variable)
from repro.service import (BatchScheduler, ChaseJob, JobResult, QueryJob,
                           ServiceCache, WorkerPool)
from repro.storage import (ColumnStore, FactStore, SetStore, TermTable,
                           backend_names)
from repro.termination import (analyze, chase_strata, check,
                               is_c_stratified, is_inductively_restricted,
                               is_safe, is_stratified, is_weakly_acyclic,
                               stratified_strategy, t_level,
                               TerminationReport)

__version__ = "1.0.0"

__all__ = [
    "chase", "ChaseResult", "ChaseStatus", "core", "oblivious_chase",
    "OrderedStrategy", "RandomStrategy", "RoundRobinStrategy",
    "StratifiedStrategy", "compiled_answers", "ConjunctiveQuery",
    "contained_in", "equivalent", "minimize_query",
    "optimize", "universal_plan", "monitored_chase", "MonitorGraph",
    "pay_as_you_go", "relevant_constraints", "terminates_statically",
    "certain_answers", "is_restrictedly_guarded", "is_weakly_guarded",
    "optimize_query",
    "Atom", "Constant", "EGD", "Instance", "Null", "parse_constraint",
    "parse_constraints", "parse_instance", "parse_query", "Position",
    "Schema", "TGD", "Variable", "analyze", "chase_strata", "check",
    "is_c_stratified", "is_inductively_restricted", "is_safe",
    "is_stratified", "is_weakly_acyclic", "stratified_strategy", "t_level",
    "TerminationReport", "ColumnStore", "FactStore", "SetStore",
    "TermTable", "backend_names", "BatchScheduler", "ChaseJob",
    "JobResult", "QueryJob", "ServiceCache", "WorkerPool", "__version__",
]
