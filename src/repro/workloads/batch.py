"""Batch job-spec generators for the service layer's bench and tests.

Produces plain JSON-able job spec dicts (the input format of
``repro batch`` and :meth:`repro.service.jobs.ChaseJob.from_dict`)
drawn from the established workload families -- deliberately *specs*,
not :class:`ChaseJob` objects, so this module stays below the service
layer (workloads never import upward).

A mixed batch interleaves four families:

* ``chain``  -- full-TGD copy chains over path instances (weakly
  acyclic, terminating, cheap);
* ``safe``   -- Example 8/9's safe set over the ternary R/S schema
  (Theorem 5, terminating, null-creating);
* ``t3``     -- Figure 2's ``T[3]`` set over marked paths (Theorem 7);
* ``divergent`` -- the Introduction's ``S(x) -> E(x,y), S(y)``
  (terminates for no strategy; only budgets bound it).

Determinism guarantees
----------------------
Every spec is a pure function of ``(seed, index)``:

* per-spec randomness comes from a private ``random.Random`` seeded
  with a version-tagged ``"{seed}:{index}"`` string -- string seeds
  hash through SHA-512 inside :class:`random.Random`, so the stream is
  identical across processes, platforms and ``PYTHONHASHSEED`` values,
  and inserting or dropping a job never shifts its neighbours' specs;
* instances and constraints render through the canonical sorted
  renderers of :mod:`repro.lang.parser`, so equal content produces
  byte-equal spec text and hence equal
  :meth:`~repro.service.jobs.ChaseJob.fingerprint` values across
  processes (the regression test generates batches in two separate
  interpreters with different hash seeds and compares fingerprints);
* *executing* a spec is deterministic too: every job runs with a
  private :class:`~repro.lang.terms.NullFactory` (labels restart at
  1), and the worker pool **forks** its workers, so null labels agree
  between a 1-worker and an N-worker run of the same batch within one
  process tree.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.lang.instance import Instance
from repro.lang.parser import render_constraints
from repro.lang.parser import render_instance as _render_parser_instance
from repro.workloads.families import (chain_instance, example9_instance,
                                      full_tgd_chain,
                                      special_nodes_instance)
from repro.workloads.paper import example8_beta, figure2

#: The cycling order of families in a mixed batch.
FAMILIES = ("chain", "safe", "t3", "divergent")


def render_instance(instance: Instance) -> str:
    """The instance in the parser's text format (one fact per line).

    Delegates to :func:`repro.lang.parser.render_instance` -- the
    canonical sorted renderer whose output re-parses to an equal
    instance (and which also handles quoted constants and labeled
    nulls, beyond what the workload families produce)."""
    return _render_parser_instance(instance)


def spec_rng(seed: int, index: int) -> random.Random:
    """The private RNG of spec ``index`` in the ``seed`` batch.

    String-seeded for cross-process stability; per-index so each spec
    is a pure function of ``(seed, index)`` regardless of how many
    other specs the batch contains (see the module docs)."""
    return random.Random(f"repro-workloads:v1:{seed}:{index}")


def job_spec(family: str, size: int, name: Optional[str] = None,
             max_steps: int = 10_000, **overrides) -> dict:
    """One job spec of the given family at the given instance size."""
    if family == "chain":
        sigma = full_tgd_chain(3)
        instance = chain_instance(size, relation="R0")
    elif family == "safe":
        sigma = example8_beta()
        instance = example9_instance(size)
    elif family == "t3":
        # Every node marked: each marked node with a predecessor fires
        # Figure 2 once (spacing=2 would leave the set satisfied).
        sigma = figure2()
        instance = special_nodes_instance(size, spacing=1)
    elif family == "divergent":
        from repro.workloads.paper import intro_alpha2
        sigma = intro_alpha2()
        instance = special_nodes_instance(max(2, size // 2))
        # Divergent specs ship a modest default step budget; the
        # scheduler would cap an unbounded one anyway.
        max_steps = min(max_steps, 2000)
    else:
        raise ValueError(f"unknown family {family!r} "
                         f"(expected one of {FAMILIES})")
    spec = {
        "name": name or f"{family}_{size}",
        "constraints": render_constraints(sigma),
        "instance": render_instance(instance),
        "strategy": "auto",
        "max_steps": max_steps,
    }
    spec.update(overrides)
    return spec


def mixed_batch_specs(n_jobs: int, seed: int = 0,
                      min_size: int = 3, max_size: int = 8) -> List[dict]:
    """``n_jobs`` specs cycling through the families with seeded sizes.

    Sizes repeat across the batch (drawn per index from a small seeded
    range, see :func:`spec_rng`), so a generated batch contains genuine
    duplicates -- exercising the scheduler's intra-batch dedup exactly
    like real traffic with repeated requests would.
    """
    specs = []
    for index in range(n_jobs):
        family = FAMILIES[index % len(FAMILIES)]
        size = spec_rng(seed, index).randint(min_size, max_size)
        specs.append(job_spec(family, size,
                              name=f"{family}_{size}_{index}"))
    return specs


# ----------------------------------------------------------------------
# Certain-answer query specs (the input format of ``repro query`` and
# :meth:`repro.service.query.QueryJob.from_dict`)
# ----------------------------------------------------------------------
#: The cycling order of query families in a mixed query batch:
#: ``chain_join``  -- join of two copied relations over a chain
#:                    (terminating, exact path);
#: ``safe_join``   -- Example 8/9's safe set with a join through the
#:                    created nulls (terminating, null filtering);
#: ``guarded``     -- the Introduction's divergent guarded set
#:                    (depth-bounded fallback, truncated answers).
QUERY_FAMILIES = ("chain_join", "safe_join", "guarded")


def query_spec(family: str, size: int, name: Optional[str] = None,
               max_steps: int = 10_000, **overrides) -> dict:
    """One certain-answer query spec of the given family and size."""
    if family == "chain_join":
        sigma = full_tgd_chain(3)
        instance = chain_instance(size, relation="R0")
        query = "q(x, z) <- R3(x, y), R3(y, z)"
    elif family == "safe_join":
        sigma = example8_beta()
        instance = example9_instance(size)
        query = "q(x1, x3) <- R(x1, x2, x3), S(x3)"
    elif family == "guarded":
        from repro.workloads.paper import intro_alpha2
        sigma = intro_alpha2()
        instance = special_nodes_instance(max(2, size // 2))
        query = "q(u) <- S(u), E(u, v)"
        max_steps = min(max_steps, 1000)
    else:
        raise ValueError(f"unknown query family {family!r} "
                         f"(expected one of {QUERY_FAMILIES})")
    spec = {
        "kind": "query",
        "name": name or f"{family}_{size}",
        "constraints": render_constraints(sigma),
        "instance": render_instance(instance),
        "query": query,
        "strategy": "auto",
        "max_steps": max_steps,
    }
    spec.update(overrides)
    return spec


def query_batch_specs(n_jobs: int, seed: int = 0,
                      min_size: int = 3, max_size: int = 8) -> List[dict]:
    """``n_jobs`` query specs cycling the families with per-index
    seeded sizes (duplicates included, like
    :func:`mixed_batch_specs`)."""
    specs = []
    for index in range(n_jobs):
        family = QUERY_FAMILIES[index % len(QUERY_FAMILIES)]
        size = spec_rng(seed, index).randint(min_size, max_size)
        specs.append(query_spec(family, size,
                                name=f"{family}_{size}_{index}"))
    return specs
