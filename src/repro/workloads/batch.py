"""Batch job-spec generators for the service layer's bench and tests.

Produces plain JSON-able job spec dicts (the input format of
``repro batch`` and :meth:`repro.service.jobs.ChaseJob.from_dict`)
drawn from the established workload families -- deliberately *specs*,
not :class:`ChaseJob` objects, so this module stays below the service
layer (workloads never import upward).

A mixed batch interleaves four families:

* ``chain``  -- full-TGD copy chains over path instances (weakly
  acyclic, terminating, cheap);
* ``safe``   -- Example 8/9's safe set over the ternary R/S schema
  (Theorem 5, terminating, null-creating);
* ``t3``     -- Figure 2's ``T[3]`` set over marked paths (Theorem 7);
* ``divergent`` -- the Introduction's ``S(x) -> E(x,y), S(y)``
  (terminates for no strategy; only budgets bound it).

Every spec is deterministic in (``seed``, index), so two generations
of the same batch fingerprint identically -- warm-cache behaviour is
reproducible across processes and bench runs.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.lang.instance import Instance
from repro.lang.parser import render_constraints
from repro.workloads.families import (chain_instance, example9_instance,
                                      full_tgd_chain,
                                      special_nodes_instance)
from repro.workloads.paper import example8_beta, figure2

#: The cycling order of families in a mixed batch.
FAMILIES = ("chain", "safe", "t3", "divergent")


def render_instance(instance: Instance) -> str:
    """The instance in the parser's text format (one fact per line).

    Only valid for instances over identifier/number constants -- which
    is all the workload families produce."""
    return "\n".join(sorted(f"{fact}." for fact in instance))


def job_spec(family: str, size: int, name: Optional[str] = None,
             max_steps: int = 10_000, **overrides) -> dict:
    """One job spec of the given family at the given instance size."""
    if family == "chain":
        sigma = full_tgd_chain(3)
        instance = chain_instance(size, relation="R0")
    elif family == "safe":
        sigma = example8_beta()
        instance = example9_instance(size)
    elif family == "t3":
        # Every node marked: each marked node with a predecessor fires
        # Figure 2 once (spacing=2 would leave the set satisfied).
        sigma = figure2()
        instance = special_nodes_instance(size, spacing=1)
    elif family == "divergent":
        from repro.workloads.paper import intro_alpha2
        sigma = intro_alpha2()
        instance = special_nodes_instance(max(2, size // 2))
        # Divergent specs ship a modest default step budget; the
        # scheduler would cap an unbounded one anyway.
        max_steps = min(max_steps, 2000)
    else:
        raise ValueError(f"unknown family {family!r} "
                         f"(expected one of {FAMILIES})")
    spec = {
        "name": name or f"{family}_{size}",
        "constraints": render_constraints(sigma),
        "instance": render_instance(instance),
        "strategy": "auto",
        "max_steps": max_steps,
    }
    spec.update(overrides)
    return spec


def mixed_batch_specs(n_jobs: int, seed: int = 0,
                      min_size: int = 3, max_size: int = 8) -> List[dict]:
    """``n_jobs`` specs cycling through the families with seeded sizes.

    Sizes repeat across the batch (drawn from a small seeded range),
    so a generated batch contains genuine duplicates -- exercising the
    scheduler's intra-batch dedup exactly like real traffic with
    repeated requests would.
    """
    rng = random.Random(seed)
    specs = []
    for index in range(n_jobs):
        family = FAMILIES[index % len(FAMILIES)]
        size = rng.randint(min_size, max_size)
        specs.append(job_spec(family, size,
                              name=f"{family}_{size}_{index}"))
    return specs


# ----------------------------------------------------------------------
# Certain-answer query specs (the input format of ``repro query`` and
# :meth:`repro.service.query.QueryJob.from_dict`)
# ----------------------------------------------------------------------
#: The cycling order of query families in a mixed query batch:
#: ``chain_join``  -- join of two copied relations over a chain
#:                    (terminating, exact path);
#: ``safe_join``   -- Example 8/9's safe set with a join through the
#:                    created nulls (terminating, null filtering);
#: ``guarded``     -- the Introduction's divergent guarded set
#:                    (depth-bounded fallback, truncated answers).
QUERY_FAMILIES = ("chain_join", "safe_join", "guarded")


def query_spec(family: str, size: int, name: Optional[str] = None,
               max_steps: int = 10_000, **overrides) -> dict:
    """One certain-answer query spec of the given family and size."""
    if family == "chain_join":
        sigma = full_tgd_chain(3)
        instance = chain_instance(size, relation="R0")
        query = "q(x, z) <- R3(x, y), R3(y, z)"
    elif family == "safe_join":
        sigma = example8_beta()
        instance = example9_instance(size)
        query = "q(x1, x3) <- R(x1, x2, x3), S(x3)"
    elif family == "guarded":
        from repro.workloads.paper import intro_alpha2
        sigma = intro_alpha2()
        instance = special_nodes_instance(max(2, size // 2))
        query = "q(u) <- S(u), E(u, v)"
        max_steps = min(max_steps, 1000)
    else:
        raise ValueError(f"unknown query family {family!r} "
                         f"(expected one of {QUERY_FAMILIES})")
    spec = {
        "kind": "query",
        "name": name or f"{family}_{size}",
        "constraints": render_constraints(sigma),
        "instance": render_instance(instance),
        "query": query,
        "strategy": "auto",
        "max_steps": max_steps,
    }
    spec.update(overrides)
    return spec


def query_batch_specs(n_jobs: int, seed: int = 0,
                      min_size: int = 3, max_size: int = 8) -> List[dict]:
    """``n_jobs`` query specs cycling the families with seeded sizes
    (duplicates included, like :func:`mixed_batch_specs`)."""
    rng = random.Random(seed)
    specs = []
    for index in range(n_jobs):
        family = QUERY_FAMILIES[index % len(QUERY_FAMILIES)]
        size = rng.randint(min_size, max_size)
        specs.append(query_spec(family, size,
                                name=f"{family}_{size}_{index}"))
    return specs
