"""Seeded random generators: TGD corpora and graph instances.

Used by the recognition-cost benchmarks (how do the Figure 1 checks
scale with the number of constraints?) and by the property-based test
suites (chase soundness on random weakly-acyclic/safe sets).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.lang.atoms import Atom
from repro.lang.constraints import Constraint, EGD, TGD
from repro.lang.instance import Instance
from repro.lang.schema import Schema
from repro.lang.terms import Constant, Variable


def random_schema(rng: random.Random, n_relations: int = 4,
                  max_arity: int = 3) -> Schema:
    return Schema({f"R{i}": rng.randint(1, max_arity)
                   for i in range(n_relations)})


def random_tgd(rng: random.Random, schema: Schema,
               max_body_atoms: int = 3, max_head_atoms: int = 2,
               n_variables: int = 4,
               existential_probability: float = 0.4,
               label: Optional[str] = None) -> TGD:
    """One random TGD; head-only variables become existential."""
    relations = list(schema)
    variables = [Variable(f"x{i}") for i in range(n_variables)]
    evars = [Variable(f"y{i}") for i in range(2)]

    def random_atom(pool: Sequence[Variable]) -> Atom:
        relation = rng.choice(relations)
        return Atom(relation, tuple(rng.choice(pool)
                                    for _ in range(schema.arity(relation))))

    body = [random_atom(variables)
            for _ in range(rng.randint(1, max_body_atoms))]
    body_vars = sorted({v for atom in body for v in atom.variables()},
                       key=lambda v: v.name)
    head_pool: List[Variable] = list(body_vars)
    if rng.random() < existential_probability:
        head_pool.extend(evars[:rng.randint(1, len(evars))])
    head = [random_atom(head_pool)
            for _ in range(rng.randint(1, max_head_atoms))]
    # Guarantee well-formedness: every universal head variable must
    # occur in the body -- true by construction (head pool draws from
    # body variables and fresh existentials only).
    return TGD(body, head, label=label)


def random_constraint_set(seed: int, size: int, n_relations: int = 4,
                          max_arity: int = 3,
                          existential_probability: float = 0.4,
                          egd_probability: float = 0.0
                          ) -> List[Constraint]:
    """A seeded random constraint set of ``size`` TGDs (and optional
    EGDs equating two body variables)."""
    rng = random.Random(seed)
    schema = random_schema(rng, n_relations, max_arity)
    out: List[Constraint] = []
    for index in range(size):
        if rng.random() < egd_probability:
            relation = rng.choice(list(schema))
            arity = schema.arity(relation)
            variables = [Variable(f"x{i}") for i in range(arity)]
            other = [Variable(f"x{i}") for i in range(arity, 2 * arity)]
            body = [Atom(relation, tuple(variables)),
                    Atom(relation, tuple([variables[0]] + other[1:]))]
            if arity >= 2:
                out.append(EGD(body, variables[1], other[1],
                               label=f"egd_{index}"))
                continue
        out.append(random_tgd(rng, schema,
                              existential_probability=existential_probability,
                              label=f"tgd_{index}"))
    return out


def random_full_tgds(seed: int, size: int, n_relations: int = 4,
                     max_arity: int = 3) -> List[Constraint]:
    """Full TGDs only (no existentials): always weakly acyclic w.r.t.
    special edges, so the chase terminates -- a soundness workload."""
    return random_constraint_set(seed, size, n_relations, max_arity,
                                 existential_probability=0.0)


def random_graph_instance(seed: int, n_nodes: int,
                          edge_probability: float = 0.2,
                          special_probability: float = 0.3) -> Instance:
    """A random digraph over ``E``/``S`` (the running graph schema)."""
    rng = random.Random(seed)
    facts: List[Atom] = []
    nodes = [Constant(f"v{i}") for i in range(n_nodes)]
    for left in nodes:
        for right in nodes:
            if left != right and rng.random() < edge_probability:
                facts.append(Atom("E", (left, right)))
    for node in nodes:
        if rng.random() < special_probability:
            facts.append(Atom("S", (node,)))
    if not facts:
        facts.append(Atom("E", (nodes[0], nodes[-1])))
    return Instance(facts)


def random_instance(seed: int, schema: Schema, n_facts: int,
                    domain_size: int = 8) -> Instance:
    """Random facts over an explicit schema."""
    rng = random.Random(seed)
    domain = [Constant(f"c{i}") for i in range(domain_size)]
    relations = list(schema)
    facts = []
    for _ in range(n_facts):
        relation = rng.choice(relations)
        facts.append(Atom(relation, tuple(rng.choice(domain)
                                          for _ in range(schema.arity(relation)))))
    return Instance(facts)
