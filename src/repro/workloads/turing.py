"""The Turing-machine-to-TGD gadget from the proof of Theorem 8.

Theorem 8 shows (I, Sigma)-irrelevance undecidable by compiling a
Turing machine ``M`` and a distinguished transition ``t`` into a
constraint set ``Sigma_M`` such that the TGD ``alpha_t`` can
eventually fire iff ``M`` (run on the empty input) uses ``t``.  The
chase builds the run as a grid: each row is a configuration, ``T``
atoms are tape cells, ``H`` atoms place the head, ``L``/``R`` atoms
are the vertical edges copying the untouched tape, and
``A_delta``/``B_delta`` record which transition fired.

This module reproduces the compilation for concrete machines so the
reduction can be exercised experimentally (the undecidability itself,
of course, is a theorem, not a test).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.lang.atoms import Atom
from repro.lang.constraints import Constraint, TGD
from repro.lang.terms import Constant, Variable

#: tape-boundary and blank markers
BEGIN = Constant("B")
BLANK = Constant("_")
END = Constant("END")

Move = str  # "L", "R" or "N"


@dataclass(frozen=True)
class Transition:
    """``delta(state, read) = (next_state, write, move)``."""

    state: str
    read: str
    next_state: str
    write: str
    move: Move

    @property
    def name(self) -> str:
        return f"{self.state}_{self.read}_{self.next_state}_{self.write}_{self.move}"


@dataclass
class TuringMachine:
    """A deterministic single-tape machine run on the empty input."""

    states: List[str]
    alphabet: List[str]           # without the blank
    initial_state: str
    transitions: List[Transition]

    def symbols(self) -> List[str]:
        return list(dict.fromkeys(self.alphabet + ["_"]))

    def run(self, max_steps: int = 200) -> List[str]:
        """Reference interpreter: names of the transitions used."""
        tape: Dict[int, str] = {}
        head = 0
        state = self.initial_state
        used: List[str] = []
        lookup = {(t.state, t.read): t for t in self.transitions}
        for _ in range(max_steps):
            symbol = tape.get(head, "_")
            transition = lookup.get((state, symbol))
            if transition is None:
                break
            used.append(transition.name)
            tape[head] = transition.write
            if transition.move == "R":
                head += 1
            elif transition.move == "L":
                head = max(0, head - 1)
            state = transition.next_state
        return used


def _v(name: str) -> Variable:
    return Variable(name)


def compile_machine(machine: TuringMachine) -> Dict[str, List[Constraint]]:
    """Compile ``machine`` into ``Sigma_M``.

    Returns a mapping with the full set under ``"sigma"`` and the
    per-transition probes ``alpha_t`` under each transition name (each
    is the TGD ``A_t(x) -> B_t(x)`` whose firing witnesses use of t).
    """
    sigma: List[Constraint] = []
    symbols = [Constant(s) for s in machine.symbols()]

    # 1. Initial configuration (empty-body TGD).
    w, x, y, z = _v("w"), _v("x"), _v("y"), _v("z")
    sigma.append(TGD((), [Atom("T", (w, BEGIN, x)),
                          Atom("T", (x, BLANK, y)),
                          Atom("H", (x, Constant(machine.initial_state), y)),
                          Atom("T", (y, END, z))],
                     label="init"))

    probes: Dict[str, List[Constraint]] = {}
    for t in machine.transitions:
        a = Constant(t.read)
        a_prime = Constant(t.write)
        s = Constant(t.state)
        s_prime = Constant(t.next_state)
        xp, yp, zp, wp = _v("xp"), _v("yp"), _v("zp"), _v("wp")
        if t.move == "R":
            # 2. Move right within the tape: one TGD per next symbol b.
            for b in symbols:
                sigma.append(TGD(
                    [Atom("T", (x, a, y)), Atom("H", (x, s, y)),
                     Atom("T", (y, b, z))],
                    [Atom("L", (x, xp)), Atom("R", (y, yp)),
                     Atom("R", (z, zp)), Atom("T", (xp, a_prime, yp)),
                     Atom("T", (yp, b, zp)), Atom("H", (yp, s_prime, zp)),
                     Atom("A_" + t.name, (wp,))],
                    label=f"{t.name}_sees_{b.value}"))
            # 3. Move right past the end of the tape.  (The paper's
            # bullet 3 prints the new end marker as T(y', E, w'),
            # which stalls the grid -- the marker must follow the new
            # blank cell: T(z', E, w').)
            sigma.append(TGD(
                [Atom("T", (x, a, y)), Atom("H", (x, s, y)),
                 Atom("T", (y, END, z))],
                [Atom("L", (x, xp)), Atom("R", (y, yp)),
                 Atom("R", (z, zp)), Atom("T", (xp, a_prime, yp)),
                 Atom("T", (yp, BLANK, zp)), Atom("H", (yp, s_prime, zp)),
                 Atom("T", (zp, END, _v("we"))),
                 Atom("A_" + t.name, (wp,))],
                label=f"{t.name}_extend"))
        elif t.move == "L":
            # 4. Move left: one TGD per symbol b to the left.
            for b in symbols + [BEGIN]:
                sigma.append(TGD(
                    [Atom("T", (w, b, x)), Atom("T", (x, a, y)),
                     Atom("H", (x, s, y))],
                    [Atom("L", (w, wp)), Atom("L", (x, xp)),
                     Atom("R", (y, yp)), Atom("T", (wp, b, xp)),
                     Atom("T", (xp, a_prime, yp)),
                     Atom("H", (wp, Constant(t.next_state), xp)),
                     Atom("A_" + t.name, (_v("wa"),))],
                    label=f"{t.name}_sees_{b.value}"))
        else:
            # 5. Stay put.
            sigma.append(TGD(
                [Atom("T", (x, a, y)), Atom("H", (x, s, y))],
                [Atom("L", (x, xp)), Atom("R", (y, yp)),
                 Atom("T", (xp, a_prime, yp)),
                 Atom("H", (xp, s_prime, yp)),
                 Atom("A_" + t.name, (wp,))],
                label=f"{t.name}_stay"))
        # 6. The probe alpha_t: A_t(x) -> B_t(x).
        probe = TGD([Atom("A_" + t.name, (x,))],
                    [Atom("B_" + t.name, (x,))],
                    label=f"alpha_{t.name}")
        sigma.append(probe)
        probes[t.name] = [probe]

    # 7 and 8. Left/right copy rules, one per tape symbol (+ markers).
    for symbol in symbols + [BEGIN, END]:
        sigma.append(TGD(
            [Atom("T", (x, symbol, y)), Atom("L", (y, yp))],
            [Atom("L", (x, xp)), Atom("T", (xp, symbol, yp))],
            label=f"copy_left_{symbol.value}"))
        sigma.append(TGD(
            [Atom("T", (x, symbol, y)), Atom("R", (x, xp))],
            [Atom("T", (xp, symbol, yp)), Atom("R", (y, yp))],
            label=f"copy_right_{symbol.value}"))

    return {"sigma": sigma, **probes}


def sample_halting_machine() -> TuringMachine:
    """Writes two 1s moving right, then halts (uses both transitions)."""
    return TuringMachine(
        states=["s0", "s1", "halt"],
        alphabet=["1"],
        initial_state="s0",
        transitions=[
            Transition("s0", "_", "s1", "1", "R"),
            Transition("s1", "_", "halt", "1", "R"),
        ])


def sample_unreachable_transition_machine() -> TuringMachine:
    """Halts immediately in s0; the s9 transition can never be used."""
    return TuringMachine(
        states=["s0", "s9"],
        alphabet=["1"],
        initial_state="s0",
        transitions=[
            Transition("s9", "1", "s9", "1", "N"),  # unreachable
        ])
