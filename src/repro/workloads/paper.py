"""Every named constraint set, instance and query from the paper.

Each function returns fresh objects (constraints are immutable and
hash by value, so sharing would also be safe; fresh copies keep labels
readable in tests and benches).
"""

from __future__ import annotations

from typing import List

from repro.cq.query import ConjunctiveQuery
from repro.lang.constraints import Constraint
from repro.lang.instance import Instance
from repro.lang.parser import (parse_constraints, parse_instance, parse_query)


# ----------------------------------------------------------------------
# Introduction
# ----------------------------------------------------------------------
def intro_alpha1() -> List[Constraint]:
    """Each special node has an outgoing edge -- terminating."""
    return parse_constraints("alpha1: S(x) -> E(x,y)")


def intro_alpha2() -> List[Constraint]:
    """Each special node links to another special node -- the classic
    divergent example."""
    return parse_constraints("alpha2: S(x) -> E(x,y), S(y)")


def intro_alpha3() -> List[Constraint]:
    """Harmless-null illustration (idea 2 of the Introduction)."""
    return parse_constraints("alpha3: S(x), E(x,y) -> E(z,x)")


def intro_beta_set() -> List[Constraint]:
    """{beta1, beta2}: 2- and 3-cycles for special nodes (idea 3)."""
    return parse_constraints("""
        beta1: S(x), E(x,y) -> E(y,x);
        beta2: S(x), E(x,y) -> E(y,z), E(z,x)
    """)


def intro_beta_set_extended() -> List[Constraint]:
    """{beta1, beta2, beta3} with the empty-body beta3 (idea 4)."""
    return intro_beta_set() + parse_constraints("beta3: -> S(x), E(x,y)")


def intro_instance() -> Instance:
    """I = {S(n1), S(n2), E(n1, n2)} from the Introduction."""
    return parse_instance("S(n1). S(n2). E(n1,n2)")


# ----------------------------------------------------------------------
# Figure 2 (= Sigma_2 of Example 15; member of T[3] \\ T[2])
# ----------------------------------------------------------------------
def figure2() -> List[Constraint]:
    """If a special node has a predecessor, that predecessor has one."""
    return parse_constraints("alpha: S(x2), E(x1,x2) -> E(y,x1)")


# ----------------------------------------------------------------------
# Example 2 / 3 / 6: stratified but not weakly acyclic (and not safe)
# ----------------------------------------------------------------------
def example2_gamma() -> List[Constraint]:
    """Each 2-cycle node also has a 3-cycle; gamma does not precede
    itself (Examples 2 and 6; also the Theorem 4 witness {gamma})."""
    return parse_constraints(
        "gamma: E(x1,x2), E(x2,x1) -> E(x1,y1), E(y1,y2), E(y2,x1)")


# ----------------------------------------------------------------------
# Example 4 / 5 / 7 (Figures 4 and 5): the stratification refutation
# ----------------------------------------------------------------------
def example4() -> List[Constraint]:
    """Stratified, yet admits an infinite chase sequence."""
    return parse_constraints("""
        a1: R(x1) -> S(x1,x1);
        a2: S(x1,x2) -> T(x2,z);
        a3: S(x1,x2) -> T(x1,x2), T(x2,x1);
        a4: T(x1,x2), T(x1,x3), T(x3,x1) -> R(x2)
    """)


def example4_instance() -> Instance:
    return parse_instance("R(a)")


def example5_instance() -> Instance:
    """The instance of Example 5: {R(a), T(b,b)}."""
    return parse_instance("R(a). T(b,b)")


# ----------------------------------------------------------------------
# Examples 8 / 9 (Figure 6): safety's motivating constraint
# ----------------------------------------------------------------------
def example8_beta() -> List[Constraint]:
    """Safe but not weakly acyclic."""
    return parse_constraints("beta: R(x1,x2,x3), S(x2) -> R(x2,y,x1)")


def theorem4_safe_not_stratified() -> List[Constraint]:
    """Theorem 4(c)'s pair {alpha, beta}: safe, not stratified."""
    return parse_constraints("""
        alpha: S(x2,x3), R(x1,x2,x3) -> R(x2,y,x1);
        beta: R(x1,x2,x3) -> S(x1,x3)
    """)


# ----------------------------------------------------------------------
# Examples 10-14: (inductive) restriction
# ----------------------------------------------------------------------
def example10() -> List[Constraint]:
    """{alpha1, alpha2}: neither safe nor stratified, safely
    restricted."""
    return parse_constraints("""
        a1: S(x), E(x,y) -> E(y,x);
        a2: S(x), E(x,y) -> E(y,z), E(z,x)
    """)


def example13() -> List[Constraint]:
    """Sigma' = Example 10 + the empty-body alpha3: inductively
    restricted but not safely restricted."""
    return example10() + parse_constraints("a3: -> S(x), E(x,y)")


def section37_sigma_double_prime() -> List[Constraint]:
    """Sigma'' of Section 3.7 (the check-algorithm walkthrough)."""
    return example13() + parse_constraints("""
        a4: E(x1,x2) -> T(x1,x2);
        a5: T(x1,x2) -> T(x2,x1)
    """)


# ----------------------------------------------------------------------
# Figure 9 and Section 4: the travel-agency scenario
# ----------------------------------------------------------------------
def figure9() -> List[Constraint]:
    """The flight/rail constraints (also Example 1 / Figure 3)."""
    return parse_constraints("""
        a1: fly(c1,c2,d) -> hasAirport(c1), hasAirport(c2);
        a2: rail(c1,c2,d) -> rail(c2,c1,d);
        a3: fly(c1,c2,d) -> fly(c2,c3,d2)
    """)


def query_q1() -> ConjunctiveQuery:
    """Rail-and-fly (chase diverges on its canonical instance)."""
    return parse_query("rf(x2) <- rail('c1', x1, y1), fly(x1, x2, y2)")


def query_q2() -> ConjunctiveQuery:
    """Rail-and-fly with the symmetric way back (chase terminates)."""
    return parse_query(
        "rffr(x2) <- rail('c1', x1, y1), fly(x1, x2, y2), "
        "fly(x2, x1, y2), rail(x1, 'c1', y1)")


def query_q2_expected_plan() -> ConjunctiveQuery:
    """q2' of Section 4: the universal plan of q2."""
    return parse_query(
        "rffr(x2) <- rail('c1', x1, y1), fly(x1, x2, y2), "
        "fly(x2, x1, y2), rail(x1, 'c1', y1), "
        "hasAirport(x1), hasAirport(x2)")


def query_q2_double_prime() -> ConjunctiveQuery:
    """q2'': the join-elimination rewriting."""
    return parse_query(
        "rffr(x2) <- rail('c1', x1, y1), fly(x1, x2, y2), fly(x2, x1, y2)")


def query_q2_triple_prime() -> ConjunctiveQuery:
    """q2''': the join-introduction rewriting."""
    return parse_query(
        "rffr(x2) <- hasAirport(x1), rail('c1', x1, y1), "
        "fly(x1, x2, y2), fly(x2, x1, y2)")


# ----------------------------------------------------------------------
# Example 17: the monitor-graph walkthrough
# ----------------------------------------------------------------------
def example17_sigma() -> List[Constraint]:
    """Sigma_3 = {alpha_3} over the ternary predicate (written E in
    the paper's Example 17)."""
    return parse_constraints("a3: S(x3), E(x1,x2,x3) -> E(y,x1,x2)")


def example17_instance() -> Instance:
    return parse_instance("S(a1). S(a2). S(a3). E(a1,a2,a3)")


# ----------------------------------------------------------------------
# Example 19: restrictedly guarded but not weakly guarded
# ----------------------------------------------------------------------
def example19() -> List[Constraint]:
    return parse_constraints("""
        a1: R(x1,x2), S(x1,x2) -> S(x2,y);
        a2: S(x1,x2), S(x3,x1) -> R(x2,x1);
        a3: T(x1,x2) -> S(y,x2)
    """)


#: name -> (factory, description) for corpus-style experiments
NAMED_SETS = {
    "intro_alpha1": (intro_alpha1, "Introduction: terminating"),
    "intro_alpha2": (intro_alpha2, "Introduction: divergent"),
    "intro_alpha3": (intro_alpha3, "Introduction: harmless nulls"),
    "intro_betas": (intro_beta_set, "Introduction: null-flow supervision"),
    "intro_betas_ext": (intro_beta_set_extended,
                        "Introduction: inductive decomposition"),
    "figure2": (figure2, "Figure 2: T[3] \\ T[2]"),
    "example2_gamma": (example2_gamma, "Ex. 2: stratified, not WA/safe"),
    "example4": (example4, "Ex. 4: stratified, not c-stratified"),
    "example8_beta": (example8_beta, "Ex. 9: safe, not WA"),
    "thm4_safe_not_strat": (theorem4_safe_not_stratified,
                            "Thm. 4c: safe, not stratified"),
    "example10": (example10, "Ex. 10: safely restricted only"),
    "example13": (example13, "Ex. 13: inductively restricted only"),
    "sigma_double_prime": (section37_sigma_double_prime,
                           "Sec. 3.7: check() walkthrough"),
    "figure9": (figure9, "Fig. 9: travel agency"),
    "example17": (example17_sigma, "Ex. 17: monitor graph"),
    "example19": (example19, "Ex. 19: RG, not WG"),
}
