"""Parameterized constraint/instance families used by the paper's
separating examples and by the benchmark sweeps.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.lang.atoms import Atom
from repro.lang.constraints import Constraint, TGD
from repro.lang.instance import Instance
from repro.lang.terms import Constant, Variable


def sigma_family(m: int) -> List[Constraint]:
    """Example 15's ``Sigma_m`` for arity ``m >= 2``:

        ``S(x_m), R_m(x_1..x_m) -> exists y R_m(y, x_1..x_{m-1})``

    Admits ``<_{m,empty}`` chains but no ``<_{m+1,empty}`` ones, hence
    lies in ``T[m+1] \\ T[m]`` (with Figure 2 = ``Sigma_2 in T[3]``).
    """
    if m < 2:
        raise ValueError("the family starts at arity 2")
    xs = [Variable(f"x{i}") for i in range(1, m + 1)]
    y = Variable("y")
    body = [Atom("S", (xs[-1],)), Atom("R", tuple(xs))]
    head = [Atom("R", tuple([y] + xs[:-1]))]
    return [TGD(body, head, label=f"sigma_{m}")]


def prop11_family(k: int) -> Tuple[List[Constraint], Instance]:
    """Proposition 11's pair ``(Sigma_k, I_k)``:

        ``phi: S(x_k), R_k(x_1..x_k) -> exists y R_k(y, x_1..x_{k-1})``
        ``I_k = {S(c_1), ..., S(c_k), R_k(c_1, ..., c_k)}``

    Not inductively restricted, yet every chase sequence is
    ``(k-1)``-cyclic but not ``k``-cyclic: the pay-as-you-go witness.
    """
    if k < 2:
        raise ValueError("the family starts at k = 2")
    xs = [Variable(f"x{i}") for i in range(1, k + 1)]
    y = Variable("y")
    phi = TGD([Atom("S", (xs[-1],)), Atom("R", tuple(xs))],
              [Atom("R", tuple([y] + xs[:-1]))],
              label=f"phi_{k}")
    constants = [Constant(f"c{i}") for i in range(1, k + 1)]
    facts = [Atom("S", (c,)) for c in constants]
    facts.append(Atom("R", tuple(constants)))
    return [phi], Instance(facts)


def full_tgd_chain(length: int) -> List[Constraint]:
    """``R_i(x, y) -> R_{i+1}(x, y)`` for ``i < length``: weakly
    acyclic, chase length linear in ``length * |I|`` -- a scalable
    workload for the polynomial-complexity benches."""
    out: List[Constraint] = []
    x, y = Variable("x"), Variable("y")
    for i in range(length):
        out.append(TGD([Atom(f"R{i}", (x, y))],
                       [Atom(f"R{i + 1}", (x, y))],
                       label=f"copy_{i}"))
    return out


def bounded_null_cascade(depth: int) -> List[Constraint]:
    """A safe family creating nulls through ``depth`` distinct levels:

        ``L_i(x) -> exists y L_{i+1}(y)``

    Every position rank is finite; the chase creates exactly one null
    per level per trigger -- exercising Theorem 5's rank argument.
    """
    out: List[Constraint] = []
    x, y = Variable("x"), Variable("y")
    for i in range(depth):
        out.append(TGD([Atom(f"L{i}", (x,))],
                       [Atom(f"L{i + 1}", (y,))],
                       label=f"level_{i}"))
    return out


def example9_instance(n: int) -> Instance:
    """A path of length ``n`` reshaped into the ternary R/S schema of
    Example 9: ``R(c_i, c_{i+1}, c_i)`` and ``S(c_i)`` for each step --
    the scalable input for the safe class (Theorem 5) benchmarks."""
    facts = []
    for i in range(n):
        facts.append(Atom("R", (Constant(f"c{i}"), Constant(f"c{i + 1}"),
                                Constant(f"c{i}"))))
        facts.append(Atom("S", (Constant(f"c{i}"),)))
    return Instance(facts)


def chain_instance(n: int, relation: str = "E") -> Instance:
    """A path graph ``E(c_0, c_1), ..., E(c_{n-1}, c_n)``."""
    facts = [Atom(relation, (Constant(f"c{i}"), Constant(f"c{i + 1}")))
             for i in range(n)]
    return Instance(facts)


def cycle_instance(n: int, relation: str = "E") -> Instance:
    """A directed cycle on ``n`` constants."""
    facts = [Atom(relation, (Constant(f"c{i}"),
                             Constant(f"c{(i + 1) % n}")))
             for i in range(n)]
    return Instance(facts)


def special_nodes_instance(n: int, spacing: int = 1) -> Instance:
    """A path with every ``spacing``-th node marked special (``S``) --
    the Introduction's graph schema at scale."""
    facts = [Atom("E", (Constant(f"c{i}"), Constant(f"c{i + 1}")))
             for i in range(n)]
    facts += [Atom("S", (Constant(f"c{i}"),))
              for i in range(0, n + 1, spacing)]
    return Instance(facts)


def star_instance(n: int, relation: str = "E") -> Instance:
    """A star: edges from a hub to ``n`` leaves."""
    hub = Constant("hub")
    facts = [Atom(relation, (hub, Constant(f"leaf{i}")))
             for i in range(n)]
    return Instance(facts)
