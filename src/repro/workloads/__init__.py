"""Workloads: paper examples, parameterized families, generators."""

from repro.workloads import families, generators, paper, turing
from repro.workloads.paper import NAMED_SETS

__all__ = ["families", "generators", "paper", "turing", "NAMED_SETS"]
