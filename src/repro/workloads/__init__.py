"""Workloads: paper examples, parameterized families, generators,
and batch job-spec generators for the service layer."""

from repro.workloads import batch, families, generators, paper, turing
from repro.workloads.batch import job_spec, mixed_batch_specs
from repro.workloads.paper import NAMED_SETS

__all__ = ["batch", "families", "generators", "paper", "turing",
           "NAMED_SETS", "job_spec", "mixed_batch_specs"]
