"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``analyze FILE``
    Classify the constraints in FILE against every Figure 1 condition.
``chase FILE --instance FILE2``
    Chase an instance, with optional monitor guard and strategy.
``graph FILE --kind dep|prop|chase|cchase``
    Emit the corresponding graph as Graphviz DOT.
``optimize FILE --query 'ans(x) <- ...'``
    Run the Section 4 SQO pipeline on a query.

Constraint files use the library's text format (see
:mod:`repro.lang.parser`), e.g.::

    a1: S(x), E(x,y) -> E(y,x)
    a2: S(x), E(x,y) -> E(y,z), E(z,x)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.chase import chase, ChaseStatus
from repro.cq import optimize
from repro.datadep import monitored_chase
from repro.lang.errors import NonTerminationBudget, ReproError
from repro.lang.instance import Instance
from repro.lang.parser import (parse_constraints, parse_instance,
                               parse_query)
from repro.storage import backend_names
from repro.termination import analyze
from repro import viz


def _load_constraints(path: str):
    return parse_constraints(Path(path).read_text())


def cmd_analyze(args) -> int:
    sigma = _load_constraints(args.constraints)
    report = analyze(sigma, max_k=args.max_k)
    print(report.render())
    return 0 if report.guarantees_some_sequence else 1


def cmd_chase(args) -> int:
    sigma = _load_constraints(args.constraints)
    instance = parse_instance(Path(args.instance).read_text())
    if args.backend:
        # Rebuild on the requested fact-store backend (parse_instance
        # honours REPRO_BACKEND; the flag wins over the environment).
        instance = Instance(instance, backend=args.backend)
    if args.cycle_limit:
        result = monitored_chase(instance, sigma, args.cycle_limit,
                                 max_steps=args.max_steps).result
    else:
        result = chase(instance, sigma, max_steps=args.max_steps)
    print(f"status: {result.status.value} ({len(result.sequence)} steps)")
    print(result.instance.render())
    return 0 if result.status is ChaseStatus.TERMINATED else 1


def cmd_graph(args) -> int:
    sigma = _load_constraints(args.constraints)
    if args.kind == "dep":
        from repro.termination.dependency_graph import dependency_graph
        print(viz.position_graph_to_dot(dependency_graph(sigma), "dep"))
    elif args.kind == "prop":
        from repro.termination.safety import propagation_graph
        print(viz.position_graph_to_dot(propagation_graph(sigma), "prop"))
    elif args.kind == "chase":
        from repro.termination.chase_graph import chase_graph
        print(viz.constraint_graph_to_dot(chase_graph(sigma), "chase"))
    else:
        from repro.termination.chase_graph import c_chase_graph
        print(viz.constraint_graph_to_dot(c_chase_graph(sigma), "cchase"))
    return 0


def cmd_optimize(args) -> int:
    sigma = _load_constraints(args.constraints)
    query = parse_query(args.query)
    try:
        result = optimize(query, sigma, cycle_limit=args.cycle_limit)
    except NonTerminationBudget as exc:
        print(f"refused: {exc}", file=sys.stderr)
        return 1
    print(f"universal plan: {result.universal_plan}")
    for rewriting in result.minimal_rewritings():
        print(f"minimal rewriting: {rewriting}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Chase termination analysis "
                    "(Meier/Schmidt/Lausen, VLDB 2009)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="classify a constraint set")
    p.add_argument("constraints")
    p.add_argument("--max-k", type=int, default=3)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("chase", help="chase an instance")
    p.add_argument("constraints")
    p.add_argument("--instance", required=True)
    p.add_argument("--max-steps", type=int, default=10_000)
    p.add_argument("--cycle-limit", type=int, default=0,
                   help="arm the Section 4.2 monitor (0 = off)")
    p.add_argument("--backend", choices=backend_names(), default=None,
                   help="fact-store backend (default: $REPRO_BACKEND "
                        "or 'set')")
    p.set_defaults(func=cmd_chase)

    p = sub.add_parser("graph", help="emit a graph as DOT")
    p.add_argument("constraints")
    p.add_argument("--kind", choices=["dep", "prop", "chase", "cchase"],
                   default="dep")
    p.set_defaults(func=cmd_graph)

    p = sub.add_parser("optimize", help="SQO pipeline for a query")
    p.add_argument("constraints")
    p.add_argument("--query", required=True)
    p.add_argument("--cycle-limit", type=int, default=3)
    p.set_defaults(func=cmd_optimize)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
