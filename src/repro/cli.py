"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``analyze FILE``
    Classify the constraints in FILE against every Figure 1 condition.
``chase FILE --instance FILE2``
    Chase an instance, with optional monitor guard and strategy.
``graph FILE --kind dep|prop|chase|cchase``
    Emit the corresponding graph as Graphviz DOT.
``optimize FILE --query 'ans(x) <- ...'``
    Run the Section 4 SQO pipeline on a query.
``batch DIR``
    Run every ``*.json`` job under DIR (chase *or* query specs)
    through the batch scheduler (parallel workers, fingerprint cache,
    budget caps).
``serve``
    Line-oriented service loop: one job JSON per stdin line, one
    result JSON per stdout line, with a warm cache across requests.
``query SPEC | query FILE --instance FILE2 --query '...'``
    Certain answers of a conjunctive query over a knowledge base
    (Section 5), served through the same scheduler/cache/pool: SPEC
    is a query-job JSON file (or a directory of them, see
    ``examples/queries/``), or pass a constraints file plus
    ``--instance``/``--query`` inline.
``fuzz --seed S --cases N``
    Adversarial metamorphic fuzzing (:mod:`repro.fuzz`): seeded random
    constraint sets/instances/queries checked against the Figure 1
    hierarchy, backend/engine/service parity and answer invariance;
    failures are delta-debugged and written to ``examples/repros/`` as
    job specs replayable with ``repro batch``.
``stats FILE``
    Pretty-print a metrics snapshot (from ``--metrics-json`` or the
    serve loop's ``{"kind": "stats"}`` request); ``--prometheus``
    emits text exposition format instead.

``chase``, ``batch``, ``serve`` and ``query`` all accept
``--metrics`` (print fleet-wide counters to stderr on exit),
``--metrics-json FILE`` (write the final snapshot as JSON),
``--trace FILE`` (write NDJSON span records) and ``--trace-sample N``
(record step-level spans every Nth step); see :mod:`repro.obs`.

Constraint files use the library's text format (see
:mod:`repro.lang.parser`), e.g.::

    a1: S(x), E(x,y) -> E(y,x)
    a2: S(x), E(x,y) -> E(y,z), E(z,x)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.chase import chase, ChaseStatus
from repro.cq import optimize
from repro.datadep import monitored_chase
from repro.lang.errors import NonTerminationBudget, ReproError
from repro.lang.instance import Instance
from repro.lang.parser import (parse_constraints, parse_instance,
                               parse_query)
from repro.storage import backend_names
from repro.termination import analyze
from repro import viz


def _load_constraints(path: str):
    return parse_constraints(Path(path).read_text())


class _Observability:
    """Per-invocation observability scope for the CLI commands.

    Enables the metrics registry when ``--metrics``/``--metrics-json``
    ask for it, installs an NDJSON file tracer for ``--trace``, and on
    exit writes/prints the final snapshot and restores global state
    (so ``main()`` stays re-entrant for tests).
    """

    def __init__(self, args) -> None:
        self.metrics_json = getattr(args, "metrics_json", None)
        self.print_metrics = bool(getattr(args, "metrics", False))
        self.want_metrics = self.print_metrics or bool(self.metrics_json)
        self.trace_path = getattr(args, "trace", None)
        self.sample = max(1, getattr(args, "trace_sample", 1) or 1)
        self._handle = None
        self._previous_tracer = None
        self._previous_enabled = None

    def __enter__(self) -> "_Observability":
        from repro.obs import metrics, trace
        self._previous_enabled = metrics.OBS.enabled
        if self.want_metrics:
            metrics.enable()
        if self.trace_path:
            self._handle = open(self.trace_path, "w")
            tracer = trace.Tracer(trace.ndjson_writer(self._handle),
                                  sample=self.sample)
            self._previous_tracer = trace.set_tracer(tracer)
        return self

    def __exit__(self, *exc_info) -> None:
        import json as _json
        from repro.obs import metrics, trace
        if self.trace_path:
            trace.set_tracer(self._previous_tracer)
            self._handle.close()
        if self.want_metrics:
            snap = metrics.snapshot()
            if self.metrics_json:
                Path(self.metrics_json).write_text(
                    _json.dumps(snap, sort_keys=True, indent=2) + "\n")
            if self.print_metrics:
                print(metrics.render_text(snap), file=sys.stderr)
        metrics.OBS.enabled = self._previous_enabled


def cmd_analyze(args) -> int:
    sigma = _load_constraints(args.constraints)
    report = analyze(sigma, max_k=args.max_k)
    print(report.render())
    return 0 if report.guarantees_some_sequence else 1


def cmd_chase(args) -> int:
    sigma = _load_constraints(args.constraints)
    instance = parse_instance(Path(args.instance).read_text())
    if args.backend:
        # Rebuild on the requested fact-store backend (parse_instance
        # honours REPRO_BACKEND; the flag wins over the environment).
        instance = Instance(instance, backend=args.backend)
    with _Observability(args):
        if args.cycle_limit:
            result = monitored_chase(instance, sigma, args.cycle_limit,
                                     max_steps=args.max_steps).result
        else:
            result = chase(instance, sigma, max_steps=args.max_steps)
        print(f"status: {result.status.value} "
              f"({len(result.sequence)} steps)")
        print(result.instance.render())
    return 0 if result.status is ChaseStatus.TERMINATED else 1


def _load_jobs(path: Path):
    from repro.service import job_from_path
    if path.is_dir():
        job_files = sorted(path.glob("*.json"))
        if not job_files:
            raise ReproError(f"no *.json job files under {path}")
    elif path.exists():
        job_files = [path]
    else:
        raise ReproError(f"no such job file or directory: {path}")
    return [job_from_path(job_file) for job_file in job_files]


def _make_scheduler(args, workers: int):
    from repro.service import BatchScheduler, ServiceCache
    on_event = None
    if getattr(args, "events", False):
        def on_event(event):
            print(event.render(), file=sys.stderr)
    cache = ServiceCache(result_size=0 if args.no_cache else 256)
    return BatchScheduler(workers=workers, cache=cache, on_event=on_event,
                          unknown_step_cap=args.step_cap,
                          default_hard_timeout=args.hard_timeout,
                          progress_every=args.progress_every)


def cmd_batch(args) -> int:
    import json as _json
    jobs = _load_jobs(Path(args.jobs))
    with _Observability(args):
        scheduler = _make_scheduler(args, workers=args.workers)
        try:
            results = scheduler.run_batch(jobs)
        finally:
            scheduler.close()
    for result in results:
        if args.json:
            print(_json.dumps(result.to_dict(), sort_keys=True))
        else:
            print(result.describe())
    completed = sum(1 for r in results if r.ok)
    cached = sum(1 for r in results if r.cached)
    terminated = sum(1 for r in results if r.terminated)
    print(f"batch: {len(results)} jobs, {completed} completed "
          f"({terminated} terminated), {cached} from cache, "
          f"{len(results) - completed} killed/errored", file=sys.stderr)
    return 0 if completed == len(results) else 1


def cmd_serve(args) -> int:
    """Serve job requests over NDJSON stdin or HTTP (``--http``).

    Both transports interpret requests through the same
    :class:`~repro.service.dispatch.ServiceSession` dispatch table, so
    their semantics cannot drift; the NDJSON loop (one job JSON per
    input line -> one result JSON per output line, ``quit`` or EOF
    ends the session) is the transport-free reference.  Either way the
    session keeps a warm fingerprint cache for its whole lifetime, so
    repeated requests are answered without re-chasing.
    """
    import json as _json
    from repro.service.dispatch import ServiceSession
    with _Observability(args):
        scheduler = _make_scheduler(args, workers=args.workers)
        session = ServiceSession(
            scheduler, request_wall_clock=args.request_wall_clock)
        try:
            if getattr(args, "http", False):
                from repro.service.http import serve_http
                return serve_http(session, host=args.host,
                                  port=args.port,
                                  queue_bound=args.queue_bound,
                                  max_body=args.max_body,
                                  allow_shutdown=args.shutdown_endpoint)
            for line in sys.stdin:
                if line.strip() in ("quit", "exit"):
                    break
                payload = session.handle_line(line)
                if payload is None:          # blank line
                    continue
                print(_json.dumps(payload, sort_keys=True), flush=True)
        finally:
            scheduler.close()
    return 0


def cmd_query(args) -> int:
    """Serve certain-answer query jobs through the batch machinery.

    The positional argument is either a query-job JSON spec (or a
    directory of specs) or a constraints file combined with
    ``--instance`` and ``--query``.  Either way the jobs run through
    the scheduler -- termination-aware planning, fingerprint cache,
    worker pool -- exactly like ``repro batch``.
    """
    import json as _json
    from repro.service import QueryJob
    from repro.service.serialize import decode_term
    path = Path(args.spec)
    if path.is_dir() or path.suffix == ".json":
        jobs = _load_jobs(path)
        not_queries = [job.name for job in jobs if job.kind != "query"]
        if not_queries:
            raise ReproError("not query-job specs (no 'query' field): "
                             + ", ".join(not_queries))
    else:
        if not args.query or not args.instance:
            raise ReproError("--instance and --query are required when "
                             "the positional argument is a constraints "
                             "file (pass a .json spec otherwise)")
        instance = parse_instance(Path(args.instance).read_text())
        jobs = [QueryJob(
            name=path.stem, sigma=tuple(_load_constraints(args.spec)),
            instance=instance, query=parse_query(args.query),
            backend=args.backend, max_steps=args.max_steps,
            cycle_limit=args.cycle_limit,
            optimize=not args.no_optimize, depth_limit=args.depth_limit)]
    with _Observability(args):
        scheduler = _make_scheduler(args, workers=args.workers)
        try:
            results = scheduler.run_batch(jobs)
        finally:
            scheduler.close()
    for result in results:
        if args.json:
            print(_json.dumps(result.to_dict(), sort_keys=True))
            continue
        print(result.describe())
        if result.query:
            print(f"  evaluated: {result.query}")
        for row in result.answers or []:
            rendered = ", ".join(str(decode_term(term)) for term in row)
            print(f"  ({rendered})")
    completed = sum(1 for r in results if r.ok)
    cached = sum(1 for r in results if r.cached)
    print(f"query: {len(results)} jobs, {completed} completed, "
          f"{cached} from cache, {len(results) - completed} "
          "killed/errored", file=sys.stderr)
    return 0 if completed == len(results) else 1


def cmd_fuzz(args) -> int:
    """Run the adversarial metamorphic fuzzer (see :mod:`repro.fuzz`).

    Fully deterministic per ``(--seed, --cases)``: the corpus, every
    oracle verdict and every minimized repro spec replay identically
    (timing effects -- wall clocks, oracle deadlines -- only ever move
    outcomes into the *skip* column).  Violations are shrunk and
    written to ``--repro-dir`` as job specs replayable with
    ``repro batch``.
    """
    import json as _json
    from repro.fuzz import run_corpus
    on_case = None
    if args.events:
        def on_case(case):
            print(case.describe(), file=sys.stderr)
    report = run_corpus(
        args.seed, args.cases,
        max_steps=args.max_steps,
        wall_clock=args.wall_clock if args.wall_clock > 0 else None,
        oracle_deadline_s=args.deadline if args.deadline > 0 else None,
        deep_hierarchy_every=args.deep_every,
        pool_every=args.pool_every,
        repro_dir=args.repro_dir,
        shrink=not args.no_shrink,
        on_case=on_case)
    if args.json:
        print(_json.dumps(report.to_dict(), sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def cmd_graph(args) -> int:
    sigma = _load_constraints(args.constraints)
    if args.kind == "dep":
        from repro.termination.dependency_graph import dependency_graph
        print(viz.position_graph_to_dot(dependency_graph(sigma), "dep"))
    elif args.kind == "prop":
        from repro.termination.safety import propagation_graph
        print(viz.position_graph_to_dot(propagation_graph(sigma), "prop"))
    elif args.kind == "chase":
        from repro.termination.chase_graph import chase_graph
        print(viz.constraint_graph_to_dot(chase_graph(sigma), "chase"))
    else:
        from repro.termination.chase_graph import c_chase_graph
        print(viz.constraint_graph_to_dot(c_chase_graph(sigma), "cchase"))
    return 0


def cmd_optimize(args) -> int:
    sigma = _load_constraints(args.constraints)
    query = parse_query(args.query)
    try:
        result = optimize(query, sigma, cycle_limit=args.cycle_limit)
    except NonTerminationBudget as exc:
        print(f"refused: {exc}", file=sys.stderr)
        return 1
    print(f"universal plan: {result.universal_plan}")
    for rewriting in result.minimal_rewritings():
        print(f"minimal rewriting: {rewriting}")
    return 0


def cmd_stats(args) -> int:
    """Pretty-print a metrics snapshot (``--metrics-json`` output or a
    ``{"kind": "stats"}`` reply from ``repro serve``).

    ``-`` reads stdin, so a serve session can be piped straight
    through::

        echo '{"kind": "stats"}' | repro serve | repro stats -
    """
    import json as _json
    from repro.obs import metrics as _metrics
    raw = sys.stdin.read() if args.snapshot == "-" \
        else Path(args.snapshot).read_text()
    raw = raw.strip()
    if not raw:
        raise ReproError("empty snapshot input")
    # A serve session emits one JSON object per line; take the first
    # line that parses as a stats payload (or bare snapshot).
    snap = None
    for line in raw.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            payload = _json.loads(line)
        except ValueError:
            continue
        if not isinstance(payload, dict):
            continue
        if payload.get("kind") == "stats":
            snap = payload.get("metrics", {})
            break
        if "counters" in payload or "gauges" in payload \
                or "histograms" in payload:
            snap = payload
            break
    if snap is None:
        # Multi-line pretty-printed snapshot (``--metrics-json``).
        try:
            payload = _json.loads(raw)
        except ValueError as exc:
            raise ReproError(f"not a metrics snapshot: {exc}")
        if isinstance(payload, dict) and payload.get("kind") == "stats":
            snap = payload.get("metrics", {})
        elif isinstance(payload, dict):
            snap = payload
        else:
            raise ReproError("not a metrics snapshot (expected a JSON "
                             "object)")
    renderer = _metrics.render_prometheus if args.prometheus \
        else _metrics.render_text
    print(renderer(snap))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Chase termination analysis "
                    "(Meier/Schmidt/Lausen, VLDB 2009)")
    sub = parser.add_subparsers(dest="command", required=True)

    def obs_options(p):
        p.add_argument("--metrics", action="store_true",
                       help="enable the metrics registry and dump the "
                            "final totals to stderr")
        p.add_argument("--metrics-json", metavar="FILE", default=None,
                       help="enable metrics and write the final "
                            "snapshot as JSON to FILE")
        p.add_argument("--trace", metavar="FILE", default=None,
                       help="write hierarchical spans as NDJSON to "
                            "FILE")
        p.add_argument("--trace-sample", type=int, default=1,
                       metavar="N",
                       help="with --trace: record only every Nth "
                            "step-granularity span (default 1 = all)")

    p = sub.add_parser("analyze", help="classify a constraint set")
    p.add_argument("constraints")
    p.add_argument("--max-k", type=int, default=3)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("chase", help="chase an instance")
    p.add_argument("constraints")
    p.add_argument("--instance", required=True)
    p.add_argument("--max-steps", type=int, default=10_000)
    p.add_argument("--cycle-limit", type=int, default=0,
                   help="arm the Section 4.2 monitor (0 = off)")
    p.add_argument("--backend", choices=backend_names(), default=None,
                   help="fact-store backend (default: $REPRO_BACKEND "
                        "or 'set')")
    obs_options(p)
    p.set_defaults(func=cmd_chase)

    p = sub.add_parser("fuzz",
                       help="adversarial metamorphic fuzzing of the "
                            "whole stack (deterministic per seed)")
    p.add_argument("--seed", type=int, default=0,
                   help="corpus seed (same seed => same corpus, same "
                        "verdicts)")
    p.add_argument("--cases", type=int, default=200,
                   help="number of generated cases (default 200)")
    p.add_argument("--repro-dir", default="examples/repros",
                   help="where minimized failing cases are written as "
                        "replayable job specs (default examples/repros)")
    p.add_argument("--max-steps", type=int, default=250,
                   help="step budget per chase inside the oracles")
    p.add_argument("--wall-clock", type=float, default=0.5,
                   help="wall-clock budget in seconds per chase "
                        "(0 = unbounded)")
    p.add_argument("--deadline", type=float, default=0.8,
                   help="hard per-oracle-call deadline in seconds; a "
                        "hit skips the case (0 = unbounded)")
    p.add_argument("--deep-every", type=int, default=4, metavar="N",
                   help="probe the expensive hierarchy classes "
                        "(safely/inductively restricted, T[k]) every "
                        "Nth case (0 = never)")
    p.add_argument("--pool-every", type=int, default=25, metavar="N",
                   help="cross-check a real 2-worker pool every Nth "
                        "case (0 = never)")
    p.add_argument("--no-shrink", action="store_true",
                   help="write failing cases unminimized")
    p.add_argument("--events", action="store_true",
                   help="print each generated case to stderr")
    p.add_argument("--json", action="store_true",
                   help="emit the report as one JSON object")
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser("graph", help="emit a graph as DOT")
    p.add_argument("constraints")
    p.add_argument("--kind", choices=["dep", "prop", "chase", "cchase"],
                   default="dep")
    p.set_defaults(func=cmd_graph)

    p = sub.add_parser("optimize", help="SQO pipeline for a query")
    p.add_argument("constraints")
    p.add_argument("--query", required=True)
    p.add_argument("--cycle-limit", type=int, default=3)
    p.set_defaults(func=cmd_optimize)

    def service_options(p):
        p.add_argument("--events", action="store_true",
                       help="stream progress events to stderr")
        p.add_argument("--progress-every", type=int, default=0,
                       metavar="N",
                       help="with --events: also emit a progress event "
                            "every N chase steps (0 = off)")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the fingerprint result cache")
        p.add_argument("--step-cap", type=int, default=10_000,
                       help="step-budget cap for jobs whose termination "
                            "is unknown (default 10000)")
        p.add_argument("--hard-timeout", type=float, default=None,
                       help="kill deadline in seconds for jobs without "
                            "a wall_clock budget (default: never)")
        obs_options(p)

    p = sub.add_parser("batch",
                       help="run a directory of chase job files")
    p.add_argument("jobs", help="directory of *.json job files "
                                "(or a single job file)")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--json", action="store_true",
                   help="emit one result JSON per line instead of text")
    service_options(p)
    p.set_defaults(func=cmd_batch)

    p = sub.add_parser("serve",
                       help="serve jobs from stdin (one JSON per line) "
                            "or over HTTP (--http)")
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--http", action="store_true",
                   help="serve over HTTP instead of NDJSON stdin")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address for --http (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8765,
                   help="bind port for --http (0 = ephemeral; the "
                        "bound port is announced on stdout as a "
                        '{"kind": "listening"} JSON line)')
    p.add_argument("--queue-bound", type=int, default=64,
                   help="pending-job queue bound for --http; submits "
                        "beyond it get 429 + Retry-After (default 64)")
    p.add_argument("--max-body", type=int, default=1024 * 1024,
                   help="request-body byte limit for --http; larger "
                        "payloads get 413 (default 1 MiB)")
    p.add_argument("--request-wall-clock", type=float, default=None,
                   metavar="SECONDS",
                   help="clamp every request's soft wall-clock budget "
                        "(both transports; over-budget requests come "
                        "back as structured partial results)")
    p.add_argument("--shutdown-endpoint", action="store_true",
                   help="with --http: enable POST /shutdown for a "
                        "graceful drain")
    service_options(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("query",
                       help="certain answers of a CQ over a knowledge "
                            "base (Section 5)")
    p.add_argument("spec", help="query-job JSON spec file or directory "
                                "(see examples/queries/), or a "
                                "constraints file with --instance/--query")
    p.add_argument("--instance", default=None,
                   help="instance file (with a constraints-file spec)")
    p.add_argument("--query", default=None,
                   help="query text, e.g. 'q(x) <- E(x, y)' "
                        "(with a constraints-file spec)")
    p.add_argument("--backend", choices=backend_names(), default=None)
    p.add_argument("--max-steps", type=int, default=10_000)
    p.add_argument("--cycle-limit", type=int, default=0,
                   help="arm the Section 4.2 monitor (0 = off)")
    p.add_argument("--no-optimize", action="store_true",
                   help="skip the Section 4 semantic optimization")
    p.add_argument("--depth-limit", type=int, default=None,
                   help="depth bound for the non-terminating fallback "
                        "(default: query-sized heuristic)")
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--json", action="store_true",
                   help="emit one result JSON per line instead of text")
    service_options(p)
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("stats",
                       help="pretty-print a metrics snapshot "
                            "(--metrics-json file or a serve stats "
                            "reply; '-' reads stdin)")
    p.add_argument("snapshot", help="snapshot JSON file, or '-' for "
                                    "stdin")
    p.add_argument("--prometheus", action="store_true",
                   help="emit Prometheus text exposition instead of "
                        "the plain listing")
    p.set_defaults(func=cmd_stats)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
