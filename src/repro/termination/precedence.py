"""The firing-precedence relations: ``<`` (Def. 2), ``<_c`` (Def. 4),
``<_P`` (Def. 10) and ``<_k,P`` (Def. 14).

All four relations ask whether firing some constraint(s) can *newly*
violate another constraint.  Decidability rests on the bounded-candidate
argument of the paper (Prop. 3 and the proof of Prop. 1): it suffices to
examine candidate databases that are unions of homomorphic images of the
constraint bodies, of size at most the sum of the constraint lengths.

Instead of enumerating all such candidates eagerly (Bell-number blowup),
this module runs a *forward search*: the candidate instance ``I0`` is
grown lazily while homomorphisms for the step bodies and the final
violation are searched.  Every body atom either matches an existing fact
(of ``I0`` or of an earlier step's head image) or is *created* as a new
``I0`` fact whose arguments come from the current term pool, the
constraint constants, or fresh labeled nulls.  Created atoms never
contain step-created nulls (``I0`` predates the steps).  For TGD-only
inputs this search is complete: any real witness restricts to an
isomorphic copy reachable by the search (see docs/PAPER_MAP.md).

Two interpretation points, fixed here and documented in
docs/PAPER_MAP.md ("Deviations and interpretation points"):

* **Definition 4 erratum.**  As printed, Def. 4 keeps condition
  "(i) I |/= alpha(a)", under which the oblivious step never differs
  from the standard one and Example 7 fails.  The corrected relation
  drops (i); pass ``printed_variant=True`` to get the literal text.

* **Skip replays in Def. 14.**  The side condition "for every
  i in [k-1]: J_{k-1} is defined and J_{k-1} |= alpha_k(a_k)" is
  evaluated by *replaying* the remaining steps in order with their
  original parameters and original fresh nulls; a TGD step whose body
  is absent from the replayed prefix is a no-op (its trigger never
  existed in that world), and an EGD step equating two distinct
  constants makes the replay undefined.  This is the unique reading we
  found under which Example 15's frontier (``Sigma_m`` admits
  ``<_{m,empty}`` chains but not ``<_{m+1,empty}`` ones, hence
  ``Sigma_m in T[m+1]``, matching "Figure 2 ... is contained in level
  T[3]") checks out.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lang.atoms import Atom, Position
from repro.lang.constraints import Constraint, EGD, TGD, rename_apart
from repro.lang.terms import (Constant, GroundTerm, Null, NullFactory,
                              Variable)

#: default search-node budget per relation query; exhausting it returns
#: the *conservative* answer True (more edges can only weaken, never
#: wrongly strengthen, a termination guarantee).
DEFAULT_NODE_BUDGET = 20_000_000


class _BudgetExhausted(Exception):
    """Internal: the per-query search budget ran out."""


class _StepRecord:
    """One executed oblivious/standard step inside a candidate world."""

    __slots__ = ("constraint", "binding", "body_atoms", "head_atoms",
                 "fresh_nulls", "saved_j")

    def __init__(self, constraint: Constraint,
                 binding: Dict[Variable, GroundTerm],
                 body_atoms: Tuple[Atom, ...],
                 head_atoms: Tuple[Atom, ...],
                 fresh_nulls: Tuple[Null, ...],
                 saved_j: Optional[Set[Atom]] = None) -> None:
        self.constraint = constraint
        self.binding = binding
        self.body_atoms = body_atoms
        self.head_atoms = head_atoms
        self.fresh_nulls = fresh_nulls
        self.saved_j = saved_j


class _Ctx:
    """Mutable search state: the candidate ``I0`` and the step stack."""

    def __init__(self, constants: Sequence[Constant], budget: int) -> None:
        self.i_facts: Set[Atom] = set()
        self.j_facts: Set[Atom] = set()
        self.pool: List[GroundTerm] = []
        self.pool_set: Set[GroundTerm] = set()
        self.step_nulls: Set[Null] = set()
        self.removed_terms: Set[GroundTerm] = set()
        self.steps: List[_StepRecord] = []
        self.constants: List[Constant] = list(dict.fromkeys(constants))
        self.nulls = NullFactory()
        self.budget = budget

    def tick(self) -> None:
        """Spend one unit of search budget; abort the decision
        procedure when it runs out."""
        self.budget -= 1
        if self.budget <= 0:
            raise _BudgetExhausted

    # -- I0 mutation with undo ----------------------------------------
    def add_i_fact(self, fact: Atom) -> tuple:
        """Add a created fact to I0 (and J); return an undo token."""
        new_i = fact not in self.i_facts
        new_j = fact not in self.j_facts
        if new_i:
            self.i_facts.add(fact)
        if new_j:
            self.j_facts.add(fact)
        added_terms = []
        for term in fact.args:
            if term not in self.pool_set:
                self.pool.append(term)
                self.pool_set.add(term)
                added_terms.append(term)
        return (fact, new_i, new_j, added_terms)

    def undo_i_fact(self, token: tuple) -> None:
        """Roll back a speculative :meth:`add_i_fact` (backtracking)."""
        fact, new_i, new_j, added_terms = token
        if new_i:
            self.i_facts.discard(fact)
        if new_j:
            self.j_facts.discard(fact)
        for term in added_terms:
            self.pool.remove(term)
            self.pool_set.discard(term)


def _ground(atoms: Iterable[Atom], binding: Dict[Variable, GroundTerm]
            ) -> Tuple[Atom, ...]:
    return tuple(atom.substitute(binding) for atom in atoms)


def _match(atom: Atom, fact: Atom, binding: Dict[Variable, GroundTerm]
           ) -> Optional[Dict[Variable, GroundTerm]]:
    """Unify a body atom with a fact; return an extended binding."""
    if atom.relation != fact.relation or atom.arity != fact.arity:
        return None
    extension: Dict[Variable, GroundTerm] = {}
    for arg, value in zip(atom.args, fact.args):
        if isinstance(arg, Variable):
            bound = binding.get(arg, extension.get(arg))
            if bound is None:
                extension[arg] = value
            elif bound != value:
                return None
        elif arg != value:
            return None
    if not extension:
        return binding
    merged = dict(binding)
    merged.update(extension)
    return merged


def _open_hom(atoms: Sequence[Atom], binding: Dict[Variable, GroundTerm],
              ctx: _Ctx, allow_creation: bool = True):
    """Enumerate homomorphisms of ``atoms`` into the current world.

    Each atom either matches a fact of ``ctx.j_facts`` or, when
    ``allow_creation``, is created as a fresh ``I0`` fact (arguments
    from the I0 term pool, the constraint constants, or fresh nulls --
    never step-created nulls).  Creations are undone on backtracking.
    Yields complete bindings; the created facts stay in ``ctx`` for the
    duration of the downstream exploration.
    """
    ctx.tick()
    if not atoms:
        yield binding
        return
    # Most-constrained-first atom ordering.
    def bound_count(atom: Atom) -> int:
        return sum(1 for a in atom.args
                   if not isinstance(a, Variable) or a in binding)
    best = max(range(len(atoms)), key=lambda i: bound_count(atoms[i]))
    atom = atoms[best]
    rest = list(atoms[:best]) + list(atoms[best + 1:])

    # Option A: match an existing fact (of I0 or of a step head image).
    for fact in [f for f in ctx.j_facts if f.relation == atom.relation]:
        extended = _match(atom, fact, binding)
        if extended is not None:
            yield from _open_hom(rest, extended, ctx, allow_creation)

    if not allow_creation:
        return

    # Option B: create the atom as a new I0 fact.  Unbound variables
    # range over the pool, the constants, and a fresh null; choices are
    # made variable-by-variable so a fresh null chosen for one variable
    # is visible to the next.
    unbound = []
    seen: Set[Variable] = set()
    for arg in atom.args:
        if isinstance(arg, Variable) and arg not in binding and arg not in seen:
            unbound.append(arg)
            seen.add(arg)

    def choose(index: int, local: Dict[Variable, GroundTerm],
               fresh_terms: List[GroundTerm]):
        ctx.tick()
        if index == len(unbound):
            merged = dict(binding)
            merged.update(local)
            grounded = atom.substitute(merged)
            # I0 exists before the steps: it can contain neither
            # step-created nulls nor terms removed by an EGD step.
            if any(a in ctx.step_nulls or a in ctx.removed_terms
                   for a in grounded.args):
                return
            token = ctx.add_i_fact(grounded)
            try:
                yield from _open_hom(rest, merged, ctx, allow_creation)
            finally:
                ctx.undo_i_fact(token)
            return
        var = unbound[index]
        candidates: List[GroundTerm] = [t for t in ctx.pool
                                        if t not in ctx.step_nulls]
        candidates += [c for c in ctx.constants if c not in ctx.pool_set]
        candidates += fresh_terms
        for term in candidates:
            local[var] = term
            yield from choose(index + 1, local, fresh_terms)
            del local[var]
        fresh = ctx.nulls.fresh()
        local[var] = fresh
        yield from choose(index + 1, local, fresh_terms + [fresh])
        del local[var]

    yield from choose(0, {}, [])


def _apply_oblivious_tgd(ctx: _Ctx, tgd: TGD,
                         binding: Dict[Variable, GroundTerm]) -> _StepRecord:
    extension = dict(binding)
    fresh: List[Null] = []
    for var in sorted(tgd.existential_variables(), key=lambda v: v.name):
        null = ctx.nulls.fresh()
        extension[var] = null
        fresh.append(null)
        ctx.step_nulls.add(null)
    head_atoms = _ground(tgd.head, extension)
    record = _StepRecord(tgd, dict(binding), _ground(tgd.body, binding),
                         head_atoms, tuple(fresh), saved_j=set(ctx.j_facts))
    ctx.j_facts |= set(head_atoms)
    ctx.steps.append(record)
    return record


def _undo_step(ctx: _Ctx, record: _StepRecord) -> None:
    ctx.steps.pop()
    for null in record.fresh_nulls:
        ctx.step_nulls.discard(null)
    # Restore the pre-step J snapshot, keeping any I0 facts created by
    # deeper searches (they belong to every world).
    assert record.saved_j is not None
    ctx.j_facts = record.saved_j | ctx.i_facts


def _replay_without(ctx: _Ctx, skip_index: int) -> Optional[Set[Atom]]:
    """The skip-replay semantics of docs/PAPER_MAP.md (Def. 14
    interpretation point): replay all steps except
    ``skip_index`` in order with original parameters and nulls; TGD
    steps whose body is absent are no-ops.  Returns the resulting fact
    set, or None if the replay is undefined."""
    world: Set[Atom] = set(ctx.i_facts)
    for index, step in enumerate(ctx.steps):
        if index == skip_index:
            continue
        if isinstance(step.constraint, TGD):
            if all(atom in world for atom in step.body_atoms):
                world |= set(step.head_atoms)
        else:
            egd = step.constraint
            assert isinstance(egd, EGD)
            left = step.binding[egd.lhs]
            right = step.binding[egd.rhs]
            if left == right:
                continue
            if not all(atom in world for atom in step.body_atoms):
                continue
            if isinstance(right, Null):
                old, new = right, left
            elif isinstance(left, Null):
                old, new = left, right
            else:
                return None  # chase failure: replay undefined
            world = {atom.substitute({old: new}) for atom in world}
    return world


def _extension_exists(ctx: _Ctx, tgd: TGD,
                      binding: Dict[Variable, GroundTerm],
                      facts: Set[Atom]) -> bool:
    """Does the frontier part of ``binding`` extend to a homomorphism
    of the head into ``facts``?  (Set-based, no Instance indexing.)"""
    frontier = {var: binding[var] for var in tgd.frontier_variables()}
    by_relation: Dict[str, List[Atom]] = {}
    for fact in facts:
        by_relation.setdefault(fact.relation, []).append(fact)
    head = list(tgd.head)

    def rec(index: int, current: Dict[Variable, GroundTerm]) -> bool:
        ctx.tick()
        if index == len(head):
            return True
        atom = head[index]
        for fact in by_relation.get(atom.relation, ()):
            extended = _match(atom, fact, current)
            if extended is not None and rec(index + 1, extended):
                return True
        return False

    return rec(0, frontier)


def _satisfied_in_world(ctx: _Ctx, constraint: Constraint,
                        binding: Dict[Variable, GroundTerm],
                        facts: Set[Atom]) -> bool:
    """``facts |= constraint(binding)`` over a plain fact set."""
    grounded_body = _ground(constraint.body, binding)
    if not all(atom in facts for atom in grounded_body):
        return True
    if isinstance(constraint, TGD):
        return _extension_exists(ctx, constraint, binding, facts)
    assert isinstance(constraint, EGD)
    return binding[constraint.lhs] == binding[constraint.rhs]


def _head_parameter_variables(constraint: Constraint) -> Set[Variable]:
    """Universal variables occurring "in the head" (Def. 10's n)."""
    if isinstance(constraint, TGD):
        return constraint.frontier_variables()
    assert isinstance(constraint, EGD)
    return {constraint.lhs, constraint.rhs}


def _null_condition_holds(ctx: _Ctx, final: Constraint,
                          binding: Dict[Variable, GroundTerm],
                          positions: frozenset) -> bool:
    """Exists n in b cap Delta_null occurring in head(beta(b)) with
    ``null-pos({n}, I0) subseteq P``."""
    for var in _head_parameter_variables(final):
        value = binding.get(var)
        if not isinstance(value, Null):
            continue
        if value in ctx.step_nulls:
            return True  # does not occur in I0 at all
        occupied = {Position(fact.relation, i + 1)
                    for fact in ctx.i_facts
                    for i, arg in enumerate(fact.args) if arg == value}
        if occupied <= positions:
            return True
    return False


def _final_conditions(ctx: _Ctx, final: Constraint,
                      binding: Dict[Variable, GroundTerm],
                      positions: Optional[frozenset],
                      first: Constraint,
                      first_binding: Optional[Dict[Variable, GroundTerm]],
                      require_standard_step: bool) -> bool:
    """Check every remaining witness condition for a candidate.

    Ordered cheapest-first; all checks operate on plain fact sets.
    """
    # Null side condition (<_P and <_k,P only): dictionary lookups.
    if positions is not None and not _null_condition_holds(
            ctx, final, binding, positions):
        return False
    grounded_body = _ground(final.body, binding)
    # Sound prune: removing the *last* step cannot cascade (nothing
    # follows it), so its skip replay keeps every other atom; the final
    # body must therefore use one of its additions (TGD steps only).
    if ctx.steps and isinstance(ctx.steps[-1].constraint, TGD):
        last = ctx.steps[-1]
        last_added = set(last.head_atoms) - (last.saved_j or set())
        if not any(atom in last_added for atom in grounded_body):
            return False
    # (iv) J |/= beta(b): the body is in J by construction of the
    # homomorphism search, so only the head-extension must fail.
    if not all(atom in ctx.j_facts for atom in grounded_body):
        return False  # defensive; should not happen
    if isinstance(final, TGD):
        if _extension_exists(ctx, final, binding, ctx.j_facts):
            return False
    else:
        assert isinstance(final, EGD)
        if binding[final.lhs] == binding[final.rhs]:
            return False
    # Skip conditions; for k = 2 the single skip is exactly
    # "(ii) I0 |= beta(b)" of Definitions 2 and 10.
    for skip_index in range(len(ctx.steps)):
        world = _replay_without(ctx, skip_index)
        if world is None:
            return False
        if not _satisfied_in_world(ctx, final, binding, world):
            return False
    # (i) of Definition 2: the first step must be a *standard* step,
    # i.e. alpha was violated in I0 under its trigger.
    if require_standard_step:
        assert first_binding is not None
        if isinstance(first, TGD):
            if _extension_exists(ctx, first, first_binding, ctx.i_facts):
                return False
        # For an EGD the step's applicability (mu(xi) != mu(xj)) was
        # enforced when the step executed.
    return True


def _relation_feasible(chain: Sequence[Constraint]) -> bool:
    """Relation-level necessary condition for a chain witness.

    Removing any step must cascade (forward, through body dependencies)
    into the final violated body; ground dependencies imply
    relation-level ones, so every step index must reach the final index
    in the DAG with edges ``i -> j`` (i < j) iff some head relation of
    ``alpha_i`` occurs in the body of ``alpha_j``.  Chains containing
    EGD steps are exempted (their removal cascades through
    substitutions, not atoms).
    """
    k = len(chain)
    steps = chain[:-1]
    if any(not isinstance(c, TGD) for c in steps):
        return True
    heads = [{atom.relation for atom in c.head}  # type: ignore[union-attr]
             for c in steps]
    bodies = [{atom.relation for atom in c.body} for c in chain]
    reaches: Set[int] = {k - 1}
    changed = True
    while changed:
        changed = False
        for i in range(k - 2, -1, -1):
            if i in reaches:
                continue
            if any(j in reaches and heads[i] & bodies[j]
                   for j in range(i + 1, k)):
                reaches.add(i)
                changed = True
    return all(i in reaches for i in range(k - 1))


def _search(chain: Sequence[Constraint], positions: Optional[frozenset],
            require_standard_step: bool, node_budget: int) -> bool:
    """Core witness search shared by all four relations.

    ``chain`` is ``(alpha_1, ..., alpha_k)``: the first ``k-1``
    constraints execute one (oblivious or standard) step each and
    ``alpha_k`` must end up newly violated.
    """
    if not _relation_feasible(chain):
        return False
    renamed = [rename_apart(c, f"__c{i}") for i, c in enumerate(chain)]
    *step_constraints, final = renamed
    constants: List[Constant] = []
    for constraint in renamed:
        constants.extend(sorted(constraint.constants(),
                                key=lambda c: str(c.value)))
    ctx = _Ctx(constants, node_budget)
    first_binding_box: List[Optional[Dict[Variable, GroundTerm]]] = [None]

    def run_steps(index: int):
        if index == len(step_constraints):
            yield True
            return
        constraint = step_constraints[index]
        for binding in _open_hom(list(constraint.body), {}, ctx):
            if index == 0:
                first_binding_box[0] = dict(binding)
            if isinstance(constraint, TGD):
                record = _apply_oblivious_tgd(ctx, constraint, binding)
                # Sound prune: a step that adds nothing leaves J_skip
                # equal to J_{k-1}, where the final constraint must be
                # violated -- its skip condition can never hold.
                added_something = bool(set(record.head_atoms)
                                       - (record.saved_j or set()))
                try:
                    if added_something:
                        yield from run_steps(index + 1)
                finally:
                    _undo_step(ctx, record)
            else:
                assert isinstance(constraint, EGD)
                left = binding[constraint.lhs]
                right = binding[constraint.rhs]
                if left == right:
                    continue
                if isinstance(right, Null):
                    old, new = right, left
                elif isinstance(left, Null):
                    old, new = left, right
                else:
                    continue  # failing step: not a usable witness
                saved_i = set(ctx.i_facts)
                saved_j = set(ctx.j_facts)
                newly_removed = old not in ctx.removed_terms
                record = _StepRecord(constraint, dict(binding),
                                     _ground(constraint.body, binding), (), ())
                # EGD steps substitute in J only; I0 stays as built.
                ctx.j_facts = {a.substitute({old: new}) for a in ctx.j_facts}
                ctx.steps.append(record)
                ctx.removed_terms.add(old)
                try:
                    yield from run_steps(index + 1)
                finally:
                    ctx.steps.pop()
                    if newly_removed:
                        ctx.removed_terms.discard(old)
                    ctx.i_facts = saved_i
                    ctx.j_facts = saved_j

    def final_bindings():
        """Enumerate final-body homomorphisms.

        When the last step is a TGD, every witness's final body must
        use one of its added facts (removing the last step cannot
        cascade further); seeding the search with that match prunes the
        bulk of the final-stage space.
        """
        body = list(final.body)
        if not ctx.steps or not isinstance(ctx.steps[-1].constraint, TGD):
            yield from _open_hom(body, {}, ctx)
            return
        last = ctx.steps[-1]
        last_added = [a for a in last.head_atoms
                      if last.saved_j is None or a not in last.saved_j]
        for i, atom in enumerate(body):
            for fact in last_added:
                seeded = _match(atom, fact, {})
                if seeded is None:
                    continue
                rest = body[:i] + body[i + 1:]
                yield from _open_hom(rest, seeded, ctx)

    try:
        for _ in run_steps(0):
            for binding in final_bindings():
                if _final_conditions(ctx, final, binding, positions,
                                     renamed[0], first_binding_box[0],
                                     require_standard_step):
                    return True
    except _BudgetExhausted:
        warnings.warn(
            "precedence search budget exhausted for "
            f"{[c.display_name() for c in chain]}; returning the "
            "conservative answer True", RuntimeWarning, stacklevel=2)
        return True
    return False


class PrecedenceOracle:
    """Memoizing front-end for the four firing relations.

    Results are cached per constraint tuple; for the position-dependent
    relations the cache exploits monotonicity in ``P`` (a witness for
    ``P'`` also works for every ``P >= P'``, and a failure for ``P'``
    rules out every ``P <= P'``).
    """

    def __init__(self, node_budget: int = DEFAULT_NODE_BUDGET) -> None:
        self.node_budget = node_budget
        self._plain: Dict[tuple, bool] = {}
        self._positional: Dict[tuple, List[Tuple[frozenset, bool]]] = {}

    # -- Definition 2 ---------------------------------------------------
    def precedes(self, alpha: Constraint, beta: Constraint) -> bool:
        """``alpha < beta``: a standard alpha-step can newly violate
        beta (Definition 2)."""
        key = ("std", alpha, beta)
        if key not in self._plain:
            self._plain[key] = _search((alpha, beta), None, True,
                                       self.node_budget)
        return self._plain[key]

    # -- Definition 4 (corrected) ----------------------------------------
    def precedes_c(self, alpha: Constraint, beta: Constraint,
                   printed_variant: bool = False) -> bool:
        """``alpha <_c beta``: an *oblivious* alpha-step can newly
        violate beta.  ``printed_variant=True`` re-adds the (i)
        condition exactly as printed in the technical report (under
        which Example 7 does not check out; see docs/PAPER_MAP.md)."""
        key = ("c", alpha, beta, printed_variant)
        if key not in self._plain:
            self._plain[key] = _search((alpha, beta), None, printed_variant,
                                       self.node_budget)
        return self._plain[key]

    # -- Definition 10 ----------------------------------------------------
    def precedes_p(self, alpha: Constraint, beta: Constraint,
                   positions: Iterable[Position]) -> bool:
        """``alpha <_P beta`` (Definition 10)."""
        return self.precedes_k((alpha, beta), positions)

    # -- Definition 14 ----------------------------------------------------
    def precedes_k(self, chain: Sequence[Constraint],
                   positions: Iterable[Position]) -> bool:
        """``<_{k,P}(alpha_1, ..., alpha_k)`` (Definition 14)."""
        chain = tuple(chain)
        if len(chain) < 2:
            raise ValueError("the relation needs at least two constraints")
        pset = frozenset(positions)
        entries = self._positional.setdefault(chain, [])
        for cached_p, result in entries:
            if result and cached_p <= pset:
                return True
            if not result and cached_p >= pset:
                return False
        result = _search(chain, pset, False, self.node_budget)
        entries.append((pset, result))
        return result


#: module-level default oracle (shared cache across the library)
ORACLE = PrecedenceOracle()


def precedes(alpha: Constraint, beta: Constraint) -> bool:
    """Module-level convenience for :meth:`PrecedenceOracle.precedes`."""
    return ORACLE.precedes(alpha, beta)


def precedes_c(alpha: Constraint, beta: Constraint,
               printed_variant: bool = False) -> bool:
    """Module-level convenience for :meth:`PrecedenceOracle.precedes_c`."""
    return ORACLE.precedes_c(alpha, beta, printed_variant)


def precedes_p(alpha: Constraint, beta: Constraint,
               positions: Iterable[Position]) -> bool:
    """Module-level convenience for :meth:`PrecedenceOracle.precedes_p`."""
    return ORACLE.precedes_p(alpha, beta, positions)


def precedes_k(chain: Sequence[Constraint],
               positions: Iterable[Position]) -> bool:
    """Module-level convenience for :meth:`PrecedenceOracle.precedes_k`."""
    return ORACLE.precedes_k(chain, positions)
