"""Data-independent chase-termination conditions (Section 3)."""

from repro.termination.affected import affected_positions
from repro.termination.chase_graph import (c_chase_graph, chase_graph,
                                           nontrivial_sccs,
                                           topological_strata)
from repro.termination.cstratification import (is_c_stratified,
                                               non_weakly_acyclic_c_cycle)
from repro.termination.dependency_graph import (dependency_graph,
                                                has_special_cycle,
                                                position_ranks)
from repro.termination.hierarchy import check, in_t_level, sub, t_level
from repro.termination.precedence import (ORACLE, PrecedenceOracle, precedes,
                                          precedes_c, precedes_k, precedes_p)
from repro.termination.report import (analyze, analyze_cache_info,
                                      check_hierarchy_implications,
                                      clear_analyze_cache, CONDITIONS,
                                      constraint_set_fingerprint,
                                      HIERARCHY_IMPLICATIONS,
                                      TerminationReport)
from repro.termination.restriction import (aff_cl, is_inductively_restricted,
                                           is_safely_restricted,
                                           minimal_restriction_system, part,
                                           RestrictionSystem)
from repro.termination.safety import is_safe, propagation_graph, safety_witness
from repro.termination.stratification import (chase_strata, is_stratified,
                                              non_weakly_acyclic_cycle,
                                              stratified_strategy)
from repro.termination.weak_acyclicity import (is_weakly_acyclic,
                                               weak_acyclicity_witness)

__all__ = [
    "affected_positions", "c_chase_graph", "chase_graph", "nontrivial_sccs",
    "topological_strata", "is_c_stratified", "non_weakly_acyclic_c_cycle",
    "dependency_graph", "has_special_cycle", "position_ranks", "check",
    "in_t_level", "sub", "t_level", "ORACLE", "PrecedenceOracle", "precedes",
    "precedes_c", "precedes_k", "precedes_p", "analyze",
    "analyze_cache_info", "check_hierarchy_implications",
    "clear_analyze_cache", "CONDITIONS",
    "constraint_set_fingerprint", "HIERARCHY_IMPLICATIONS",
    "TerminationReport", "aff_cl", "is_inductively_restricted",
    "is_safely_restricted", "minimal_restriction_system", "part",
    "RestrictionSystem", "is_safe", "propagation_graph", "safety_witness",
    "is_stratified", "chase_strata", "non_weakly_acyclic_cycle",
    "stratified_strategy", "is_weakly_acyclic", "weak_acyclicity_witness",
]
