"""Affected positions (Definition 6, after Cali, Gottlob, Kifer [5]).

``aff(Sigma)`` over-estimates the positions in which a labeled null
introduced during the chase may occur.  Inductively, a head position
``pi`` of a TGD is affected if

* an existentially quantified variable appears at ``pi``, or
* a universally quantified variable appears at ``pi`` in the head and
  occurs in the body *only* at affected positions.

EGDs contribute nothing (they never create nulls; the equality
replacement can only shrink null occurrences).
"""

from __future__ import annotations

from typing import Iterable

from repro.lang.atoms import Position, occurrences
from repro.lang.constraints import Constraint, TGD


def affected_positions(sigma: Iterable[Constraint]) -> set[Position]:
    """The least fixpoint of Definition 6."""
    tgds = [c for c in sigma if isinstance(c, TGD)]
    affected: set[Position] = set()
    # Base case: existential positions.
    for tgd in tgds:
        for evar in tgd.existential_variables():
            affected |= occurrences(tgd.head, evar)
    # Inductive case, to fixpoint.
    changed = True
    while changed:
        changed = False
        for tgd in tgds:
            for var in tgd.frontier_variables():
                body_positions = occurrences(tgd.body, var)
                if not body_positions:
                    continue
                if body_positions <= affected:
                    new_positions = occurrences(tgd.head, var) - affected
                    if new_positions:
                        affected |= new_positions
                        changed = True
    return affected


def variable_only_in_affected(tgd: TGD, var, affected: set[Position]) -> bool:
    """Does ``var`` occur in the body of ``tgd`` only at affected
    positions?  (The guard used by the propagation graph and by the
    weak-guardedness test of Section 5.)"""
    body_positions = occurrences(tgd.body, var)
    return bool(body_positions) and body_positions <= affected
