"""Weak acyclicity (Definition 1, after Fagin et al. [21]).

A constraint set is weakly acyclic iff its dependency graph has no
cycle through a special edge.  The check is polynomial; it is both the
baseline condition of Figure 1 and the leaf test of stratification,
c-stratification and the ``check`` algorithm.
"""

from __future__ import annotations

from typing import Iterable

from repro.lang.constraints import Constraint
from repro.termination.dependency_graph import (dependency_graph,
                                                has_special_cycle)


def is_weakly_acyclic(sigma: Iterable[Constraint]) -> bool:
    """``Sigma`` is weakly acyclic iff ``dep(Sigma)`` has no cycle
    through a special edge."""
    return not has_special_cycle(dependency_graph(sigma))


def weak_acyclicity_witness(sigma: Iterable[Constraint]):
    """A special edge lying on a cycle, or None when weakly acyclic.

    Useful for error messages and for rendering the paper's Figure 3
    (the ``fly^2 ->* fly^2`` self-loop of Example 1).
    """
    import networkx as nx

    graph = dependency_graph(sigma)
    component_of = {}
    for i, component in enumerate(nx.strongly_connected_components(graph)):
        for node in component:
            component_of[node] = i
    for source, target, data in graph.edges(data=True):
        if data.get("special") and component_of[source] == component_of[target]:
            return (source, target)
    return None
