"""Chase graphs (Definitions 3 and 5) and their cycle analysis.

The chase graph ``G(Sigma)`` has the constraints as vertices and an
edge ``(alpha, beta)`` iff ``alpha < beta``; the c-chase graph
``G_c(Sigma)`` uses the oblivious relation ``<_c``.  Both
(c-)stratification and the Theorem 2 chase order are read off these
graphs.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence, Set

import networkx as nx

from repro.lang.constraints import Constraint
from repro.termination.precedence import ORACLE, PrecedenceOracle


def chase_graph(sigma: Iterable[Constraint],
                oracle: PrecedenceOracle = ORACLE) -> nx.DiGraph:
    """``G(Sigma)`` over the standard firing relation ``<`` (Def. 3)."""
    return _graph(sigma, oracle.precedes)


def c_chase_graph(sigma: Iterable[Constraint],
                  oracle: PrecedenceOracle = ORACLE,
                  printed_variant: bool = False) -> nx.DiGraph:
    """``G_c(Sigma)`` over the oblivious relation ``<_c`` (Def. 5)."""
    def relation(alpha: Constraint, beta: Constraint) -> bool:
        return oracle.precedes_c(alpha, beta, printed_variant=printed_variant)
    return _graph(sigma, relation)


def _graph(sigma: Iterable[Constraint],
           relation: Callable[[Constraint, Constraint], bool]) -> nx.DiGraph:
    constraints = list(sigma)
    graph = nx.DiGraph()
    graph.add_nodes_from(constraints)
    for alpha in constraints:
        for beta in constraints:
            if relation(alpha, beta):
                graph.add_edge(alpha, beta)
    return graph


def nontrivial_sccs(graph: nx.DiGraph) -> List[Set[Constraint]]:
    """Strongly connected components that contain at least one cycle
    (two or more vertices, or a vertex with a self-loop)."""
    out: List[Set[Constraint]] = []
    for component in nx.strongly_connected_components(graph):
        members = set(component)
        if len(members) > 1:
            out.append(members)
        else:
            (node,) = members
            if graph.has_edge(node, node):
                out.append(members)
    return out


def simple_cycles_of(graph: nx.DiGraph) -> Iterable[List[Constraint]]:
    """All simple cycles (delegates to networkx)."""
    return nx.simple_cycles(graph)


def topological_strata(graph: nx.DiGraph) -> List[List[Constraint]]:
    """The SCC quotient in topological order (Theorem 2's W'_1..W'_n).

    Every constraint appears in exactly one stratum; singleton SCCs
    without self-loops form their own strata.
    """
    condensation = nx.condensation(graph)
    order = nx.topological_sort(condensation)
    return [sorted(condensation.nodes[scc_id]["members"],
                   key=lambda c: c.display_name())
            for scc_id in order]
