"""C-stratification (Section 3.3, Definitions 4 and 5): the paper's
correction of stratification.

``Sigma`` is *c-stratified* iff the constraints in every cycle of the
c-chase graph ``G_c(Sigma)`` (built over the oblivious firing relation
``<_c``) are weakly acyclic.  Unlike plain stratification this bounds
**every** chase sequence polynomially in ``|dom(I)|`` (Theorem 3).

Example 4/7: the set {R(x)->S(x,x); S(x,y)->exists z T(y,z);
S(x,y)->T(x,y),T(y,x); T(x,y),T(x,z),T(z,x)->R(y)} is stratified but
not c-stratified -- the oblivious relation gives alpha_2 the successor
it was missing, closing a non-weakly-acyclic cycle.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import networkx as nx

from repro.lang.constraints import Constraint
from repro.termination.chase_graph import c_chase_graph, nontrivial_sccs
from repro.termination.precedence import ORACLE, PrecedenceOracle
from repro.termination.weak_acyclicity import is_weakly_acyclic


def is_c_stratified(sigma: Iterable[Constraint],
                    oracle: PrecedenceOracle = ORACLE,
                    scc_semantics: bool = False,
                    printed_variant: bool = False) -> bool:
    """Definition 5 over the corrected ``<_c``.

    ``printed_variant=True`` uses Definition 4 exactly as printed in
    the technical report (retaining its condition (i)); see
    docs/PAPER_MAP.md ("Deviations and interpretation points") for why
    the corrected relation is the reproducible one.
    """
    graph = c_chase_graph(sigma, oracle, printed_variant=printed_variant)
    for component in nontrivial_sccs(graph):
        if is_weakly_acyclic(component):
            continue
        if scc_semantics:
            return False
        subgraph = graph.subgraph(component)
        for cycle in nx.simple_cycles(subgraph):
            if not is_weakly_acyclic(cycle):
                return False
    return True


def non_weakly_acyclic_c_cycle(sigma: Iterable[Constraint],
                               oracle: PrecedenceOracle = ORACLE
                               ) -> Optional[List[Constraint]]:
    """A cycle of ``G_c(Sigma)`` that is not weakly acyclic (witnessing
    non-c-stratification), or None."""
    graph = c_chase_graph(sigma, oracle)
    for component in nontrivial_sccs(graph):
        if is_weakly_acyclic(component):
            continue
        subgraph = graph.subgraph(component)
        for cycle in nx.simple_cycles(subgraph):
            if not is_weakly_acyclic(cycle):
                return list(cycle)
    return None
