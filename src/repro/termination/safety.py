"""Safety (Section 3.4, Definitions 7 and 8) -- the paper's first novel
termination condition.

The *propagation graph* ``prop(Sigma)`` restricts the dependency graph
to the flow of labeled nulls: its vertices are the affected positions,
and edges originate only from body variables that occur *exclusively*
at affected positions (only those can carry a null at runtime).  A set
is **safe** iff ``prop(Sigma)`` has no cycle through a special edge.

Theorem 4: ``prop(Sigma)`` is a subgraph of ``dep(Sigma)``; weak
acyclicity implies safety; safety and (c-)stratification are
incomparable.  Theorem 5: safety bounds every chase sequence
polynomially in ``|dom(I)|``.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from repro.lang.atoms import Position, occurrences
from repro.lang.constraints import Constraint, TGD
from repro.termination.affected import affected_positions
from repro.termination.dependency_graph import (SPECIAL, _add_edge,
                                                has_special_cycle)


def propagation_graph(sigma: Iterable[Constraint]) -> nx.DiGraph:
    """Build ``prop(Sigma)`` (Definition 7).

    Note the vertex set is ``aff(Sigma)``: edges whose endpoint is not
    affected cannot exist because (a) sources are restricted to
    positions of variables occurring only at affected positions and
    (b) targets of special edges are existential positions (affected by
    definition) while targets of normal edges inherit affectedness from
    their source variable (Definition 6's inductive case).
    """
    sigma = list(sigma)
    affected = affected_positions(sigma)
    graph = nx.DiGraph()
    graph.add_nodes_from(affected)
    for tgd in (c for c in sigma if isinstance(c, TGD)):
        special_targets: set[Position] = set()
        for evar in tgd.existential_variables():
            special_targets |= occurrences(tgd.head, evar)
        for var in tgd.frontier_variables():
            body_positions = occurrences(tgd.body, var)
            if not body_positions or not body_positions <= affected:
                continue  # var can never carry a null
            head_positions = occurrences(tgd.head, var)
            for pi1 in body_positions:
                for pi2 in head_positions:
                    if pi2 in affected:
                        _add_edge(graph, pi1, pi2, special=False)
                for pi2 in special_targets:
                    _add_edge(graph, pi1, pi2, special=True)
    return graph


def is_safe(sigma: Iterable[Constraint]) -> bool:
    """Definition 8: no cycle through a special edge in ``prop``."""
    return not has_special_cycle(propagation_graph(sigma))


def safety_witness(sigma: Iterable[Constraint]):
    """A special edge on a cycle of ``prop(Sigma)``, or None if safe."""
    graph = propagation_graph(sigma)
    component_of = {}
    for i, component in enumerate(nx.strongly_connected_components(graph)):
        for node in component:
            component_of[node] = i
    for source, target, data in graph.edges(data=True):
        if data.get(SPECIAL) and component_of[source] == component_of[target]:
            return (source, target)
    return None
