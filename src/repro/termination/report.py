"""One-stop classification of a constraint set across every
termination condition of Figure 1, plus a recommended chase policy.

Reports are value objects: two reports over equal constraint sets
(same constraints, same probe depth) compare and hash equal, and every
report carries a stable content :meth:`~TerminationReport.fingerprint`
derived from the canonical rendering of its constraint set.  On top of
that, :func:`analyze` memoizes its classification per (constraint set,
``max_k``, oracle) -- the Figure 1 sweep is pure, so repeated analyses
of the same set (the common case in the batch service, where many jobs
share one schema's constraints) cost one dictionary lookup.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.lang.constraints import Constraint
from repro.termination.cstratification import is_c_stratified
from repro.termination.hierarchy import t_level
from repro.termination.precedence import ORACLE, PrecedenceOracle
from repro.termination.restriction import (is_inductively_restricted,
                                           is_safely_restricted)
from repro.termination.safety import is_safe
from repro.termination.stratification import (chase_strata, is_stratified)
from repro.termination.weak_acyclicity import is_weakly_acyclic

#: column order used by renderers and the Figure 1 benchmark
CONDITIONS = ("weakly_acyclic", "safe", "c_stratified", "stratified",
              "safely_restricted", "inductively_restricted")


def constraint_set_fingerprint(sigma: Iterable[Constraint]) -> str:
    """A stable hex digest of a constraint set's *content*.

    The digest is computed over the sorted canonical renderings of the
    constraints (see :func:`repro.lang.parser.render_constraints`), so
    it is independent of constraint order and of labels' presence --
    two textually different files describing the same set of TGDs/EGDs
    fingerprint identically.  Used as the cache key for memoized
    termination reports (here and in :mod:`repro.service.cache`).
    """
    from repro.lang.parser import _render_constraint_body
    lines = sorted(_render_constraint_body(c) for c in sigma)
    digest = hashlib.sha256("\n".join(lines).encode("utf-8"))
    return digest.hexdigest()


@dataclass(frozen=True)
class TerminationReport:
    """Membership of one constraint set in each Figure 1 class.

    Frozen value object: equality and hashing range over the
    constraint set and every verdict, so reports can key caches
    directly (the batch service memoizes analyses this way).
    """

    sigma: Tuple[Constraint, ...]
    weakly_acyclic: bool
    safe: bool
    stratified: bool
    c_stratified: bool
    safely_restricted: bool
    inductively_restricted: bool
    t_hierarchy_level: Optional[int]
    max_k_probed: int

    def fingerprint(self) -> str:
        """Content fingerprint of the analyzed constraint set plus the
        probe depth (deeper probes can refine the T-hierarchy verdict,
        so reports at different ``max_k`` must not collide)."""
        return (f"{constraint_set_fingerprint(self.sigma)}"
                f":k{self.max_k_probed}")

    @property
    def guarantees_all_sequences(self) -> bool:
        """Does some checked condition bound *every* chase sequence?

        Stratification alone does not (Example 4); every other class in
        Figure 1 does (Theorems 3, 5, 6, 7).
        """
        return (self.weakly_acyclic or self.safe or self.c_stratified
                or self.inductively_restricted
                or self.t_hierarchy_level is not None)

    @property
    def guarantees_some_sequence(self) -> bool:
        """Does some condition guarantee at least one terminating
        sequence (Theorem 1)?"""
        return self.guarantees_all_sequences or self.stratified

    def recommended_strategy(self):
        """A chase strategy that is guaranteed to terminate, if any.

        For sets that are only stratified, Theorem 2's stratum order is
        required; for the stronger classes any order works and we
        return None (use the default round-robin).
        """
        if self.guarantees_all_sequences:
            return None
        if self.stratified:
            from repro.termination.stratification import stratified_strategy
            return stratified_strategy(self.sigma)
        return None

    def as_row(self) -> dict:
        """The per-condition verdicts as a flat dict (benchmark tables)."""
        row = {name: getattr(self, name) for name in CONDITIONS}
        row["t_level"] = self.t_hierarchy_level
        return row

    def render(self) -> str:
        """A multi-line textual report of every termination condition
        (the Figure 1 hierarchy, one verdict per line)."""
        lines = ["termination analysis "
                 f"({len(list(self.sigma))} constraints):"]
        for name in CONDITIONS:
            lines.append(f"  {name:<24}: {getattr(self, name)}")
        level = (f"T[{self.t_hierarchy_level}]"
                 if self.t_hierarchy_level is not None
                 else f"not in T[2..{self.max_k_probed}]")
        lines.append(f"  {'t_hierarchy':<24}: {level}")
        lines.append(f"  every sequence bounded   : "
                     f"{self.guarantees_all_sequences}")
        lines.append(f"  some sequence terminates : "
                     f"{self.guarantees_some_sequence}")
        return "\n".join(lines)


def analyze(sigma: Iterable[Constraint], max_k: int = 3,
            oracle: PrecedenceOracle = ORACLE) -> TerminationReport:
    """Classify ``sigma`` against every condition of Figure 1.

    ``max_k`` bounds the T-hierarchy probe (each level costs an
    |Sigma|^k sweep of chain queries).

    The classification is pure, so results are memoized per
    (constraint tuple, ``max_k``, oracle): re-analyzing a constraint
    set already seen is O(1).  Use :func:`clear_analyze_cache` to drop
    the memo (tests; long-lived processes analyzing unbounded numbers
    of distinct sets should size their own cache, see
    :mod:`repro.service.cache`).
    """
    return _analyze_cached(tuple(sigma), max_k, oracle)


@lru_cache(maxsize=256)
def _analyze_cached(sigma: Tuple[Constraint, ...], max_k: int,
                    oracle: PrecedenceOracle) -> TerminationReport:
    return TerminationReport(
        sigma=sigma,
        weakly_acyclic=is_weakly_acyclic(sigma),
        safe=is_safe(sigma),
        stratified=is_stratified(sigma, oracle),
        c_stratified=is_c_stratified(sigma, oracle),
        safely_restricted=is_safely_restricted(sigma, oracle),
        inductively_restricted=is_inductively_restricted(sigma, oracle),
        t_hierarchy_level=t_level(sigma, max_k, oracle),
        max_k_probed=max_k,
    )


# ----------------------------------------------------------------------
# Figure 1 as checkable data: the hierarchy's implications
# ----------------------------------------------------------------------
#: Every inclusion of Figure 1 (plus the T-hierarchy's internal
#: monotonicity), as (antecedent, consequent) pairs over membership
#: verdict names.  ``t2``/``t3`` are T-hierarchy levels; note
#: ``inductively_restricted <=> t2`` (Definition 16: T[2] equals
#: inductive restriction), hence the pair appears in both directions.
#: The adversarial fuzzer (:mod:`repro.fuzz.oracles`) checks these on
#: every generated constraint set.
HIERARCHY_IMPLICATIONS: Tuple[Tuple[str, str], ...] = (
    ("weakly_acyclic", "safe"),                     # Theorem 5 region
    ("weakly_acyclic", "c_stratified"),             # Section 3.3
    ("c_stratified", "stratified"),                 # Definitions 3/5
    ("safe", "safely_restricted"),                  # Theorem 6 region
    ("c_stratified", "safely_restricted"),          # Theorem 6 region
    ("safely_restricted", "inductively_restricted"),  # Section 3.5
    ("inductively_restricted", "t2"),               # Definition 16
    ("t2", "inductively_restricted"),               # Definition 16
    ("t2", "t3"),                                   # T[k] subseteq T[k+1]
)


def check_hierarchy_implications(verdicts: dict) -> List[str]:
    """Violated Figure 1 implications among the given verdicts.

    ``verdicts`` maps membership names (see
    :data:`HIERARCHY_IMPLICATIONS`) to booleans; pairs whose names are
    absent are skipped, so callers may probe any subset (the fuzzer
    samples the expensive ``safely_restricted``/``t2``/``t3`` probes).
    Returns human-readable descriptions of every violated implication
    -- an empty list on a hierarchy-consistent classification.
    """
    violated: List[str] = []
    for antecedent, consequent in HIERARCHY_IMPLICATIONS:
        if antecedent not in verdicts or consequent not in verdicts:
            continue
        if verdicts[antecedent] and not verdicts[consequent]:
            violated.append(f"{antecedent} holds but {consequent} "
                            "does not (Figure 1 inclusion broken)")
    return violated


def clear_analyze_cache() -> None:
    """Drop every memoized :func:`analyze` result."""
    _analyze_cached.cache_clear()


def analyze_cache_info():
    """The memo's ``functools.lru_cache`` statistics (hits/misses)."""
    return _analyze_cached.cache_info()
