"""One-stop classification of a constraint set across every
termination condition of Figure 1, plus a recommended chase policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.lang.constraints import Constraint
from repro.termination.cstratification import is_c_stratified
from repro.termination.hierarchy import t_level
from repro.termination.precedence import ORACLE, PrecedenceOracle
from repro.termination.restriction import (is_inductively_restricted,
                                           is_safely_restricted)
from repro.termination.safety import is_safe
from repro.termination.stratification import (chase_strata, is_stratified)
from repro.termination.weak_acyclicity import is_weakly_acyclic

#: column order used by renderers and the Figure 1 benchmark
CONDITIONS = ("weakly_acyclic", "safe", "c_stratified", "stratified",
              "safely_restricted", "inductively_restricted")


@dataclass
class TerminationReport:
    """Membership of one constraint set in each Figure 1 class."""

    sigma: Sequence[Constraint]
    weakly_acyclic: bool
    safe: bool
    stratified: bool
    c_stratified: bool
    safely_restricted: bool
    inductively_restricted: bool
    t_hierarchy_level: Optional[int]
    max_k_probed: int

    @property
    def guarantees_all_sequences(self) -> bool:
        """Does some checked condition bound *every* chase sequence?

        Stratification alone does not (Example 4); every other class in
        Figure 1 does (Theorems 3, 5, 6, 7).
        """
        return (self.weakly_acyclic or self.safe or self.c_stratified
                or self.inductively_restricted
                or self.t_hierarchy_level is not None)

    @property
    def guarantees_some_sequence(self) -> bool:
        """Does some condition guarantee at least one terminating
        sequence (Theorem 1)?"""
        return self.guarantees_all_sequences or self.stratified

    def recommended_strategy(self):
        """A chase strategy that is guaranteed to terminate, if any.

        For sets that are only stratified, Theorem 2's stratum order is
        required; for the stronger classes any order works and we
        return None (use the default round-robin).
        """
        if self.guarantees_all_sequences:
            return None
        if self.stratified:
            from repro.termination.stratification import stratified_strategy
            return stratified_strategy(self.sigma)
        return None

    def as_row(self) -> dict:
        """The per-condition verdicts as a flat dict (benchmark tables)."""
        row = {name: getattr(self, name) for name in CONDITIONS}
        row["t_level"] = self.t_hierarchy_level
        return row

    def render(self) -> str:
        """A multi-line textual report of every termination condition
        (the Figure 1 hierarchy, one verdict per line)."""
        lines = ["termination analysis "
                 f"({len(list(self.sigma))} constraints):"]
        for name in CONDITIONS:
            lines.append(f"  {name:<24}: {getattr(self, name)}")
        level = (f"T[{self.t_hierarchy_level}]"
                 if self.t_hierarchy_level is not None
                 else f"not in T[2..{self.max_k_probed}]")
        lines.append(f"  {'t_hierarchy':<24}: {level}")
        lines.append(f"  every sequence bounded   : "
                     f"{self.guarantees_all_sequences}")
        lines.append(f"  some sequence terminates : "
                     f"{self.guarantees_some_sequence}")
        return "\n".join(lines)


def analyze(sigma: Iterable[Constraint], max_k: int = 3,
            oracle: PrecedenceOracle = ORACLE) -> TerminationReport:
    """Classify ``sigma`` against every condition of Figure 1.

    ``max_k`` bounds the T-hierarchy probe (each level costs an
    |Sigma|^k sweep of chain queries).
    """
    sigma = list(sigma)
    return TerminationReport(
        sigma=sigma,
        weakly_acyclic=is_weakly_acyclic(sigma),
        safe=is_safe(sigma),
        stratified=is_stratified(sigma, oracle),
        c_stratified=is_c_stratified(sigma, oracle),
        safely_restricted=is_safely_restricted(sigma, oracle),
        inductively_restricted=is_inductively_restricted(sigma, oracle),
        t_hierarchy_level=t_level(sigma, max_k, oracle),
        max_k_probed=max_k,
    )
