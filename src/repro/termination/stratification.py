"""Stratification (Definition 3, after Deutsch, Nash, Remmel [9]) and
the paper's correction of its guarantee (Theorems 1 and 2).

``Sigma`` is *stratified* iff the constraints in every cycle of the
chase graph ``G(Sigma)`` are weakly acyclic.  The paper's Example 4
shows this does **not** bound every chase sequence (contrary to the
claim in [9]); Theorems 1 and 2 salvage the condition: some chase
sequence terminates, and it can be constructed from the chase graph by
chasing the strongly connected components in topological order.

Cycle semantics: weak acyclicity is closed under subsets, so a weakly
acyclic SCC certifies every cycle it contains; only when an SCC fails
weak acyclicity do we enumerate its simple cycles individually.  The
stricter SCC-level variant is available via ``scc_semantics=True``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import networkx as nx

from repro.chase.strategies import StratifiedStrategy
from repro.lang.constraints import Constraint
from repro.termination.chase_graph import (chase_graph, nontrivial_sccs,
                                           topological_strata)
from repro.termination.precedence import ORACLE, PrecedenceOracle
from repro.termination.weak_acyclicity import is_weakly_acyclic


def _cycles_weakly_acyclic(graph: nx.DiGraph, scc_semantics: bool) -> bool:
    for component in nontrivial_sccs(graph):
        if is_weakly_acyclic(component):
            continue  # all cycles inside are subsets, hence WA too
        if scc_semantics:
            return False
        subgraph = graph.subgraph(component)
        for cycle in nx.simple_cycles(subgraph):
            if not is_weakly_acyclic(cycle):
                return False
    return True


def is_stratified(sigma: Iterable[Constraint],
                  oracle: PrecedenceOracle = ORACLE,
                  scc_semantics: bool = False) -> bool:
    """Definition 3.  Guarantees (only) that *some* chase sequence
    terminates -- see Theorem 1 and Example 4."""
    return _cycles_weakly_acyclic(chase_graph(sigma, oracle), scc_semantics)


def chase_strata(sigma: Iterable[Constraint],
                 oracle: PrecedenceOracle = ORACLE
                 ) -> List[List[Constraint]]:
    """Theorem 2's effective construction: the SCCs of ``G(Sigma)`` in
    topological order.  Chasing stratum by stratum yields a terminating
    sequence whenever each stratum's chase terminates
    data-independently (in particular for stratified ``Sigma``)."""
    return topological_strata(chase_graph(sigma, oracle))


def stratified_strategy(sigma: Iterable[Constraint],
                        oracle: PrecedenceOracle = ORACLE,
                        verify: bool = False) -> StratifiedStrategy:
    """A ready-to-use chase strategy implementing Theorem 2."""
    return StratifiedStrategy(chase_strata(sigma, oracle), verify=verify)


def non_weakly_acyclic_cycle(sigma: Iterable[Constraint],
                             oracle: PrecedenceOracle = ORACLE
                             ) -> Optional[List[Constraint]]:
    """A witness cycle whose constraints are not weakly acyclic, or
    None when the set is stratified."""
    graph = chase_graph(sigma, oracle)
    for component in nontrivial_sccs(graph):
        if is_weakly_acyclic(component):
            continue
        subgraph = graph.subgraph(component)
        for cycle in nx.simple_cycles(subgraph):
            if not is_weakly_acyclic(cycle):
                return list(cycle)
    return None
