"""The dependency graph of a constraint set (Definition 1, after [21]).

Vertices are the positions occurring in some TGD of ``Sigma``.  For
every TGD ``forall x (phi -> exists y psi)``, every universal variable
``x`` occurring in the head, and every body occurrence of ``x`` at
position ``pi1``:

* a *normal* edge ``pi1 -> pi2`` for every head occurrence of ``x`` at
  ``pi2`` (data may be copied along it), and
* a *special* edge ``pi1 ->* pi2`` for every existential variable
  occurrence at head position ``pi2`` (a fresh null may be created).

EGDs contribute no edges.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from repro.lang.atoms import Position, occurrences
from repro.lang.constraints import Constraint, TGD

#: edge attribute marking special (null-creating) edges
SPECIAL = "special"


def dependency_graph(sigma: Iterable[Constraint]) -> nx.DiGraph:
    """Build ``dep(Sigma)`` as a networkx digraph.

    Edge attribute ``special`` is True for special edges.  When both a
    normal and a special edge connect the same pair of positions, the
    edge is marked special (only special edges matter for cycles, and a
    parallel normal edge cannot remove one).  A dedicated
    ``normal_too`` attribute records that both kinds exist, so the
    exact edge multiset of the paper's figures can be recovered.
    """
    graph = nx.DiGraph()
    tgds = [c for c in sigma if isinstance(c, TGD)]
    for tgd in tgds:
        for atoms in (tgd.body, tgd.head):
            for atom in atoms:
                for position in atom.positions():
                    graph.add_node(position)
        existential = tgd.existential_variables()
        special_targets: set[Position] = set()
        for evar in existential:
            special_targets |= occurrences(tgd.head, evar)
        for var in tgd.frontier_variables():
            body_positions = occurrences(tgd.body, var)
            head_positions = occurrences(tgd.head, var)
            for pi1 in body_positions:
                for pi2 in head_positions:
                    _add_edge(graph, pi1, pi2, special=False)
                for pi2 in special_targets:
                    _add_edge(graph, pi1, pi2, special=True)
    return graph


def _add_edge(graph: nx.DiGraph, source: Position, target: Position,
              special: bool) -> None:
    if graph.has_edge(source, target):
        data = graph.edges[source, target]
        if special and not data[SPECIAL]:
            data[SPECIAL] = True
            data["normal_too"] = True
        elif not special and data[SPECIAL]:
            data["normal_too"] = True
        return
    graph.add_edge(source, target, **{SPECIAL: special, "normal_too": False})


def has_special_cycle(graph: nx.DiGraph) -> bool:
    """Does the graph contain a cycle going through a special edge?

    A special edge lies on a cycle iff its endpoints belong to the same
    strongly connected component.
    """
    component_of: dict[Position, int] = {}
    for i, component in enumerate(nx.strongly_connected_components(graph)):
        for node in component:
            component_of[node] = i
    for source, target, data in graph.edges(data=True):
        if data.get(SPECIAL) and component_of[source] == component_of[target]:
            return True
    return False


def special_edges(graph: nx.DiGraph) -> set[tuple[Position, Position]]:
    """The graph's special edges (existential propagation, Section 3.1)."""
    return {(u, v) for u, v, data in graph.edges(data=True)
            if data.get(SPECIAL)}


def position_ranks(graph: nx.DiGraph) -> dict[Position, int]:
    """``rank(pi)``: the maximum number of special edges on any incoming
    path (finite iff no cycle through a special edge; used in the proof
    of Theorem 5 and handy for diagnostics).

    Raises ``ValueError`` when a special cycle makes ranks infinite.
    """
    if has_special_cycle(graph):
        raise ValueError("ranks are infinite: cycle through a special edge")
    condensation = nx.condensation(graph)
    order = list(nx.topological_sort(condensation))
    ranks: dict[Position, int] = {node: 0 for node in graph.nodes}
    for scc_id in order:
        members = condensation.nodes[scc_id]["members"]
        # Propagate within the graph in topological order of SCCs;
        # inside an SCC all edges are normal (no special cycles), so
        # members share the same rank contribution from outside.
        changed = True
        while changed:
            changed = False
            for node in members:
                for pred in graph.predecessors(node):
                    weight = 1 if graph.edges[pred, node][SPECIAL] else 0
                    candidate = ranks[pred] + weight
                    if candidate > ranks[node]:
                        ranks[node] = candidate
                        changed = True
    return ranks
