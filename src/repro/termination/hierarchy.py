"""The T-hierarchy (Section 3.6, Definition 16) and the membership
algorithm ``check``/``sub`` of Figure 8 (Section 3.7).

``Sigma in T[k]`` iff for some ``k' in {2..k}`` every subset produced
by ``part(Sigma, k')`` is safe.  T[2] equals inductive restriction;
every level is contained in the next, the inclusions are strict
(Example 15's family ``Sigma_m in T[m+1] \\ T[m]``), and each level
guarantees polynomial-time chase termination (Theorem 7).

``check`` (Figure 8) decides the same membership while dodging
expensive k-restriction-system computations wherever the polynomial
safety test already certifies a subset -- the paper's answer to the
coNP recognition cost (Section 3.7).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List

from repro.lang.constraints import Constraint
from repro.termination.precedence import ORACLE, PrecedenceOracle
from repro.termination.restriction import (minimal_restriction_system, part)
from repro.termination.safety import is_safe


def in_t_level(sigma: Iterable[Constraint], k: int,
               oracle: PrecedenceOracle = ORACLE) -> bool:
    """Literal Definition 16: ``Sigma in T[k]``?"""
    if k < 2:
        raise ValueError("the T-hierarchy starts at level 2")
    sigma_set = frozenset(sigma)
    for k_prime in range(2, k + 1):
        subsets = part(sigma_set, k_prime, oracle)
        if all(is_safe(subset) for subset in subsets):
            return True
    return False


def t_level(sigma: Iterable[Constraint], max_k: int = 4,
            oracle: PrecedenceOracle = ORACLE) -> int | None:
    """The least level ``k <= max_k`` with ``Sigma in T[k]``, or None.

    Since ``T[k] subseteq T[k+1]`` the search stops at the first hit.
    """
    sigma_set = frozenset(sigma)
    for k in range(2, max_k + 1):
        if all(is_safe(subset) for subset in part(sigma_set, k, oracle)):
            return k
    return None


def sub(sigma: FrozenSet[Constraint], k: int,
        oracle: PrecedenceOracle = ORACLE) -> bool:
    """Figure 8's ``sub(Sigma, k)``.

    Safety is checked first (polynomial); only if it fails is the
    minimal k-restriction system computed and the cyclic components
    recursed into via ``check``.
    """
    if is_safe(sigma):
        return True
    system = minimal_restriction_system(sigma, k, oracle)
    components: List[FrozenSet[Constraint]] = [
        frozenset(c) for c in system.cyclic_components()]
    if len(components) == 0:
        return True
    if len(components) == 1:
        (component,) = components
        if component != sigma:
            return check(component, k, oracle)
        return False
    return all(check(component, k, oracle) for component in components)


def check(sigma: Iterable[Constraint], k: int,
          oracle: PrecedenceOracle = ORACLE) -> bool:
    """Figure 8's ``check(Sigma, k)``: decides ``Sigma in T[k]``
    (Proposition 6) using the safety fast-path of ``sub``."""
    if k < 2:
        raise ValueError("the T-hierarchy starts at level 2")
    sigma_set = frozenset(sigma)
    for i in range(k, 1, -1):
        if sub(sigma_set, i, oracle):
            return True
    return False
