"""Restriction systems (Definitions 11, 12, 15), the ``part``
algorithm (Figure 7), and the classes *safe restriction* [18] and
**inductive restriction** (Definition 13, Section 3.5).

A k-restriction system is a pair ``(G'(Sigma), f)`` of a constraint
graph and a set of positions, closed under

* *edge generation*: ``<_{k,f}(alpha_1..alpha_k)`` forces the edges
  ``(alpha_1,alpha_2), ..., (alpha_{k-1},alpha_k)``, and
* *position closure*: endpoints of edges push their ``aff-cl`` head
  positions into ``f``.

The minimal system is the least fixpoint, unique because both
operators are monotone (``<_{k,P}`` is monotone in ``P``).

For k = 2 we follow Definition 12 exactly: both endpoints of every
edge are closed and the closure is intersected with ``pos(Sigma)``
(body positions).  For k >= 3 Definition 15 closes only edge sources
and omits the intersection; both choices are kept as written, and the
k = 2 instance coincides with inductive restriction (Proposition 5a).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

import networkx as nx

from repro.lang.atoms import Position, occurrences
from repro.lang.constraints import (Constraint, constraint_set_positions,
                                    TGD)
from repro.termination.chase_graph import nontrivial_sccs
from repro.termination.precedence import ORACLE, PrecedenceOracle
from repro.termination.safety import is_safe


def aff_cl(constraint: Constraint, positions: Set[Position]
           ) -> Set[Position]:
    """Definition 11: head positions of a TGD that may receive a null
    when nulls can only sit at ``positions`` in the body.

    A head position qualifies if it holds an existentially quantified
    variable, or if every universally quantified variable occurring at
    it occurs in the body only at positions from ``positions``.
    EGDs have no head positions: their closure is empty.
    """
    if not isinstance(constraint, TGD):
        return set()
    existential = constraint.existential_variables()
    universal = constraint.universal_variables()
    result: Set[Position] = set()
    head_positions: Dict[Position, Set] = {}
    for atom in constraint.head:
        for index, arg in enumerate(atom.args):
            head_positions.setdefault(Position(atom.relation, index + 1),
                                      set()).add(arg)
    for position, terms in head_positions.items():
        term_vars = {t for t in terms if t in existential or t in universal}
        if term_vars & existential:
            result.add(position)
            continue
        universal_here = term_vars & universal
        if universal_here and all(
                occurrences(constraint.body, var) <= positions
                for var in universal_here):
            result.add(position)
    return result


@dataclass(frozen=True)
class RestrictionSystem:
    """A computed minimal k-restriction system."""

    k: int
    graph: nx.DiGraph
    positions: FrozenSet[Position]

    def edges(self) -> Set[Tuple[Constraint, Constraint]]:
        """The restriction system's constraint-to-constraint edges
        (Definition 11's binary relation)."""
        return set(self.graph.edges())

    def cyclic_components(self) -> List[Set[Constraint]]:
        """Strongly connected components containing a cycle."""
        return nontrivial_sccs(self.graph)


def minimal_restriction_system(sigma: Iterable[Constraint], k: int = 2,
                               oracle: PrecedenceOracle = ORACLE
                               ) -> RestrictionSystem:
    """Least-fixpoint computation of the minimal k-restriction system."""
    if k < 2:
        raise ValueError("restriction systems need k >= 2")
    constraints = list(sigma)
    body_positions = constraint_set_positions(constraints)
    graph = nx.DiGraph()
    graph.add_nodes_from(constraints)
    f: Set[Position] = set()
    changed = True
    while changed:
        changed = False
        # Edge generation from the firing chains.
        for chain in product(constraints, repeat=k):
            consecutive = list(zip(chain, chain[1:]))
            if all(graph.has_edge(a, b) for a, b in consecutive):
                continue  # nothing new to learn from this tuple
            if oracle.precedes_k(chain, f):
                for a, b in consecutive:
                    if not graph.has_edge(a, b):
                        graph.add_edge(a, b)
                        changed = True
        # Position closure along edges.
        for alpha, beta in list(graph.edges()):
            if k == 2:
                closure = aff_cl(alpha, f) | aff_cl(beta, f)
                closure &= body_positions
            else:
                closure = aff_cl(alpha, f)
            if not closure <= f:
                f |= closure
                changed = True
    return RestrictionSystem(k=k, graph=graph, positions=frozenset(f))


@dataclass(frozen=True)
class FlowRestrictionSystem:
    """A per-constraint variant of the 2-restriction system.

    This is the refinement the paper actually *uses* in the Section 3.7
    walkthrough (``f(alpha_1) = f(alpha_2) = {E1,E2,S1}, f(alpha_3) =
    empty, ...``) and in Example 19 / Definition 22: ``f(beta)``
    collects the head closures of ``beta``'s predecessors,

        ``f(beta) = union over edges (alpha, beta) of
        aff-cl(alpha, f(alpha))``,

    with the edge test ``alpha <_{f(alpha)} beta``.  It is finer than
    the global Definition 12 fixpoint (whose literal both-endpoint
    closure grows ``f`` past the paper's own Example 19 values; see
    docs/PAPER_MAP.md) and satisfies ``f(alpha) subseteq aff(Sigma)`` (the
    containment behind Lemma 7's WG => RG direction).
    """

    graph: nx.DiGraph
    positions: Dict[Constraint, FrozenSet[Position]]

    def positions_of(self, constraint: Constraint) -> FrozenSet[Position]:
        """``f(alpha)``: the flow-restricted position set of ``alpha``."""
        return self.positions.get(constraint, frozenset())


def flow_restriction_system(sigma: Iterable[Constraint],
                            oracle: PrecedenceOracle = ORACLE
                            ) -> FlowRestrictionSystem:
    """Least fixpoint of the per-constraint flow system (see
    :class:`FlowRestrictionSystem`)."""
    constraints = list(sigma)
    graph = nx.DiGraph()
    graph.add_nodes_from(constraints)
    f: Dict[Constraint, Set[Position]] = {c: set() for c in constraints}
    changed = True
    while changed:
        changed = False
        for alpha in constraints:
            for beta in constraints:
                if graph.has_edge(alpha, beta):
                    continue
                if oracle.precedes_p(alpha, beta, f[alpha]):
                    graph.add_edge(alpha, beta)
                    changed = True
        for alpha, beta in graph.edges():
            closure = aff_cl(alpha, f[alpha])
            if not closure <= f[beta]:
                f[beta] |= closure
                changed = True
    return FlowRestrictionSystem(
        graph=graph,
        positions={c: frozenset(p) for c, p in f.items()})


def part(sigma: Iterable[Constraint], k: int = 2,
         oracle: PrecedenceOracle = ORACLE) -> List[FrozenSet[Constraint]]:
    """Figure 7's ``part(Sigma, k)``: recursively decompose the
    constraint set along the cyclic components of its minimal
    k-restriction system.  Returns the irreducible cyclic subsets; an
    empty list means the decomposition dissolved every cycle."""
    sigma_set = frozenset(sigma)
    system = minimal_restriction_system(sigma_set, k, oracle)
    components = [frozenset(c) for c in system.cyclic_components()]
    if len(components) == 0:
        return []
    if len(components) == 1:
        (component,) = components
        if component != sigma_set:
            return part(component, k, oracle)
        return [sigma_set]
    result: List[FrozenSet[Constraint]] = []
    for component in components:
        result.extend(part(component, k, oracle))
    return result


def is_safely_restricted(sigma: Iterable[Constraint],
                         oracle: PrecedenceOracle = ORACLE) -> bool:
    """The intermediate class of [18]: every cyclic component of the
    minimal 2-restriction system is safe (no recursion)."""
    system = minimal_restriction_system(sigma, 2, oracle)
    return all(is_safe(component) for component in system.cyclic_components())


def is_inductively_restricted(sigma: Iterable[Constraint],
                              oracle: PrecedenceOracle = ORACLE) -> bool:
    """Definition 13: every set in ``part(Sigma, 2)`` is safe.

    Coincides with membership in T[2] (Proposition 5a); guarantees
    termination of every chase sequence in polynomial time data
    complexity (Theorem 6).
    """
    return all(is_safe(subset) for subset in part(sigma, 2, oracle))
