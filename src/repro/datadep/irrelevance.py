"""(I, Sigma)-irrelevant constraints and the static data-dependent
termination guarantee (Section 4.1, Lemma 4, Proposition 7).

A constraint is *(I, Sigma)-irrelevant* iff no chase sequence starting
from ``I`` can ever fire it.  Irrelevance is undecidable in general
(Theorem 8, via a Turing-machine reduction reproduced in
:mod:`repro.workloads.turing`); Proposition 7 gives the sufficient
test implemented here: encode the instance as an all-existential,
empty-body TGD ``alpha_I``, build the c-chase graph of
``Sigma + {alpha_I}``, and declare every constraint unreachable from
``alpha_I`` irrelevant.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

import networkx as nx

from repro.lang.atoms import Atom
from repro.lang.constraints import Constraint, TGD
from repro.lang.instance import Instance
from repro.lang.terms import Constant, GroundTerm, Null, Variable
from repro.termination.chase_graph import c_chase_graph
from repro.termination.hierarchy import in_t_level
from repro.termination.precedence import ORACLE, PrecedenceOracle


def instance_constraint(instance: Instance) -> TGD:
    """Proposition 7's ``alpha_I``: an empty-body TGD whose head is the
    instance with every domain element (constant or null) replaced by
    an existentially quantified variable."""
    if len(instance) == 0:
        raise ValueError("alpha_I is only defined for non-empty instances")
    renaming: Dict[GroundTerm, Variable] = {}
    for index, term in enumerate(sorted(instance.domain(), key=str)):
        renaming[term] = Variable(f"xI{index}")
    head: List[Atom] = []
    for fact in sorted(instance.facts(), key=str):
        head.append(Atom(fact.relation,
                         tuple(renaming[arg] for arg in fact.args)))
    return TGD((), head, label="alpha_I")


def relevant_constraints(instance: Instance, sigma: Iterable[Constraint],
                         oracle: PrecedenceOracle = ORACLE
                         ) -> Set[Constraint]:
    """The constraints *not* certified irrelevant by Proposition 7:
    those reachable from ``alpha_I`` in the c-chase graph.

    Proposition 7 requires every constraint to have a non-empty body
    (otherwise it fires regardless of the instance); empty-body
    constraints are conservatively kept relevant.
    """
    sigma = list(sigma)
    alpha_i = instance_constraint(instance)
    graph = c_chase_graph(sigma + [alpha_i], oracle)
    reachable = nx.descendants(graph, alpha_i)
    relevant = {c for c in sigma if c in reachable}
    relevant |= {c for c in sigma if not c.body}
    return relevant


def irrelevant_constraints(instance: Instance, sigma: Iterable[Constraint],
                           oracle: PrecedenceOracle = ORACLE
                           ) -> Set[Constraint]:
    """The constraints certified (I, Sigma)-irrelevant."""
    sigma = list(sigma)
    return set(sigma) - relevant_constraints(instance, sigma, oracle)


def terminates_statically(instance: Instance, sigma: Iterable[Constraint],
                          max_k: int = 3,
                          oracle: PrecedenceOracle = ORACLE
                          ) -> Optional[int]:
    """Lemma 4: if the relevant subset lies in some T[k], the chase of
    ``instance`` with ``sigma`` terminates.  Returns the level found,
    or None when no guarantee can be made (try the monitored chase).
    """
    relevant = relevant_constraints(instance, sigma, oracle)
    for k in range(2, max_k + 1):
        if in_t_level(relevant, k, oracle):
            return k
    return None
