"""The monitored chase: run the chase, abort at cycle depth k
(Section 4.2's dynamic data-dependent approach).

Applications pick the depth limit following a pay-as-you-go principle
(Proposition 11): every terminating sequence fails to be k-cyclic for
some k, so a large enough limit lets the chase finish, while a
divergent run is caught at the first sign of a self-feeding
null-creation loop instead of after an arbitrary step budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.chase.result import ChaseResult, ChaseStatus
from repro.chase.runner import AbortChase, chase, DEFAULT_MAX_STEPS
from repro.chase.step import ChaseStep
from repro.chase.strategies import Strategy
from repro.datadep.monitor import MonitorGraph
from repro.lang.constraints import Constraint
from repro.lang.instance import Instance
from repro.lang.terms import NullFactory, NULLS


@dataclass
class MonitoredChaseResult:
    """A chase result together with its monitor graph."""

    result: ChaseResult
    monitor: MonitorGraph
    cycle_limit: int

    @property
    def status(self) -> ChaseStatus:
        return self.result.status

    @property
    def aborted(self) -> bool:
        return self.result.status is ChaseStatus.ABORTED_BY_MONITOR

    @property
    def instance(self) -> Instance:
        return self.result.instance


def monitored_chase(instance: Instance, sigma: Iterable[Constraint],
                    cycle_limit: int,
                    strategy: Optional[Strategy] = None,
                    max_steps: int = DEFAULT_MAX_STEPS,
                    naive: bool = False,
                    observers: Sequence = (),
                    max_facts: Optional[int] = None,
                    wall_clock: Optional[float] = None,
                    nulls: Optional[NullFactory] = None
                    ) -> MonitoredChaseResult:
    """Chase ``instance`` with ``sigma``, aborting as soon as the
    monitor graph becomes ``cycle_limit``-cyclic (Section 4.2).

    ``naive=True`` forwards to the runner's naive trigger enumeration
    (see :func:`repro.chase.runner.chase`).  Extra ``observers`` run
    after the monitor on every step -- the hook the batch service of
    :mod:`repro.service` uses to stream progress events; ``max_facts``
    / ``wall_clock`` forward to the runner's budget checks."""
    if cycle_limit < 1:
        raise ValueError("cycle_limit must be at least 1")
    monitor = MonitorGraph()

    def observer(step: ChaseStep, _working: Instance) -> None:
        monitor.observe(step)
        if monitor.is_k_cyclic(cycle_limit):
            raise AbortChase(
                f"monitor graph became {cycle_limit}-cyclic at step "
                f"{step.index}")

    result = chase(instance, sigma, strategy=strategy, max_steps=max_steps,
                   observers=(observer, *observers), naive=naive,
                   max_facts=max_facts, wall_clock=wall_clock,
                   nulls=nulls if nulls is not None else NULLS)
    return MonitoredChaseResult(result=result, monitor=monitor,
                                cycle_limit=cycle_limit)


def pay_as_you_go(instance: Instance, sigma: Iterable[Constraint],
                  max_cycle_limit: int,
                  strategy_factory=None,
                  max_steps: int = DEFAULT_MAX_STEPS,
                  naive: bool = False) -> MonitoredChaseResult:
    """Retry the monitored chase with growing cycle limits
    ``1, 2, ..., max_cycle_limit`` until one terminates
    (Proposition 11's pay-as-you-go principle).

    Returns the first non-aborted result, or the last aborted one.
    """
    last: Optional[MonitoredChaseResult] = None
    for limit in range(1, max_cycle_limit + 1):
        strategy = strategy_factory() if strategy_factory else None
        last = monitored_chase(instance, sigma, limit, strategy=strategy,
                               max_steps=max_steps, naive=naive)
        if not last.aborted:
            return last
    assert last is not None
    return last
