"""The monitor graph and k-cyclicity (Section 4.2, Definitions 17-19).

The monitor graph tracks the provenance of labeled nulls created
during a chase run:

* a **node** is a pair ``(n, pi)`` of a freshly created null and the
  set of positions at which it first appeared;
* an **edge** ``(n1, pi1, phi, Pi, n2, pi2)`` records that the step
  firing constraint ``phi`` consumed null ``n1`` (at body positions
  ``Pi``) and created null ``n2``.

A run is **k-cyclic** (Definition 19) when some path carries ``k``
pairwise distinct edges with identical labels ``(pi1, phi, Pi, pi2)``
-- the signature of a self-feeding null-creation loop.  Lemma 5: every
infinite sequence has a k-cyclic finite prefix for every ``k``, so
aborting at a fixed depth never kills a "safe-looking" run silently
and larger depths succeed on strictly more inputs (Proposition 11,
pay-as-you-go).

Creation order makes the graph a DAG (edges point from older to newer
nulls), so the maximum same-label chain is maintained incrementally in
O(parents x labels) per created null.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.chase.step import ChaseStep
from repro.lang.atoms import Position
from repro.lang.constraints import Constraint
from repro.lang.terms import Null

Label = Tuple[FrozenSet[Position], Constraint, FrozenSet[Position],
              FrozenSet[Position]]


@dataclass(frozen=True)
class MonitorNode:
    """A monitor-graph node ``(n, pi)``."""

    null: Null
    positions: FrozenSet[Position]


@dataclass(frozen=True)
class MonitorEdge:
    """A monitor-graph edge ``(n1, pi1, phi, Pi, n2, pi2)``."""

    source: MonitorNode
    constraint: Constraint
    body_positions: FrozenSet[Position]
    target: MonitorNode

    @property
    def label(self) -> Label:
        """The projection ``p_{2,3,4,6}`` used by Definition 19."""
        return (self.source.positions, self.constraint,
                self.body_positions, self.target.positions)


class MonitorGraph:
    """Incrementally built monitor graph with k-cyclicity tracking."""

    def __init__(self) -> None:
        self.nodes: Dict[Null, MonitorNode] = {}
        self.edges: List[MonitorEdge] = []
        # best[n][label] = longest same-label chain among edges ending
        # at n or any of its ancestors.
        self._best: Dict[Null, Dict[Label, int]] = {}
        self._max_chain = 0

    @property
    def cycle_depth(self) -> int:
        """The largest k such that the graph is k-cyclic (0 if none)."""
        return self._max_chain

    def is_k_cyclic(self, k: int) -> bool:
        """Definition 19 membership test."""
        return self._max_chain >= k

    def observe(self, step: ChaseStep) -> None:
        """Account for one executed chase step (Definition 18).

        EGD steps and steps that create no nulls leave the graph
        unchanged.  For a null-creating TGD step, a node is added per
        fresh null and an edge per (existing-node null in the grounded
        body) x (fresh null).
        """
        if not step.new_nulls:
            return
        assignment = step.assignment_dict()
        constraint = step.constraint
        # Positions where each *existing tracked* null sits in the
        # grounded body of the trigger.
        body_occurrences: Dict[Null, Set[Position]] = {}
        grounded_body = [atom.substitute(assignment)
                         for atom in constraint.body]
        for atom in grounded_body:
            for index, arg in enumerate(atom.args):
                if isinstance(arg, Null) and arg in self.nodes:
                    body_occurrences.setdefault(arg, set()).add(
                        Position(atom.relation, index + 1))
        # Where does each fresh null first occur?
        creation_positions: Dict[Null, Set[Position]] = {}
        for fact in step.new_facts:
            for index, arg in enumerate(fact.args):
                if isinstance(arg, Null) and arg in step.new_nulls:
                    creation_positions.setdefault(arg, set()).add(
                        Position(fact.relation, index + 1))
        for null in step.new_nulls:
            positions = frozenset(creation_positions.get(null, set()))
            node = MonitorNode(null, positions)
            self.nodes[null] = node
            best: Dict[Label, int] = {}
            for parent_null, parent_positions in body_occurrences.items():
                parent = self.nodes[parent_null]
                edge = MonitorEdge(parent, constraint,
                                   frozenset(parent_positions), node)
                self.edges.append(edge)
                parent_best = self._best.get(parent_null, {})
                chain = 1 + parent_best.get(edge.label, 0)
                if chain > best.get(edge.label, 0):
                    best[edge.label] = chain
                if chain > self._max_chain:
                    self._max_chain = chain
                # Inherit the ancestors' chains wholesale.
                for label, value in parent_best.items():
                    if value > best.get(label, 0):
                        best[label] = value
            self._best[null] = best

    # ------------------------------------------------------------------
    @classmethod
    def from_sequence(cls, sequence: Iterable[ChaseStep]) -> "MonitorGraph":
        """Build the monitor graph of a recorded chase sequence."""
        graph = cls()
        for step in sequence:
            graph.observe(step)
        return graph

    def describe(self) -> str:
        lines = [f"monitor graph: {len(self.nodes)} nodes, "
                 f"{len(self.edges)} edges, cycle depth {self._max_chain}"]
        for edge in self.edges:
            pi1 = "{" + ", ".join(sorted(map(str, edge.source.positions))) + "}"
            pi2 = "{" + ", ".join(sorted(map(str, edge.target.positions))) + "}"
            body = "{" + ", ".join(sorted(map(str, edge.body_positions))) + "}"
            lines.append(
                f"  ({edge.source.null}, {pi1}) --"
                f"{edge.constraint.display_name()}, {body}--> "
                f"({edge.target.null}, {pi2})")
        return "\n".join(lines)
