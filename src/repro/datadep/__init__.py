"""Data-dependent chase termination (Section 4)."""

from repro.datadep.irrelevance import (instance_constraint,
                                       irrelevant_constraints,
                                       relevant_constraints,
                                       terminates_statically)
from repro.datadep.monitor import (Label, MonitorEdge, MonitorGraph,
                                   MonitorNode)
from repro.datadep.monitored_chase import (monitored_chase,
                                           MonitoredChaseResult,
                                           pay_as_you_go)

__all__ = [
    "instance_constraint", "irrelevant_constraints", "relevant_constraints",
    "terminates_statically", "Label", "MonitorEdge", "MonitorGraph",
    "MonitorNode", "monitored_chase", "MonitoredChaseResult",
    "pay_as_you_go",
]
