"""The pluggable fact-store contract and backend selection.

A :class:`FactStore` holds the ground atoms of one
:class:`repro.lang.instance.Instance` and owns the term-interning
table, the physical indexes, the change-listener delta feed and the
per-fact dense ids.  Two backends ship with the library:

* :class:`repro.storage.set_store.SetStore` -- the reference
  dict-of-sets layout (the pre-storage-layer ``Instance`` internals);
* :class:`repro.storage.column_store.ColumnStore` -- per-relation
  columnar tuples of interned term ids with array-backed
  ``(position, id)`` posting lists.

Backends are selected per instance via ``Instance(backend=...)`` or,
when that argument is omitted, the ``REPRO_BACKEND`` environment
variable (``set`` | ``column``, default ``set``).

The mutation entry points (:meth:`FactStore.add`,
:meth:`FactStore.discard`, :meth:`FactStore.substitute_term`) are
template methods: subclasses implement the physical ``_insert`` /
``_remove`` / ``facts_with_term``, the base class guarantees uniform
listener semantics -- listeners fire *after* the indexes are updated,
in registration order, and an EGD substitution emits each fact's
removal before the corresponding (possibly merged-away) addition, in
fact-insertion order on every backend.
"""

from __future__ import annotations

import os
from array import array
from bisect import bisect_left
from typing import (Dict, Iterable, Iterator, List, Mapping, Optional,
                    Sequence, Set, Tuple, Type)

from repro.lang.atoms import Atom
from repro.lang.errors import SchemaError
from repro.lang.terms import Constant, GroundTerm, Null
from repro.storage.interning import TermId, TermTable

#: Dense per-store fact id.  Like term ids, fact ids are permanent: a
#: fact keeps its id across removal and re-insertion, so id-keyed
#: caches (the trigger index backlog, the fact -> trigger reverse map)
#: survive EGD substitutions.
FactId = int

#: Environment variable consulted when no explicit backend is chosen.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Default backend name (the reference layout).
DEFAULT_BACKEND = "set"


class PostingList:
    """A sorted run of live row keys: the backend-neutral access path
    of the column-at-a-time join kernels.

    A posting list names the rows of one ``(relation, arity)`` table
    that hold a given term id at a given position (or *all* live rows,
    for :meth:`FactStore.row_universe`).  Row keys are backend-private
    integers -- physical row indexes on :class:`ColumnStore`, permanent
    fact ids on :class:`SetStore` -- that only have to satisfy two
    contracts: they are **strictly increasing** within a list, and
    :meth:`FactStore.batch_columns` can decode them back to argument
    ids.  Everything the kernels do (galloping intersection, gathers)
    works on that contract alone, which is what lets a future
    disk-backed store (ROADMAP item 1) plug in by exposing covering
    indexes as posting lists.

    The wrapped sequence is shared with the store and must be treated
    as read-only by callers.
    """

    __slots__ = ("rows",)

    def __init__(self, rows: Sequence[int]) -> None:
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[int]:
        return iter(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PostingList({len(self.rows)} rows)"

    def materialize(self) -> Sequence[int]:
        """An indexable snapshot of the row keys (read-only; may alias
        the store's own array when that is already safe to share)."""
        return self.rows

    @staticmethod
    def gallop(rows: Sequence[int], target: int, lo: int = 0) -> int:
        """The first index ``>= lo`` with ``rows[index] >= target``.

        Exponential (galloping) probe followed by a binary search of
        the bracketed range -- O(log gap) instead of O(gap), the
        classic skip primitive of sorted posting-list intersection.
        """
        hi = len(rows)
        probe = lo
        step = 1
        while probe < hi and rows[probe] < target:
            lo = probe + 1
            probe += step
            step <<= 1
        return bisect_left(rows, target, lo, min(probe, hi))

    def intersect(self, other: "PostingList") -> "PostingList":
        """Sorted intersection, galloping through the longer list.

        Iterates the shorter list and gallops for each key in the
        longer one, so heavily skewed pairs (a selective filter against
        a huge posting) cost O(small * log(large)).
        """
        a, b = self.rows, other.rows
        if len(a) > len(b):
            a, b = b, a
        out = array("q")
        append = out.append
        gallop = PostingList.gallop
        lo = 0
        hi = len(b)
        for value in a:
            lo = gallop(b, value, lo)
            if lo >= hi:
                break
            if b[lo] == value:
                append(value)
                lo += 1
        return PostingList(out)


class FactStore:
    """Abstract base class of the storage backends."""

    #: Registry-facing backend name; subclasses override.
    name = "abstract"

    #: Does the backend serve the posting-list protocol *natively*
    #: (sorted arrays, O(1) gathers)?  The batch execution mode of
    #: :class:`repro.homomorphism.plan.JoinPlan` vectorizes only over
    #: stores that set this; every backend must still *implement* the
    #: protocol (emulation is fine) so kernels stay cross-checkable.
    vectorized = False

    def __init__(self, terms: Optional[TermTable] = None) -> None:
        self._terms = terms if terms is not None else TermTable()
        self._listeners: List[object] = []
        self._generation = 0

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    @property
    def terms(self) -> TermTable:
        """The store's term-interning table."""
        return self._terms

    @property
    def generation(self) -> int:
        """A counter bumped on every successful mutation.

        Consumers that cache anything derived from the store's
        *statistics* -- join orders chosen from ``relation_size``
        snapshots (:meth:`repro.homomorphism.plan.JoinPlan.order_for`)
        -- compare generations to detect that their snapshot may be
        stale, then re-check the cheap statistics before trusting the
        cached decision.
        """
        return self._generation

    # ------------------------------------------------------------------
    # Change listeners (the delta feed of the incremental chase)
    # ------------------------------------------------------------------
    def add_listener(self, listener) -> None:
        """Register for ``fact_added`` / ``fact_removed`` callbacks."""
        self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        """Unregister ``listener`` (no-op if it is not registered)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Mutation (template methods; listeners fire after index updates)
    # ------------------------------------------------------------------
    def add(self, fact: Atom) -> bool:
        """Insert a fact.  Returns True if it was new."""
        if not fact.is_ground:
            raise SchemaError(f"cannot store non-ground atom {fact}")
        if not self._insert(fact):
            return False
        self._generation += 1
        for listener in self._listeners:
            listener.fact_added(fact)
        return True

    def add_all(self, facts: Iterable[Atom]) -> List[Atom]:
        """Insert many facts; return the ones that were actually new."""
        return [fact for fact in facts if self.add(fact)]

    def discard(self, fact: Atom) -> bool:
        """Remove a fact if present.  Returns True if it was removed."""
        if not self._remove(fact):
            return False
        self._generation += 1
        for listener in self._listeners:
            listener.fact_removed(fact)
        return True

    def substitute_term(self, old: GroundTerm, new: GroundTerm
                        ) -> List[Atom]:
        """Replace every occurrence of ``old`` by ``new`` (EGD steps).

        Returns the facts that changed (their new versions).  Affected
        facts are rewritten in insertion (fact-id) order, so the
        listener event sequence is identical on every backend.
        """
        if old == new:
            return []
        affected = sorted(self.facts_with_term(old),
                          key=lambda f: self.fact_id(f))
        changed: List[Atom] = []
        for fact in affected:
            self.discard(fact)
            new_fact = fact.substitute({old: new})
            if self.add(new_fact):
                changed.append(new_fact)
        return changed

    # ------------------------------------------------------------------
    # Physical layer (subclass responsibilities)
    # ------------------------------------------------------------------
    def _insert(self, fact: Atom) -> bool:
        """Index the fact; return False when it was already present."""
        raise NotImplementedError

    def _remove(self, fact: Atom) -> bool:
        """Unindex the fact; return False when it was not present."""
        raise NotImplementedError

    def facts_with_term(self, term: GroundTerm) -> List[Atom]:
        """All live facts in which ``term`` occurs."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, fact: Atom) -> bool:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Atom]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def facts(self, relation: Optional[str] = None) -> Set[Atom]:
        """All facts, or the facts of one relation (a fresh set)."""
        raise NotImplementedError

    def matching(self, relation: str, bindings: Mapping[int, GroundTerm]
                 ) -> Set[Atom]:
        """Facts of ``relation`` agreeing with ``bindings``
        (0-based position index -> required term)."""
        raise NotImplementedError

    def term_positions(self, term: GroundTerm) -> Set[Tuple[str, int]]:
        """``(relation, 0-based index)`` pairs at which ``term``
        currently occurs."""
        raise NotImplementedError

    def domain(self) -> Set[GroundTerm]:
        """All constants and nulls appearing in live facts."""
        raise NotImplementedError

    def relations(self) -> Set[str]:
        """Relation names with at least one live fact."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Fact ids (permanent; survive removal)
    # ------------------------------------------------------------------
    def fact_id(self, fact: Atom) -> Optional[FactId]:
        """The permanent id of ``fact`` (assigned at first insertion),
        or None if the fact was never stored."""
        raise NotImplementedError

    def fact_of(self, fid: FactId) -> Atom:
        """Decode a fact id (valid for live and removed facts)."""
        raise NotImplementedError

    def alive(self, fid: FactId) -> bool:
        """Is the fact with this id currently stored?"""
        raise NotImplementedError

    def row_fid(self, relation: str, arity: int,
                ids: Tuple[TermId, ...]) -> Optional[FactId]:
        """The fact id of the *live* fact with these interned argument
        ids, or None.  Used by the trigger index to validate body
        images without materializing atoms."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Compiled-plan scan interface (interned-id level)
    # ------------------------------------------------------------------
    def scan(self, relation: str, arity: int,
             bound: Sequence[Tuple[int, TermId]]
             ) -> Iterator[Tuple[TermId, ...]]:
        """Yield the interned-id tuples of live ``relation``/``arity``
        facts whose position ``p`` holds term id ``t`` for every
        ``(p, t)`` in ``bound``.  The workhorse of
        :class:`repro.homomorphism.plan.JoinPlan` execution."""
        raise NotImplementedError

    def has_row(self, relation: str, arity: int,
                ids: Tuple[TermId, ...]) -> bool:
        """Containment probe at the id level: is the fact with exactly
        these interned argument ids currently stored?  The fast path of
        fully-bound join-plan executions (head-extension checks)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Selectivity statistics (join-plan ordering)
    # ------------------------------------------------------------------
    def relation_size(self, relation: str) -> int:
        """Number of live facts of ``relation`` (0 when absent)."""
        raise NotImplementedError

    def posting_size(self, relation: str, position: int, tid: TermId
                     ) -> int:
        """Upper bound on the number of facts of ``relation`` holding
        term ``tid`` at 0-based ``position`` (posting-list length)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Posting-list protocol (column-at-a-time kernels)
    # ------------------------------------------------------------------
    def supports_batch(self) -> bool:
        """Should :class:`~repro.homomorphism.plan.JoinPlan` prefer the
        vectorized path on this store?  True exactly for backends that
        serve the posting-list protocol natively."""
        return self.vectorized

    def posting_list(self, relation: str, arity: int,
                     position: int, tid: TermId
                     ) -> Optional[PostingList]:
        """The sorted live row keys of ``relation``/``arity`` facts
        holding ``tid`` at 0-based ``position`` -- None when the store
        has no index that can answer without a full scan (the batch
        path then falls back to :meth:`row_universe` plus a gather
        filter).  Row keys follow the :class:`PostingList` contract."""
        raise NotImplementedError

    def row_universe(self, relation: str, arity: int) -> PostingList:
        """All live row keys of the ``relation``/``arity`` table, as a
        (possibly empty) posting list."""
        raise NotImplementedError

    def batch_columns(self, relation: str, arity: int,
                      rows: Sequence[int], positions: Sequence[int]
                      ) -> List[Sequence[TermId]]:
        """Gather argument columns for a batch of row keys: one
        sequence of interned term ids per requested 0-based position,
        each aligned with ``rows``.  Row keys must come from this
        store's own posting lists / row universes."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def constants_of_domain(self) -> Set[Constant]:
        return {t for t in self.domain() if isinstance(t, Constant)}

    def nulls_of_domain(self) -> Set[Null]:
        return {t for t in self.domain() if isinstance(t, Null)}


# ----------------------------------------------------------------------
# Backend registry / resolution
# ----------------------------------------------------------------------
def _registry() -> Dict[str, Type[FactStore]]:
    # Imported lazily so base.py stays import-cycle free.
    from repro.storage.column_store import ColumnStore
    from repro.storage.set_store import SetStore
    return {SetStore.name: SetStore, ColumnStore.name: ColumnStore}


def backend_names() -> List[str]:
    """The registered backend names (sorted)."""
    return sorted(_registry())


def resolve_backend_name(backend: Optional[str] = None) -> str:
    """Normalize an explicit choice or fall back to ``REPRO_BACKEND``.

    Raises :class:`~repro.lang.errors.SchemaError` on unknown names, so
    a typo in the environment variable fails loudly instead of
    silently running the default backend.
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR, "").strip() or \
            DEFAULT_BACKEND
    name = backend.strip().lower()
    if name not in _registry():
        raise SchemaError(
            f"unknown fact-store backend {backend!r} "
            f"(choose from {', '.join(backend_names())})")
    return name


def make_store(backend=None) -> FactStore:
    """Instantiate a backend.

    ``backend`` may be None (environment / default resolution), a
    registered name, or an already-constructed :class:`FactStore`
    (adopted as-is, enabling shared-table setups in tests).
    """
    if isinstance(backend, FactStore):
        return backend
    return _registry()[resolve_backend_name(backend)]()
