"""Term interning: dense integer ids for constants and labeled nulls.

Every :class:`~repro.lang.terms.Constant` and
:class:`~repro.lang.terms.Null` that enters a fact store is assigned a
dense integer id by a :class:`TermTable`.  Downstream machinery -- the
columnar backend's posting lists, the compiled join plans of
:mod:`repro.homomorphism.plan`, the trigger-key and
satisfied-frontier caches of :class:`repro.chase.triggers.TriggerIndex`
-- then works over plain ``int`` comparisons instead of hashing boxed
term objects, decoding back to terms only at result boundaries.

Ids are never recycled: a term keeps its id even after the last fact
mentioning it is removed, which is what makes id-keyed caches sound
across EGD substitutions.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.lang.terms import GroundTerm
from repro.obs.metrics import OBS

#: Interned id of a ground term within one :class:`TermTable`.
TermId = int


class TermTable:
    """A bijective, append-only ``GroundTerm <-> int`` registry."""

    __slots__ = ("_terms", "_ids")

    def __init__(self) -> None:
        self._terms: List[GroundTerm] = []
        self._ids: Dict[GroundTerm, TermId] = {}

    def intern(self, term: GroundTerm) -> TermId:
        """The id of ``term``, assigning a fresh dense id on first use."""
        tid = self._ids.get(term)
        if tid is None:
            tid = len(self._terms)
            self._ids[term] = tid
            self._terms.append(term)
            # Only the (rare) miss branch is instrumented -- intern()
            # is the hottest call in the engine and the hit path must
            # stay two dict operations.
            if OBS.enabled:
                OBS.inc("storage.terms_interned")
        return tid

    def id_of(self, term: GroundTerm) -> Optional[TermId]:
        """The id of ``term`` if it was ever interned, else None."""
        return self._ids.get(term)

    def term(self, tid: TermId) -> GroundTerm:
        """Decode an id back to its term (O(1) list index)."""
        return self._terms[tid]

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: GroundTerm) -> bool:
        return term in self._ids

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TermTable({len(self._terms)} terms)"
