"""The reference backend: dict-of-sets fact storage.

This is the pre-storage-layer ``Instance`` layout, kept verbatim as
the semantics oracle for the columnar backend:

* relation name -> set of facts,
* ``(relation, position-index, term)`` -> set of facts,
* term -> set of ``(relation, position-index)`` keys with a non-empty
  bucket (so EGD substitutions and position lookups touch only the
  affected buckets, and empty buckets are always pruned).

On top of the historical indexes it implements the storage-layer
contract: permanent fact ids (insertion-ordered) and the interned-id
``scan`` used by compiled join plans, with a per-fact id-tuple cache
so repeated scans do not re-intern arguments.
"""

from __future__ import annotations

from array import array
from typing import (Dict, Iterator, List, Mapping, Optional, Sequence, Set,
                    Tuple)

from repro.lang.atoms import Atom
from repro.lang.terms import GroundTerm
from repro.obs.metrics import OBS
from repro.storage.base import FactId, FactStore, PostingList
from repro.storage.interning import TermId, TermTable


class SetStore(FactStore):
    """Hash-set storage with per-position inverted indexes."""

    name = "set"

    def __init__(self, terms: Optional[TermTable] = None) -> None:
        super().__init__(terms)
        self._facts: Set[Atom] = set()
        self._by_relation: Dict[str, Set[Atom]] = {}
        self._by_term: Dict[Tuple[str, int, GroundTerm], Set[Atom]] = {}
        self._term_positions: Dict[GroundTerm, Set[Tuple[str, int]]] = {}
        # Permanent fact-id registry (kept across removals).
        self._fids: Dict[Atom, FactId] = {}
        self._atoms: List[Atom] = []
        # fact -> tuple of interned argument ids, filled lazily by scan.
        self._id_tuples: Dict[Atom, Tuple[TermId, ...]] = {}

    # ------------------------------------------------------------------
    # Physical mutation
    # ------------------------------------------------------------------
    def _insert(self, fact: Atom) -> bool:
        if fact in self._facts:
            return False
        self._facts.add(fact)
        self._by_relation.setdefault(fact.relation, set()).add(fact)
        for i, term in enumerate(fact.args):
            self._terms.intern(term)
            self._by_term.setdefault((fact.relation, i, term),
                                     set()).add(fact)
            self._term_positions.setdefault(term, set()).add(
                (fact.relation, i))
        if fact not in self._fids:
            self._fids[fact] = len(self._atoms)
            self._atoms.append(fact)
        return True

    def _remove(self, fact: Atom) -> bool:
        if fact not in self._facts:
            return False
        self._facts.discard(fact)
        relation_bucket = self._by_relation.get(fact.relation)
        if relation_bucket is not None:
            relation_bucket.discard(fact)
            if not relation_bucket:
                del self._by_relation[fact.relation]
        for i, term in enumerate(fact.args):
            key = (fact.relation, i, term)
            bucket = self._by_term.get(key)
            if bucket is None:
                continue
            bucket.discard(fact)
            if not bucket:
                # Empty term-index buckets are pruned eagerly -- the
                # set-store analogue of the columnar compaction.
                if OBS.enabled:
                    OBS.inc("storage.index_buckets_pruned")
                del self._by_term[key]
                positions = self._term_positions.get(term)
                if positions is not None:
                    positions.discard((fact.relation, i))
                    if not positions:
                        del self._term_positions[term]
        return True

    def facts_with_term(self, term: GroundTerm) -> List[Atom]:
        affected: Set[Atom] = set()
        for relation, i in self._term_positions.get(term, ()):
            affected.update(self._by_term.get((relation, i, term), ()))
        return list(affected)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, fact: Atom) -> bool:
        return fact in self._facts

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def facts(self, relation: Optional[str] = None) -> Set[Atom]:
        if relation is None:
            return set(self._facts)
        return set(self._by_relation.get(relation, ()))

    def matching(self, relation: str, bindings: Mapping[int, GroundTerm]
                 ) -> Set[Atom]:
        base = self._by_relation.get(relation)
        if not base:
            return set()
        if not bindings:
            return set(base)
        candidate_sets = []
        for i, term in bindings.items():
            facts = self._by_term.get((relation, i, term))
            if not facts:
                return set()
            candidate_sets.append(facts)
        candidate_sets.sort(key=len)
        result = set(candidate_sets[0])
        for facts in candidate_sets[1:]:
            result &= facts
            if not result:
                break
        return result

    def term_positions(self, term: GroundTerm) -> Set[Tuple[str, int]]:
        return set(self._term_positions.get(term, ()))

    def domain(self) -> Set[GroundTerm]:
        return set(self._term_positions)

    def relations(self) -> Set[str]:
        return {name for name, facts in self._by_relation.items() if facts}

    # ------------------------------------------------------------------
    # Fact ids
    # ------------------------------------------------------------------
    def fact_id(self, fact: Atom) -> Optional[FactId]:
        return self._fids.get(fact)

    def fact_of(self, fid: FactId) -> Atom:
        return self._atoms[fid]

    def alive(self, fid: FactId) -> bool:
        return self._atoms[fid] in self._facts

    # ------------------------------------------------------------------
    # Plan scan + statistics
    # ------------------------------------------------------------------
    def _ids_of(self, fact: Atom) -> Tuple[TermId, ...]:
        ids = self._id_tuples.get(fact)
        if ids is None:
            intern = self._terms.intern
            ids = tuple(intern(term) for term in fact.args)
            self._id_tuples[fact] = ids
        return ids

    def scan(self, relation: str, arity: int,
             bound: Sequence[Tuple[int, TermId]]
             ) -> Iterator[Tuple[TermId, ...]]:
        term_of = self._terms.term
        bindings = {pos: term_of(tid) for pos, tid in bound}
        for fact in self.matching(relation, bindings):
            if fact.arity == arity:
                yield self._ids_of(fact)

    def has_row(self, relation: str, arity: int,
                ids: Tuple[TermId, ...]) -> bool:
        term_of = self._terms.term
        return Atom(relation, tuple(term_of(tid) for tid in ids)) \
            in self._facts

    def row_fid(self, relation: str, arity: int,
                ids: Tuple[TermId, ...]) -> Optional[FactId]:
        term_of = self._terms.term
        fact = Atom(relation, tuple(term_of(tid) for tid in ids))
        if fact not in self._facts:
            return None
        return self._fids.get(fact)

    def relation_size(self, relation: str) -> int:
        return len(self._by_relation.get(relation, ()))

    def posting_size(self, relation: str, position: int, tid: TermId
                     ) -> int:
        term = self._terms.term(tid)
        return len(self._by_term.get((relation, position, term), ()))

    # ------------------------------------------------------------------
    # Posting-list protocol (emulated)
    # ------------------------------------------------------------------
    # Row keys are permanent fact ids, sorted on demand from the hash
    # buckets.  This is O(n log n) per request -- the point is protocol
    # conformance (cross-backend kernel parity tests), not speed, which
    # is why ``vectorized`` stays False and the batch path does not
    # route here by default.

    def _sorted_fids(self, facts, arity: int) -> PostingList:
        fids = self._fids
        rows = array("q", sorted(fids[fact] for fact in facts
                                 if fact.arity == arity))
        return PostingList(rows)

    def posting_list(self, relation: str, arity: int,
                     position: int, tid: TermId
                     ) -> Optional[PostingList]:
        term = self._terms.term(tid)
        bucket = self._by_term.get((relation, position, term), ())
        return self._sorted_fids(bucket, arity)

    def row_universe(self, relation: str, arity: int) -> PostingList:
        bucket = self._by_relation.get(relation, ())
        return self._sorted_fids(bucket, arity)

    def batch_columns(self, relation: str, arity: int,
                      rows: Sequence[int], positions: Sequence[int]
                      ) -> List[Sequence[TermId]]:
        atoms = self._atoms
        ids_of = self._ids_of
        tuples = [ids_of(atoms[fid]) for fid in rows]
        return [[ids[position] for ids in tuples]
                for position in positions]
