"""The columnar backend: interned-id columns + posting lists.

Facts are stored per ``(relation, arity)`` bucket as parallel columns
of interned term ids (one ``array('q')`` per position), with:

* an ``alive`` byte per row (EGD substitutions tombstone rows instead
  of shifting them, so posting-list entries stay valid);
* array-backed posting lists ``(position, term-id) -> array('q')`` of
  row indexes, the access paths of compiled join plans -- candidate
  rows come from the *smallest* posting list and are verified by
  direct column probes (two int comparisons per bound position);
* a ``row_of`` map from id-tuples to live rows (duplicate detection
  without hashing Atom objects);
* a parallel ``fids`` column mapping rows to permanent fact ids, so
  decoding a row to its (cached) ``Atom`` is a list index.

When tombstones outnumber live rows the bucket is compacted in one
pass (columns, postings and ``row_of`` rebuilt); fact ids -- the
currency of the trigger index -- are unaffected by compaction.
"""

from __future__ import annotations

from array import array
from itertools import compress
from operator import itemgetter
from typing import (Dict, Iterator, List, Mapping, Optional, Sequence, Set,
                    Tuple)

from repro.lang.atoms import Atom
from repro.lang.terms import GroundTerm
from repro.obs.metrics import OBS
from repro.storage.base import FactId, FactStore, PostingList
from repro.storage.interning import TermId, TermTable

#: Compaction triggers once a bucket holds more than this many dead
#: rows *and* more dead than live rows.
_COMPACT_MIN_DEAD = 64


class _Bucket:
    """Columnar rows of one ``(relation, arity)`` pair."""

    __slots__ = ("relation", "arity", "columns", "alive", "fids",
                 "postings", "row_of", "live", "dead")

    def __init__(self, relation: str, arity: int) -> None:
        self.relation = relation
        self.arity = arity
        self.columns: List[array] = [array("q") for _ in range(arity)]
        self.alive = bytearray()
        self.fids = array("q")
        self.postings: Dict[Tuple[int, TermId], array] = {}
        self.row_of: Dict[Tuple[TermId, ...], int] = {}
        self.live = 0
        self.dead = 0

    def append(self, ids: Tuple[TermId, ...], fid: FactId) -> int:
        row = len(self.alive)
        for position, tid in enumerate(ids):
            self.columns[position].append(tid)
            posting = self.postings.get((position, tid))
            if posting is None:
                posting = self.postings[(position, tid)] = array("q")
            posting.append(row)
        self.alive.append(1)
        self.fids.append(fid)
        self.row_of[ids] = row
        self.live += 1
        return row

    def kill(self, ids: Tuple[TermId, ...], row: int) -> None:
        del self.row_of[ids]
        self.alive[row] = 0
        self.live -= 1
        self.dead += 1

    def compact(self) -> None:
        """Drop tombstoned rows and rebuild the access paths."""
        columns = [array("q") for _ in range(self.arity)]
        alive = bytearray()
        fids = array("q")
        postings: Dict[Tuple[int, TermId], array] = {}
        row_of: Dict[Tuple[TermId, ...], int] = {}
        for row, live in enumerate(self.alive):
            if not live:
                continue
            ids = tuple(column[row] for column in self.columns)
            new_row = len(alive)
            for position, tid in enumerate(ids):
                columns[position].append(tid)
                posting = postings.get((position, tid))
                if posting is None:
                    posting = postings[(position, tid)] = array("q")
                posting.append(new_row)
            alive.append(1)
            fids.append(self.fids[row])
            row_of[ids] = new_row
        self.columns = columns
        self.alive = alive
        self.fids = fids
        self.postings = postings
        self.row_of = row_of
        self.dead = 0

    def row_ids(self, row: int) -> Tuple[TermId, ...]:
        return tuple(column[row] for column in self.columns)


class ColumnStore(FactStore):
    """Column-organized storage over interned term ids."""

    name = "column"
    vectorized = True

    def __init__(self, terms: Optional[TermTable] = None) -> None:
        super().__init__(terms)
        #: relation name -> buckets (one per arity seen; usually one)
        self._buckets: Dict[str, List[_Bucket]] = {}
        # Permanent fact-id registry: (relation, id-tuple) -> fid.
        self._fid_of: Dict[Tuple[str, Tuple[TermId, ...]], FactId] = {}
        self._atoms: List[Atom] = []
        self._fid_alive = bytearray()
        self._live_count = 0
        #: term id -> {(relation, position): live occurrence count}
        self._term_pos: Dict[TermId, Dict[Tuple[str, int], int]] = {}
        #: memo of the most recent insertion: the listener protocol
        #: asks for fact_id(fact) right after every add.
        self._last_inserted: Optional[Tuple[Atom, FactId]] = None

    # ------------------------------------------------------------------
    # Bucket plumbing
    # ------------------------------------------------------------------
    def _bucket(self, relation: str, arity: int, create: bool = False
                ) -> Optional[_Bucket]:
        buckets = self._buckets.get(relation)
        if buckets is not None:
            for bucket in buckets:
                if bucket.arity == arity:
                    return bucket
        if not create:
            return None
        bucket = _Bucket(relation, arity)
        self._buckets.setdefault(relation, []).append(bucket)
        return bucket

    def _iter_live(self, bucket: _Bucket) -> Iterator[int]:
        for row, live in enumerate(bucket.alive):
            if live:
                yield row

    def _atom_at(self, bucket: _Bucket, row: int) -> Atom:
        return self._atoms[bucket.fids[row]]

    # ------------------------------------------------------------------
    # Physical mutation
    # ------------------------------------------------------------------
    def _insert(self, fact: Atom) -> bool:
        intern = self._terms.intern
        ids = tuple(intern(term) for term in fact.args)
        bucket = self._bucket(fact.relation, fact.arity, create=True)
        if ids in bucket.row_of:
            return False
        key = (fact.relation, ids)
        fid = self._fid_of.get(key)
        if fid is None:
            fid = len(self._atoms)
            self._fid_of[key] = fid
            self._atoms.append(fact)
            self._fid_alive.append(1)
        else:
            self._fid_alive[fid] = 1
        bucket.append(ids, fid)
        self._last_inserted = (fact, fid)
        self._live_count += 1
        for position, tid in enumerate(ids):
            occurrences = self._term_pos.setdefault(tid, {})
            spot = (fact.relation, position)
            occurrences[spot] = occurrences.get(spot, 0) + 1
        return True

    def _remove(self, fact: Atom) -> bool:
        id_of = self._terms.id_of
        ids = []
        for term in fact.args:
            tid = id_of(term)
            if tid is None:
                return False
            ids.append(tid)
        ids = tuple(ids)
        bucket = self._bucket(fact.relation, fact.arity)
        if bucket is None:
            return False
        row = bucket.row_of.get(ids)
        if row is None:
            return False
        bucket.kill(ids, row)
        self._fid_alive[self._fid_of[(fact.relation, ids)]] = 0
        self._live_count -= 1
        for position, tid in enumerate(ids):
            occurrences = self._term_pos[tid]
            spot = (fact.relation, position)
            remaining = occurrences[spot] - 1
            if remaining:
                occurrences[spot] = remaining
            else:
                del occurrences[spot]
                if not occurrences:
                    del self._term_pos[tid]
        if bucket.dead > _COMPACT_MIN_DEAD and bucket.dead > bucket.live:
            if OBS.enabled:
                OBS.inc("storage.compactions")
            bucket.compact()
        return True

    def facts_with_term(self, term: GroundTerm) -> List[Atom]:
        tid = self._terms.id_of(term)
        if tid is None:
            return []
        out: List[Atom] = []
        seen: Set[FactId] = set()
        for relation, position in list(self._term_pos.get(tid, ())):
            for bucket in self._buckets.get(relation, ()):
                if position >= bucket.arity:
                    continue
                posting = bucket.postings.get((position, tid))
                if posting is None:
                    continue
                alive = bucket.alive
                for row in posting:
                    if alive[row]:
                        fid = bucket.fids[row]
                        if fid not in seen:
                            seen.add(fid)
                            out.append(self._atoms[fid])
        return out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, fact: Atom) -> bool:
        id_of = self._terms.id_of
        ids = []
        for term in fact.args:
            tid = id_of(term)
            if tid is None:
                return False
            ids.append(tid)
        bucket = self._bucket(fact.relation, fact.arity)
        return bucket is not None and tuple(ids) in bucket.row_of

    def __iter__(self) -> Iterator[Atom]:
        # Insertion order (stable across compactions).
        atoms = self._atoms
        for fid, live in enumerate(self._fid_alive):
            if live:
                yield atoms[fid]

    def __len__(self) -> int:
        return self._live_count

    def facts(self, relation: Optional[str] = None) -> Set[Atom]:
        if relation is None:
            return set(self)
        out: Set[Atom] = set()
        for bucket in self._buckets.get(relation, ()):
            for row in self._iter_live(bucket):
                out.add(self._atom_at(bucket, row))
        return out

    def matching(self, relation: str, bindings: Mapping[int, GroundTerm]
                 ) -> Set[Atom]:
        out: Set[Atom] = set()
        id_of = self._terms.id_of
        bound: List[Tuple[int, TermId]] = []
        for position, term in bindings.items():
            tid = id_of(term)
            if tid is None:
                return out
            bound.append((position, tid))
        for bucket in self._buckets.get(relation, ()):
            if any(position >= bucket.arity for position, _ in bound):
                continue
            for row in self._candidate_rows(bucket, bound):
                out.add(self._atom_at(bucket, row))
        return out

    def _candidate_rows(self, bucket: _Bucket,
                        bound: Sequence[Tuple[int, TermId]]
                        ) -> Iterator[int]:
        """Live rows of ``bucket`` matching every bound position."""
        if not bound:
            yield from self._iter_live(bucket)
            return
        postings = []
        for position, tid in bound:
            posting = bucket.postings.get((position, tid))
            if posting is None:
                return
            postings.append(posting)
        smallest = min(postings, key=len)
        alive = bucket.alive
        columns = bucket.columns
        for row in smallest:
            if alive[row] and all(columns[position][row] == tid
                                  for position, tid in bound):
                yield row

    def term_positions(self, term: GroundTerm) -> Set[Tuple[str, int]]:
        tid = self._terms.id_of(term)
        if tid is None:
            return set()
        return set(self._term_pos.get(tid, ()))

    def domain(self) -> Set[GroundTerm]:
        term_of = self._terms.term
        return {term_of(tid) for tid in self._term_pos}

    def relations(self) -> Set[str]:
        return {relation for relation, buckets in self._buckets.items()
                if any(bucket.live for bucket in buckets)}

    # ------------------------------------------------------------------
    # Fact ids
    # ------------------------------------------------------------------
    def fact_id(self, fact: Atom) -> Optional[FactId]:
        last = self._last_inserted
        if last is not None and last[0] is fact:
            return last[1]
        id_of = self._terms.id_of
        ids = []
        for term in fact.args:
            tid = id_of(term)
            if tid is None:
                return None
            ids.append(tid)
        return self._fid_of.get((fact.relation, tuple(ids)))

    def fact_of(self, fid: FactId) -> Atom:
        return self._atoms[fid]

    def alive(self, fid: FactId) -> bool:
        return bool(self._fid_alive[fid])

    # ------------------------------------------------------------------
    # Plan scan + statistics
    # ------------------------------------------------------------------
    def scan(self, relation: str, arity: int,
             bound: Sequence[Tuple[int, TermId]]
             ) -> Iterator[Tuple[TermId, ...]]:
        bucket = self._bucket(relation, arity)
        if bucket is None:
            return
        # Snapshot the access path: a suspended enumeration (the lazy
        # trigger index) must keep decoding row indexes against the
        # arrays they were drawn from, even if the bucket is compacted
        # underneath it.  Facts removed after the snapshot may still be
        # yielded; callers holding enumerations across mutations
        # re-validate yields against the live store.
        columns = bucket.columns
        alive = bucket.alive
        if not bound:
            if not columns:
                # Nullary relation: zip() over no columns would yield
                # nothing despite live rows.
                for live in alive:
                    if live:
                        yield ()
                return
            # Fully lazy and fully C: tuples come out of zip, dead rows
            # are dropped by compress.  (Appends extend all columns and
            # the liveness array between suspensions, so the paired
            # iterators stay row-aligned.)
            yield from compress(zip(*columns), alive)
            return
        postings = []
        for position, tid in bound:
            posting = bucket.postings.get((position, tid))
            if posting is None:
                return
            postings.append(posting)
        smallest = min(postings, key=len)
        # A posting row trivially satisfies its own (position, id) pair,
        # so only the *other* bound positions need column probes.
        own = smallest
        probes = [(columns[position], tid) for position, tid in bound
                  if bucket.postings.get((position, tid)) is not own]
        if len(smallest) <= 8:
            # Short posting: the plain loop beats the chunk machinery.
            for row in smallest:
                if alive[row] and all(column[row] == tid
                                      for column, tid in probes):
                    yield tuple([column[row] for column in columns])
            return
        # Adaptive chunking: the first chunks are tiny so existence
        # probes stop after O(1) work, then the chunk size grows
        # geometrically and the projection runs through itemgetter/zip
        # at C speed for enumeration-heavy consumers.
        position_index = 0
        chunk = 1
        while position_index < len(smallest):
            end = min(position_index + chunk, len(smallest))
            rows = smallest[position_index:end]
            position_index = end
            if chunk < 256:
                chunk *= 4
            if probes:
                live = [row for row in rows
                        if alive[row] and all(column[row] == tid
                                              for column, tid in probes)]
            else:
                live = [row for row in rows if alive[row]]
            if not live:
                continue
            if len(live) == 1:
                row = live[0]
                yield tuple([column[row] for column in columns])
            else:
                picker = itemgetter(*live)
                yield from zip(*[picker(column) for column in columns])

    def has_row(self, relation: str, arity: int,
                ids: Tuple[TermId, ...]) -> bool:
        bucket = self._bucket(relation, arity)
        return bucket is not None and ids in bucket.row_of

    def row_fid(self, relation: str, arity: int,
                ids: Tuple[TermId, ...]) -> Optional[FactId]:
        bucket = self._bucket(relation, arity)
        if bucket is None:
            return None
        row = bucket.row_of.get(ids)
        if row is None:
            return None
        return bucket.fids[row]

    def relation_size(self, relation: str) -> int:
        return sum(bucket.live
                   for bucket in self._buckets.get(relation, ()))

    def posting_size(self, relation: str, position: int, tid: TermId
                     ) -> int:
        return sum(len(bucket.postings.get((position, tid), ()))
                   for bucket in self._buckets.get(relation, ())
                   if position < bucket.arity)

    # ------------------------------------------------------------------
    # Posting-list protocol (native)
    # ------------------------------------------------------------------
    # Row keys are physical row indexes within the (relation, arity)
    # bucket.  Postings are appended in row order and compaction
    # rebuilds them in row order, so the stored arrays are already
    # strictly increasing; the only live-ness work is filtering
    # tombstones, and buckets without tombstones share their arrays
    # with the kernels zero-copy.

    def posting_list(self, relation: str, arity: int,
                     position: int, tid: TermId
                     ) -> Optional[PostingList]:
        bucket = self._bucket(relation, arity)
        if bucket is None or position >= bucket.arity:
            return PostingList(array("q"))
        posting = bucket.postings.get((position, tid))
        if posting is None:
            return PostingList(array("q"))
        if not bucket.dead:
            return PostingList(posting)
        alive = bucket.alive
        return PostingList(array("q", (row for row in posting
                                       if alive[row])))

    def row_universe(self, relation: str, arity: int) -> PostingList:
        bucket = self._bucket(relation, arity)
        if bucket is None:
            return PostingList(array("q"))
        if not bucket.dead:
            return PostingList(range(len(bucket.alive)))
        return PostingList(array("q", (row for row, live
                                       in enumerate(bucket.alive)
                                       if live)))

    def batch_columns(self, relation: str, arity: int,
                      rows: Sequence[int], positions: Sequence[int]
                      ) -> List[Sequence[TermId]]:
        bucket = self._bucket(relation, arity)
        if bucket is None or not rows:
            return [[] for _ in positions]
        columns = bucket.columns
        if len(rows) == 1:
            row = rows[0]
            return [[columns[position][row]] for position in positions]
        picker = itemgetter(*rows)
        return [picker(columns[position]) for position in positions]
