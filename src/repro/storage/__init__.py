"""Pluggable fact storage: term interning and store backends.

The storage layer sits below :mod:`repro.lang.instance` -- an
``Instance`` is a thin facade over one :class:`FactStore` backend:

* :class:`SetStore` (``"set"``) -- the reference dict-of-sets layout;
* :class:`ColumnStore` (``"column"``) -- columnar interned-id tuples
  with array-backed posting lists, the fast path for compiled join
  plans.

Select per instance with ``Instance(backend="column")`` or globally
with the ``REPRO_BACKEND`` environment variable.
"""

from repro.storage.base import (BACKEND_ENV_VAR, DEFAULT_BACKEND, FactId,
                                FactStore, backend_names, make_store,
                                resolve_backend_name)
from repro.storage.column_store import ColumnStore
from repro.storage.interning import TermId, TermTable
from repro.storage.set_store import SetStore

__all__ = [
    "BACKEND_ENV_VAR", "DEFAULT_BACKEND", "FactId", "FactStore",
    "backend_names", "make_store", "resolve_backend_name",
    "ColumnStore", "TermId", "TermTable", "SetStore",
]
