"""Head-extension checks: the ``mu cannot be extended`` test.

A TGD ``forall x phi -> exists y psi`` is *applicable* to an instance
``I`` with homomorphism ``mu`` iff ``mu`` maps ``body`` into ``I`` and
cannot be extended to a homomorphism of the head (Section 2).  This
module provides that extension test plus full constraint-satisfaction
checks, both for instances and for fixed parameter vectors
(``alpha(a)`` in the paper's notation).
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.homomorphism.engine import (Assignment, apply_assignment,
                                       find_homomorphism, find_homomorphisms,
                                       has_homomorphism)
from repro.lang.constraints import Constraint, EGD, TGD
from repro.lang.instance import Instance
from repro.lang.terms import GroundTerm, Variable


def head_extends(tgd: TGD, instance: Instance,
                 binding: Mapping[Variable, GroundTerm]) -> bool:
    """Can ``binding`` (on the universal variables) be extended to a
    homomorphism of the head into ``instance``?"""
    frontier = {var: binding[var] for var in tgd.frontier_variables()}
    return has_homomorphism(list(tgd.head), instance, partial=frontier)


def tgd_satisfied_for(tgd: TGD, instance: Instance,
                      binding: Mapping[Variable, GroundTerm]) -> bool:
    """``I |= alpha(a)`` for a TGD: if the grounded body is contained in
    the instance, the head must extend."""
    grounded_body = apply_assignment(tgd.body, binding)
    if any(not atom.is_ground for atom in grounded_body):
        raise ValueError("binding must ground the entire body")
    if not all(atom in instance for atom in grounded_body):
        return True
    return head_extends(tgd, instance, binding)


def egd_satisfied_for(egd: EGD, instance: Instance,
                      binding: Mapping[Variable, GroundTerm]) -> bool:
    """``I |= alpha(a)`` for an EGD."""
    grounded_body = apply_assignment(egd.body, binding)
    if not all(atom in instance for atom in grounded_body):
        return True
    return binding[egd.lhs] == binding[egd.rhs]


def constraint_satisfied_for(constraint: Constraint, instance: Instance,
                             binding: Mapping[Variable, GroundTerm]) -> bool:
    """``I |= alpha(a)`` dispatching on the constraint kind."""
    if isinstance(constraint, TGD):
        return tgd_satisfied_for(constraint, instance, binding)
    assert isinstance(constraint, EGD)
    return egd_satisfied_for(constraint, instance, binding)


def violation(constraint: Constraint, instance: Instance
              ) -> Optional[Assignment]:
    """An *active trigger*: a body homomorphism witnessing
    ``I not|= alpha``, or None when the constraint is satisfied."""
    if isinstance(constraint, TGD):
        for assignment in find_homomorphisms(list(constraint.body), instance):
            if not head_extends(constraint, instance, assignment):
                return assignment
        return None
    assert isinstance(constraint, EGD)
    for assignment in find_homomorphisms(list(constraint.body), instance):
        if assignment[constraint.lhs] != assignment[constraint.rhs]:
            return assignment
    return None


def is_satisfied(constraint: Constraint, instance: Instance) -> bool:
    """``I |= alpha`` (no active trigger exists)."""
    return violation(constraint, instance) is None


def all_satisfied(sigma, instance: Instance) -> bool:
    """``I |= Sigma``."""
    return all(is_satisfied(constraint, instance) for constraint in sigma)


def find_trigger(constraint: Constraint, instance: Instance
                 ) -> Optional[Assignment]:
    """Alias of :func:`violation` under the chase's terminology."""
    return violation(constraint, instance)


def find_oblivious_trigger(constraint: Constraint, instance: Instance,
                           exclude=None) -> Optional[Assignment]:
    """A body homomorphism regardless of satisfaction (oblivious chase),
    optionally skipping assignments whose key is in ``exclude``."""
    for assignment in find_homomorphisms(list(constraint.body), instance):
        if exclude is not None:
            key = trigger_key(constraint, assignment)
            if key in exclude:
                continue
        return assignment
    return None


def freeze_assignment(assignment: Mapping[Variable, GroundTerm]) -> tuple:
    """The canonical hashable form of a body assignment ``mu`` --
    sorted (variable-name, value) pairs.  Used where the key must be
    self-describing (chase-step records); the id-keyed variant
    :func:`freeze_assignment_ids` serves the hot paths."""
    return tuple(sorted(((var.name, value)
                         for var, value in assignment.items()),
                        key=lambda kv: kv[0]))


def freeze_assignment_ids(assignment: Mapping[Variable, GroundTerm],
                          table) -> tuple:
    """Like :func:`freeze_assignment`, but with each term interned to
    its dense id in ``table`` (a :class:`repro.storage.TermTable`) --
    two machine ints per variable instead of a boxed term hash.  The
    trigger identity used by the incremental
    :class:`repro.chase.triggers.TriggerIndex` and the naive oblivious
    runner's fired set."""
    intern = table.intern
    return tuple(sorted(
        (var.name, intern(value)) for var, value in assignment.items()))


def trigger_key(constraint: Constraint, assignment: Mapping[Variable, GroundTerm]
                ) -> tuple:
    """A hashable identity for (constraint, body image) pairs, used by
    the oblivious chase to fire each trigger exactly once."""
    return (constraint, freeze_assignment(assignment))
