"""Homomorphism search and constraint-satisfaction checks."""

from repro.homomorphism.engine import (Assignment, apply_assignment,
                                       find_homomorphism, find_homomorphisms,
                                       has_homomorphism,
                                       homomorphism_between,
                                       instance_maps_into,
                                       null_renaming_equivalent)
from repro.homomorphism.extend import (all_satisfied,
                                       constraint_satisfied_for,
                                       find_oblivious_trigger, find_trigger,
                                       head_extends, is_satisfied,
                                       trigger_key, violation)

__all__ = [
    "Assignment", "apply_assignment", "find_homomorphism",
    "find_homomorphisms", "has_homomorphism", "homomorphism_between",
    "instance_maps_into", "null_renaming_equivalent", "all_satisfied",
    "constraint_satisfied_for", "find_oblivious_trigger", "find_trigger",
    "head_extends", "is_satisfied", "trigger_key", "violation",
]
