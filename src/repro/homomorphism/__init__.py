"""Homomorphism search and constraint-satisfaction checks."""

from repro.homomorphism.engine import (Assignment, apply_assignment,
                                       find_homomorphism, find_homomorphisms,
                                       find_homomorphisms_through,
                                       has_homomorphism,
                                       homomorphism_between,
                                       instance_maps_into,
                                       is_endomorphism_proper,
                                       null_renaming_equivalent,
                                       reference_engine)
from repro.homomorphism.extend import (all_satisfied,
                                       constraint_satisfied_for,
                                       find_oblivious_trigger, find_trigger,
                                       freeze_assignment,
                                       freeze_assignment_ids,
                                       head_extends, is_satisfied,
                                       trigger_key, violation)
from repro.homomorphism.plan import JoinPlan, compile_plan

__all__ = [
    "Assignment", "apply_assignment", "find_homomorphism",
    "find_homomorphisms", "find_homomorphisms_through",
    "has_homomorphism", "homomorphism_between", "instance_maps_into",
    "is_endomorphism_proper", "null_renaming_equivalent",
    "reference_engine", "all_satisfied", "constraint_satisfied_for",
    "find_oblivious_trigger", "find_trigger", "freeze_assignment",
    "freeze_assignment_ids", "head_extends", "is_satisfied",
    "trigger_key", "violation", "JoinPlan", "compile_plan",
]
