"""Compiled join plans: one access path per constraint body.

The pre-storage-layer engine re-derived its join order on *every*
homomorphism search: each recursion step scanned all pending body
atoms for the most-constrained one and copied the binding dict per
candidate fact.  A :class:`JoinPlan` hoists all of that out of the hot
loop:

* the body is compiled **once** (argument specs split into ground and
  variable positions) and cached on the body tuple -- constraints are
  immutable, so every chase step, head-extension check and delta
  search of a constraint reuses the same plan;
* the atom order is chosen once per ``(pre-bound variables, pinned
  atom)`` signature: a greedy most-constrained-first walk -- which
  positions are bound after each atom is a *static* property of the
  signature -- with ties broken by the selectivity statistics the
  fact store exposes (:meth:`repro.storage.base.FactStore
  .relation_size`);
* execution runs over interned term ids against the store's
  :meth:`~repro.storage.base.FactStore.scan` access path with a single
  mutable binding and trail-based undo, decoding ids back to terms
  only when a binding survives (at most one list index per bound
  variable) and copying the assignment only at yield.

The delta-restricted search of the semi-naive chase pins a fact into
the same plan (:meth:`JoinPlan.pin_binding` + the ``pin`` argument of
:meth:`JoinPlan.execute`): the pinned atom is unified directly against
the delta fact and the remaining atoms run through their own cached
order.

Orders are cached per plan together with the statistics observed when
they were chosen; statistics only break ties, so a stale snapshot can
never cost correctness -- but it *can* cost speed, so the cache is
generation-aware: when the store's mutation counter has moved, the
current relation sizes are re-checked against the decision-time
snapshot and the order is recomputed once any body relation has grown
or shrunk by more than 4x.

:meth:`JoinPlan.execute_batch` is the column-at-a-time twin of
:meth:`JoinPlan.execute`: same compiled specs, same cached orders,
same prune/projection semantics, but each join step binds a *vector*
of candidate rows through the posting-list / hash-join kernels of
:mod:`repro.homomorphism.kernels` instead of one row with trail undo.
It delegates to the tuple path for shapes the kernels cannot win on
(trivial bodies, non-vectorized stores, pinned delta searches over
tiny relations); the tuple path stays authoritative and is the
cross-validation oracle of the ``kernel_parity`` fuzz oracle.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import repeat
from typing import (Dict, Iterator, List, Mapping, Optional, Sequence, Set,
                    Tuple)

from repro.lang.atoms import Atom
from repro.lang.terms import GroundTerm, Variable
from repro.homomorphism.kernels import (PIN_BATCH_MIN_ROWS, candidate_rows,
                                        cross_pairs, hash_build, hash_join,
                                        take)
from repro.obs.metrics import OBS
from repro.storage.base import FactStore

#: A complete (or partial) homomorphism: variable -> ground term.
Assignment = Dict[Variable, GroundTerm]


class _AtomSpec:
    """Compiled shape of one body atom."""

    __slots__ = ("relation", "arity", "args", "ground_positions",
                 "var_positions", "variables")

    def __init__(self, atom: Atom) -> None:
        self.relation = atom.relation
        self.arity = atom.arity
        self.args = atom.args
        ground: List[Tuple[int, GroundTerm]] = []
        by_var: List[Tuple[int, Variable]] = []
        for position, arg in enumerate(atom.args):
            if isinstance(arg, Variable):
                by_var.append((position, arg))
            else:
                ground.append((position, arg))
        self.ground_positions = tuple(ground)
        self.var_positions = tuple(by_var)
        self.variables = frozenset(var for _, var in by_var)


class JoinPlan:
    """A compiled, reorderable join over a fixed atom sequence."""

    __slots__ = ("atoms", "specs", "variables", "_orders")

    def __init__(self, atoms: Sequence[Atom]) -> None:
        self.atoms: Tuple[Atom, ...] = tuple(atoms)
        self.specs: Tuple[_AtomSpec, ...] = tuple(
            _AtomSpec(atom) for atom in self.atoms)
        self.variables: frozenset = frozenset(
            var for spec in self.specs for var in spec.variables)
        #: (prebound variable set, pinned atom index) ->
        #: [order, decision-time relation sizes, store id, generation]
        self._orders: Dict[Tuple[frozenset, Optional[int]], list] = {}

    # ------------------------------------------------------------------
    # Order selection
    # ------------------------------------------------------------------
    def order_for(self, store: FactStore, prebound: frozenset,
                  pin: Optional[int] = None) -> Tuple[int, ...]:
        """The cached atom order for this binding signature.

        Greedy most-constrained-first: repeatedly pick the atom with
        the most statically-bound argument positions, breaking ties by
        the store's cardinality estimate -- the relation size, sharpened
        to the smallest posting list of any ground argument -- and then
        by body position.  Bound-ness propagates statically: after an
        atom is placed, its variables count as bound for the rest.

        Cached orders carry the relation sizes they were decided on.
        While the store's :attr:`~repro.storage.base.FactStore
        .generation` is unchanged the cache hit is two comparisons;
        once it moves, the current sizes are compared against the
        *original* decision-time snapshot (no ratchet drift across
        repeated small shifts) and the order is recomputed when any
        body relation shifted by more than 4x in either direction.
        """
        key = (prebound, pin)
        entry = self._orders.get(key)
        if entry is not None:
            order, snapshot, store_id, generation = entry
            if store_id == id(store) and generation == store.generation:
                if OBS.enabled:
                    OBS.inc("plan.order_cache.hits")
                return order
            current = tuple(store.relation_size(spec.relation)
                            for spec in self.specs)
            if all(cur <= 4 * max(old, 1) and old <= 4 * max(cur, 1)
                   for old, cur in zip(snapshot, current)):
                # Same ballpark: keep the order, refresh the fast path
                # (sizes were just verified against the snapshot).
                entry[2] = id(store)
                entry[3] = store.generation
                if OBS.enabled:
                    OBS.inc("plan.order_cache.revalidated")
                return order
            if OBS.enabled:
                OBS.inc("plan.order_cache.invalidations")
        elif OBS.enabled:
            OBS.inc("plan.order_cache.misses")
        id_of = store.terms.id_of
        bound: Set[Variable] = set(prebound)
        if pin is not None:
            bound |= self.specs[pin].variables
        remaining = [i for i in range(len(self.specs)) if i != pin]
        chosen: List[int] = []
        while remaining:
            best = None
            best_score = None
            for index in remaining:
                spec = self.specs[index]
                bound_args = len(spec.ground_positions) + sum(
                    1 for _, var in spec.var_positions if var in bound)
                estimate = store.relation_size(spec.relation)
                for position, term in spec.ground_positions:
                    tid = id_of(term)
                    posting = (0 if tid is None else store.posting_size(
                        spec.relation, position, tid))
                    if posting < estimate:
                        estimate = posting
                score = (-bound_args, estimate, index)
                if best_score is None or score < best_score:
                    best, best_score = index, score
            chosen.append(best)
            remaining.remove(best)
            bound |= self.specs[best].variables
        order = tuple(chosen)
        self._orders[key] = [
            order,
            tuple(store.relation_size(spec.relation)
                  for spec in self.specs),
            id(store), store.generation]
        return order

    # ------------------------------------------------------------------
    # Delta-fact pinning
    # ------------------------------------------------------------------
    def pin_binding(self, pin: int, fact: Atom,
                    binding: Mapping[Variable, GroundTerm]
                    ) -> Optional[Assignment]:
        """Unify atom ``pin`` with ``fact`` under ``binding``.

        Returns the *new* variable bindings on success (possibly
        empty), or None when the fact does not unify.
        """
        spec = self.specs[pin]
        if fact.relation != spec.relation or fact.arity != spec.arity:
            return None
        args = fact.args
        for position, term in spec.ground_positions:
            if args[position] != term:
                return None
        new_entries: Assignment = {}
        for position, var in spec.var_positions:
            value = args[position]
            known = binding.get(var)
            if known is None:
                known = new_entries.get(var)
            if known is None:
                new_entries[var] = value
            elif known != value:
                return None
        return new_entries

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, store: FactStore,
                partial: Optional[Mapping[Variable, GroundTerm]] = None,
                pin_index: Optional[int] = None,
                pin_entries: Optional[Assignment] = None,
                limit: Optional[int] = None,
                prune=None,
                project: Optional[Tuple[Variable, ...]] = None
                ) -> Iterator[Assignment]:
        """Enumerate homomorphisms of the compiled body into ``store``.

        ``partial`` pre-binds variables; ``pin_index``/``pin_entries``
        (from :meth:`pin_binding`) exclude one atom whose bindings were
        already unified against a delta fact; ``limit`` caps the number
        of yields.  Yielded assignments are fresh term-level dicts
        including the pre-bound variables.

        ``project``, if given, is a projection push-down: instead of
        decoded assignment dicts the iterator yields plain tuples of
        *interned term ids*, one per listed variable (which must all
        occur in the body or be pre-bound).  No term is decoded and no
        dict is built per result -- the access path compiled query
        evaluation (:mod:`repro.cq.evaluate`) runs on, where answers
        are deduplicated and null-filtered at the id level before any
        decoding happens.

        The join runs entirely over interned ids: ``prune``, if given,
        is called with the *id-level* binding (variable -> term id)
        after each extension -- returning True abandons the subtree --
        and terms are decoded only at yield.  (Under the reference
        engine the same prune callables receive term-level bindings;
        the trigger index's predicates accept both.)

        Candidate rows come from the store's id-level ``scan``; a
        suspended enumeration keeps consistent snapshots of the access
        path, so yields that outlive later mutations must be
        re-validated by the caller (the trigger index does).
        """
        if OBS.enabled:
            OBS.inc("plan.tuple_executions")
        table = store.terms
        intern = table.intern
        term_of = table.term
        binding_ids: Dict[Variable, int] = (
            {var: intern(value) for var, value in partial.items()}
            if partial else {})

        if project is None:
            def emit():
                return {var: term_of(tid)
                        for var, tid in binding_ids.items()}
        else:
            def emit():
                return tuple(binding_ids[var] for var in project)
        if prune is not None and prune(binding_ids):
            return
        if pin_entries:
            for var, value in pin_entries.items():
                binding_ids[var] = intern(value)
            if prune is not None and prune(binding_ids):
                return
        specs = self.specs
        # Trivial: empty body, or the pin consumed the only atom.
        if not specs or (len(specs) == 1 and pin_index is not None):
            yield emit()
            return
        scan = store.scan

        # Fully-bound fast path: every plan variable is already bound,
        # so the join degenerates into one id-level containment probe
        # per atom (the shape of head-extension checks on full
        # frontiers -- O(1) row_of lookups on the columnar backend).
        if all(var in binding_ids for var in self.variables):
            for index, spec in enumerate(specs):
                if index == pin_index:
                    continue
                ids = tuple(binding_ids[arg] if isinstance(arg, Variable)
                            else intern(arg) for arg in spec.args)
                if not store.has_row(spec.relation, spec.arity, ids):
                    return
            yield emit()
            return

        # Variables the prune predicate reads (when declared): a True
        # answer on a row that bound none of them holds for every other
        # row of the same scan, so the whole scan can be abandoned.
        prune_reads = getattr(prune, "depends_on", None) \
            if prune is not None else None

        # Single unpinned atom: flat scan loop, no order / recursion.
        if len(specs) - (0 if pin_index is None else 1) == 1:
            index = next(i for i in range(len(specs)) if i != pin_index)
            spec = specs[index]
            bound: List[Tuple[int, int]] = [
                (position, intern(term))
                for position, term in spec.ground_positions]
            unbound: List[Tuple[int, Variable]] = []
            for position, var in spec.var_positions:
                tid = binding_ids.get(var)
                if tid is not None:
                    bound.append((position, tid))
                else:
                    unbound.append((position, var))
            abandon_on_prune = (prune_reads is not None
                                and not any(var in prune_reads
                                            for _, var in unbound))
            produced = 0
            for row in scan(spec.relation, spec.arity, bound):
                local: Dict[Variable, int] = {}
                consistent = True
                for position, var in unbound:
                    tid = row[position]
                    known = local.get(var)
                    if known is None:
                        local[var] = tid
                    elif known != tid:
                        consistent = False
                        break
                if not consistent:
                    continue
                if local:
                    binding_ids.update(local)
                    if prune is not None and prune(binding_ids):
                        for var in local:
                            del binding_ids[var]
                        if abandon_on_prune:
                            return
                        continue
                produced += 1
                yield emit()
                for var in local:
                    del binding_ids[var]
                if limit is not None and produced >= limit:
                    return
            return

        prebound = frozenset(var for var in binding_ids
                             if var in self.variables)
        order = self.order_for(store, prebound, pin_index)
        depth_count = len(order)
        produced = 0
        # Ground argument ids are interned once per execution.
        ground_ids: Dict[int, Tuple[Tuple[int, int], ...]] = {}

        def search(depth: int) -> Iterator[Assignment]:
            nonlocal produced
            if depth == depth_count:
                produced += 1
                yield emit()
                return
            index = order[depth]
            spec = specs[index]
            if spec.ground_positions:
                pairs = ground_ids.get(index)
                if pairs is None:
                    pairs = tuple((position, intern(term))
                                  for position, term in spec.ground_positions)
                    ground_ids[index] = pairs
                bound = list(pairs)
            else:
                bound = []
            unbound: List[Tuple[int, Variable]] = []
            for position, var in spec.var_positions:
                tid = binding_ids.get(var)
                if tid is not None:
                    bound.append((position, tid))
                else:
                    unbound.append((position, var))
            abandon_on_prune = (prune_reads is not None
                                and not any(var in prune_reads
                                            for _, var in unbound))
            for row in scan(spec.relation, spec.arity, bound):
                local: Dict[Variable, int] = {}
                consistent = True
                for position, var in unbound:
                    tid = row[position]
                    known = local.get(var)
                    if known is None:
                        local[var] = tid
                    elif known != tid:
                        consistent = False
                        break
                if not consistent:
                    continue
                if local:
                    binding_ids.update(local)
                    if prune is not None and prune(binding_ids):
                        for var in local:
                            del binding_ids[var]
                        if abandon_on_prune:
                            return
                        continue
                yield from search(depth + 1)
                for var in local:
                    del binding_ids[var]
                if limit is not None and produced >= limit:
                    return

        yield from search(0)

    def execute_batch(self, store: FactStore,
                      partial: Optional[Mapping[Variable, GroundTerm]] = None,
                      pin_index: Optional[int] = None,
                      pin_entries: Optional[Assignment] = None,
                      prune=None,
                      project: Optional[Tuple[Variable, ...]] = None,
                      force: bool = False
                      ) -> Iterator[Assignment]:
        """Column-at-a-time twin of :meth:`execute`.

        Same parameters and the same yielded values (assignment dicts,
        or interned-id tuples under ``project``), but each join step of
        the cached order binds a *vector* of candidate rows: candidate
        sets come from galloping posting-list intersection, shared
        variables join build/probe style over whole columns, and
        disjoint atoms cross-expand as ordinal arithmetic
        (:mod:`repro.homomorphism.kernels`).  Results materialize
        step-by-step -- there is no ``limit`` because nothing is saved
        by stopping early; callers that short-circuit (existence
        probes) belong on the tuple path.

        Shapes the kernels cannot win on delegate to :meth:`execute`
        unless ``force``: stores without a native posting-list
        protocol, trivial bodies (empty / single unpinned atom / fully
        pre-bound -- the tuple path has dedicated fast paths for all
        three), and pinned delta searches whose widest unpinned
        relation holds fewer than
        :data:`~repro.homomorphism.kernels.PIN_BATCH_MIN_ROWS` facts.
        ``force=True`` runs the kernels regardless (the parity tests'
        hook, and how SetStore's emulated protocol gets exercised).

        ``prune`` keeps :meth:`execute`'s semantics at column
        granularity: it is called with id-level bindings, once per
        surviving row, but only at steps that bind a variable the
        predicate declared in ``depends_on`` (every step when
        undeclared) -- between such steps its value cannot change, so
        the skipped calls are exactly the redundant ones.
        """
        specs = self.specs
        unpinned = [spec for index, spec in enumerate(specs)
                    if index != pin_index]
        prebound_names = set(partial or ()) | set(pin_entries or ())
        vectorizable = (
            len(unpinned) > 1
            and not all(var in prebound_names for var in self.variables)
            and (force or (store.supports_batch()
                           and (pin_index is None
                                or max(store.relation_size(spec.relation)
                                       for spec in unpinned)
                                >= PIN_BATCH_MIN_ROWS))))
        if not vectorizable:
            if OBS.enabled:
                OBS.inc("plan.route.tuple")
            yield from self.execute(store, partial, pin_index, pin_entries,
                                    None, prune, project)
            return
        if OBS.enabled:
            OBS.inc("plan.route.batch")

        table = store.terms
        intern = table.intern
        term_of = table.term
        const_ids: Dict[Variable, int] = (
            {var: intern(value) for var, value in partial.items()}
            if partial else {})
        if prune is not None and prune(const_ids):
            return
        if pin_entries:
            for var, value in pin_entries.items():
                const_ids[var] = intern(value)
            if prune is not None and prune(const_ids):
                return
        prune_reads = getattr(prune, "depends_on", None) \
            if prune is not None else None

        prebound = frozenset(var for var in const_ids
                             if var in self.variables)
        order = self.order_for(store, prebound, pin_index)

        # The binding table: one column per free variable, row-aligned.
        columns: Dict[Variable, Sequence[int]] = {}
        nrows = 1   # the seed row carrying the constant bindings

        for index in order:
            spec = specs[index]
            # Classify this atom's positions against the current table.
            fixed: List[Tuple[int, int]] = [
                (position, intern(term))
                for position, term in spec.ground_positions]
            key_vars: List[Tuple[int, Variable]] = []
            new_vars: List[Tuple[int, Variable]] = []
            dup_checks: List[Tuple[int, int]] = []
            first_of: Dict[Variable, int] = {}
            for position, var in spec.var_positions:
                tid = const_ids.get(var)
                if tid is not None:
                    fixed.append((position, tid))
                elif var in columns:
                    key_vars.append((position, var))
                elif var in first_of:
                    dup_checks.append((position, first_of[var]))
                else:
                    first_of[var] = position
                    new_vars.append((position, var))
            rows = candidate_rows(store, spec.relation, spec.arity, fixed)
            if OBS.enabled:
                OBS.inc("plan.batch.rows_scanned", len(rows))
            if not rows:
                return
            gather = ([position for position, _ in key_vars]
                      + [position for position, _ in new_vars]
                      + [position for position, _ in dup_checks])
            col_at = dict(zip(gather, store.batch_columns(
                spec.relation, spec.arity, rows, gather)))
            if dup_checks:
                # Intra-atom repeated variable: both occurrences must
                # agree before the rows enter the join.
                keep = [ordinal for ordinal in range(len(rows))
                        if all(col_at[dup][ordinal] == col_at[first][ordinal]
                               for dup, first in dup_checks)]
                if not keep:
                    return
                if len(keep) != len(rows):
                    rows = take(rows, keep)
                    col_at = {position: take(column, keep)
                              for position, column in col_at.items()}
            if key_vars:
                build = hash_build(
                    [col_at[position] for position, _ in key_vars],
                    len(rows))
                left, right = hash_join(
                    [columns[var] for _, var in key_vars], nrows, build)
            else:
                left, right = cross_pairs(nrows, len(rows))
            if len(left) == 0:
                return
            columns = {var: take(column, left)
                       for var, column in columns.items()}
            for position, var in new_vars:
                columns[var] = take(col_at[position], right)
            nrows = len(left)
            if prune is not None and (
                    prune_reads is None
                    or any(var in prune_reads for _, var in new_vars)):
                var_list = list(columns)
                col_list = [columns[var] for var in var_list]
                probe = dict(const_ids)
                keep = []
                for ordinal in range(nrows):
                    for var, column in zip(var_list, col_list):
                        probe[var] = column[ordinal]
                    if not prune(probe):
                        keep.append(ordinal)
                if not keep:
                    return
                if len(keep) != nrows:
                    columns = {var: take(column, keep)
                               for var, column in columns.items()}
                    nrows = len(keep)

        if project is not None:
            if not project:
                for _ in range(nrows):
                    yield ()
                return
            out_columns = [columns[var] if var in columns
                           else repeat(const_ids[var], nrows)
                           for var in project]
            yield from zip(*out_columns)
            return
        const_terms = {var: term_of(tid) for var, tid in const_ids.items()}
        var_list = list(columns)
        col_list = [columns[var] for var in var_list]
        for values in zip(*col_list):
            assignment = dict(const_terms)
            for var, tid in zip(var_list, values):
                assignment[var] = term_of(tid)
            yield assignment


@lru_cache(maxsize=4096)
def compile_plan(atoms: Tuple[Atom, ...]) -> JoinPlan:
    """The compiled plan of an atom tuple.

    Cached on the tuple itself: constraint bodies and heads are
    immutable tuples, so every search over the same body shares one
    plan (and its accumulated order cache) for the process lifetime.
    """
    return JoinPlan(atoms)
