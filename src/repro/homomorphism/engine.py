"""Homomorphism search between atom sets and database instances.

A homomorphism (Section 2 of the paper) is a mapping
``mu : Delta cup V -> Delta cup Delta_null`` such that (i) constants
map to themselves and (ii) atom images are preserved.  We additionally
require nulls occurring on the *source* side to map to themselves --
the source side of every search in this library is either a constraint
body (variables + constants) or an already-grounded atom set.

The search itself is a backtracking join executed by a compiled
:class:`repro.homomorphism.plan.JoinPlan`: the atom order is chosen
once per binding signature (selectivity-informed most-constrained
first), candidates come from the fact store's interned-id access
paths, and terms are decoded only when a binding survives.
"""

from __future__ import annotations

import os
from typing import (Callable, Dict, Iterable, Iterator, Mapping, Optional,
                    Sequence)

from contextlib import contextmanager

from repro.homomorphism.plan import Assignment, compile_plan
from repro.homomorphism.reference import (reference_find_homomorphisms,
                                          reference_find_homomorphisms_through)
from repro.lang.atoms import Atom
from repro.lang.instance import Instance
from repro.lang.terms import GroundTerm, Null, Variable

__all__ = [
    "Assignment", "apply_assignment", "batch_disabled",
    "batch_mode_active", "find_homomorphism",
    "find_homomorphisms", "find_homomorphisms_through",
    "has_homomorphism", "homomorphism_between", "instance_maps_into",
    "is_endomorphism_proper", "null_renaming_equivalent",
    "reference_engine", "reference_mode_active",
]

#: When True, searches run on the preserved PR 1 algorithm
#: (:mod:`repro.homomorphism.reference`) instead of compiled plans.
_reference_mode = False

#: When True, exhaustive searches on vectorized stores run through
#: :meth:`JoinPlan.execute_batch` (the column-at-a-time kernels).
#: Defaults on; ``REPRO_BATCH=0`` (or ``off``/``false``) disables it
#: process-wide, :func:`batch_disabled` disables it per block.
_batch_mode = os.environ.get("REPRO_BATCH", "").strip().lower() \
    not in ("0", "off", "false", "no")


@contextmanager
def reference_engine():
    """Temporarily route all searches through the pre-plan engine.

    The reference oracle for the compiled-plan executor -- used by the
    cross-validation tests and as the baseline of the storage-layer
    benchmarks (``benchmarks/bench_chase_scaling.py``).  Not
    thread-safe; intended for tests and benchmarks only.
    """
    global _reference_mode
    previous = _reference_mode
    _reference_mode = True
    try:
        yield
    finally:
        _reference_mode = previous


def reference_mode_active() -> bool:
    """Is a :func:`reference_engine` context currently in force?

    Layers with their own compiled fast paths (the compiled CQ
    evaluation of :mod:`repro.cq.evaluate`) consult this so that one
    ``reference_engine()`` block routes the *whole* stack through the
    pre-plan algorithms.
    """
    return _reference_mode


@contextmanager
def batch_disabled():
    """Temporarily pin every search to the tuple-at-a-time path.

    The cross-validation twin of :func:`reference_engine`, one layer
    up: inside the block, :meth:`JoinPlan.execute_batch` is never
    chosen, so a chase / query run inside ``batch_disabled()`` is the
    oracle against which the column-at-a-time kernels are checked (the
    ``kernel_parity`` fuzz oracle, the batch parity tests, and the
    tuple baseline of ``bench_join_kernels.py``).  Not thread-safe;
    intended for tests and benchmarks only.
    """
    global _batch_mode
    previous = _batch_mode
    _batch_mode = False
    try:
        yield
    finally:
        _batch_mode = previous


def batch_mode_active() -> bool:
    """May exhaustive searches take the column-at-a-time path?

    Consulted by the routing sites (:func:`find_homomorphisms_through`
    and the compiled CQ evaluation of :mod:`repro.cq.evaluate`); the
    per-shape fallbacks of :meth:`JoinPlan.execute_batch` still apply
    on top.
    """
    return _batch_mode and not _reference_mode


def find_homomorphisms(atoms: Sequence[Atom], instance: Instance,
                       partial: Optional[Mapping[Variable, GroundTerm]] = None,
                       limit: Optional[int] = None,
                       prune: Optional[Callable[[Mapping[Variable, GroundTerm]],
                                                bool]] = None,
                       batch: bool = False
                       ) -> Iterator[Assignment]:
    """Enumerate homomorphisms from ``atoms`` into ``instance``.

    ``partial`` pre-binds some variables (used for head-extension
    checks, where the universal variables are already fixed).  Yields
    complete assignments for the variables of ``atoms`` (pre-bound
    variables are included).  ``limit`` caps the number of results.

    ``prune``, if given, is called with each (partial) binding after an
    extension; returning True abandons the whole subtree.  The trigger
    index uses this to skip bindings whose frontier is already known to
    be satisfied (every completion would be satisfied too).

    ``batch`` opts an exhaustive enumeration into the column-at-a-time
    path (subject to :func:`batch_mode_active` and the plan's own
    shape fallbacks).  It is **opt-in** here because most callers of
    this entry point short-circuit or mutate the instance while
    iterating -- the chase runners break out after the first applicable
    trigger, the core search stops on the first improving endomorphism
    -- and materializing the full result set first would do strictly
    wasted work.  ``limit`` forces the tuple path for the same reason.
    """
    if _reference_mode:
        return reference_find_homomorphisms(atoms, instance, partial=partial,
                                            limit=limit, prune=prune)
    plan = compile_plan(tuple(atoms))
    if batch and limit is None and batch_mode_active():
        return plan.execute_batch(instance.store, partial=partial,
                                  prune=prune)
    return plan.execute(instance.store, partial=partial, limit=limit,
                        prune=prune)


def find_homomorphisms_through(atoms: Sequence[Atom], instance: Instance,
                               delta_fact: Atom,
                               partial: Optional[Mapping[Variable, GroundTerm]] = None,
                               limit: Optional[int] = None,
                               prune: Optional[Callable[[Mapping[Variable, GroundTerm]],
                                                        bool]] = None
                               ) -> Iterator[Assignment]:
    """Enumerate homomorphisms whose image uses ``delta_fact``.

    The semi-naive restriction (cf. delta rules in datalog evaluation):
    ``delta_fact`` is a fact just added to ``instance``, and only
    homomorphisms mapping at least one atom of ``atoms`` onto it are of
    interest -- every other homomorphism already existed before the
    insertion.  Each atom that unifies with ``delta_fact`` is pinned to
    it inside the body's compiled plan and the remaining atoms are
    solved against the full instance.

    A homomorphism using the delta fact at several positions is
    yielded once: when more than one atom unifies, results are
    deduplicated on their frozen assignment.  In the common single-pin
    case -- the delta fact unifies with exactly one body atom -- no
    duplicate can arise (within one pin, a complete binding determines
    every matched fact), so the per-yield dedup hashing is skipped
    entirely.

    This is the workhorse of :class:`repro.chase.triggers.TriggerIndex`:
    after a chase step adds facts, only these restricted searches run,
    instead of re-enumerating every body homomorphism from scratch.
    """
    if _reference_mode:
        yield from reference_find_homomorphisms_through(
            atoms, instance, delta_fact, partial=partial, limit=limit,
            prune=prune)
        return
    plan = compile_plan(tuple(atoms))
    store = instance.store
    base: Assignment = dict(partial) if partial else {}
    pins = []
    for index in range(len(plan.atoms)):
        entries = plan.pin_binding(index, delta_fact, base)
        if entries is not None:
            pins.append((index, entries))
    if not pins:
        return
    if len(pins) == 1:
        index, entries = pins[0]
        if limit is None and prune is None and _batch_mode \
                and not _reference_mode and store.supports_batch():
            # Exhaustive, prune-free single-pin searches vectorize;
            # execute_batch still falls back per shape (tiny delta
            # neighborhoods stay tuple-at-a-time).  Searches carrying a
            # prune predicate stay on the tuple path even though
            # execute_batch honors prune: the trigger index's
            # predicates are *stateful across generator suspensions*
            # (a frontier fires between pulls and the resumed scan is
            # abandoned), so breadth-first materialization would do all
            # the join work the prune exists to skip.
            yield from plan.execute_batch(store, partial=base,
                                          pin_index=index,
                                          pin_entries=entries)
            return
        yield from plan.execute(store, partial=base, pin_index=index,
                                pin_entries=entries, limit=limit,
                                prune=prune)
        return
    seen: set = set()
    produced = 0
    for index, entries in pins:
        for assignment in plan.execute(store, partial=base, pin_index=index,
                                       pin_entries=entries, prune=prune):
            key = frozenset(assignment.items())
            if key in seen:
                continue
            seen.add(key)
            produced += 1
            yield assignment
            if limit is not None and produced >= limit:
                return


def find_homomorphism(atoms: Sequence[Atom], instance: Instance,
                      partial: Optional[Mapping[Variable, GroundTerm]] = None
                      ) -> Optional[Assignment]:
    """The first homomorphism, or None."""
    for assignment in find_homomorphisms(atoms, instance, partial, limit=1):
        return assignment
    return None


def has_homomorphism(atoms: Sequence[Atom], instance: Instance,
                     partial: Optional[Mapping[Variable, GroundTerm]] = None
                     ) -> bool:
    """Existence check."""
    return find_homomorphism(atoms, instance, partial) is not None


def homomorphism_between(source: Iterable[Atom], target: Iterable[Atom],
                         partial: Optional[Mapping[Variable, GroundTerm]] = None
                         ) -> Optional[Assignment]:
    """A homomorphism between two plain atom sets (wraps the target)."""
    return find_homomorphism(list(source), Instance(target), partial)


def apply_assignment(atoms: Iterable[Atom],
                     assignment: Mapping[Variable, GroundTerm]
                     ) -> list[Atom]:
    """Ground ``atoms`` under ``assignment`` (identity elsewhere)."""
    mapping = dict(assignment)
    return [atom.substitute(mapping) for atom in atoms]


def is_endomorphism_proper(instance: Instance, assignment: Mapping) -> bool:
    """True when ``assignment`` (on nulls) is non-injective or drops a
    null -- i.e. maps some null to a constant (or, more generally, to
    any non-null value).

    Used by the core computation as a *can-this-shrink* filter: an
    endomorphism that is injective on the nulls of ``instance`` and
    maps nulls only to nulls is a null permutation, so its image has
    exactly as many facts as ``instance`` and folding along it can
    never make progress.  (``instance`` is part of the signature for
    symmetry with the other instance-level predicates; the test is a
    property of the assignment alone.)
    """
    values = list(assignment.values())
    if len(set(values)) < len(values):
        return True
    return any(not isinstance(value, Null) for value in values)


def null_renaming_equivalent(left: Instance, right: Instance) -> bool:
    """Homomorphic equivalence: homomorphisms both ways.

    The paper (after [21]) uses this to compare results of different
    chase orders.  Nulls on the source side must be treated as
    *movable*, so we first rename each side's nulls to fresh variables.
    """
    return (instance_maps_into(left, right)
            and instance_maps_into(right, left))


def instance_maps_into(source: Instance, target: Instance) -> bool:
    """Is there a homomorphism ``source -> target`` (nulls movable)?"""
    renaming: Dict[Null, Variable] = {
        null: Variable(f"__h{null.label}") for null in source.nulls()}
    atoms = [atom.substitute(dict(renaming)) for atom in source]
    return has_homomorphism(atoms, target)
