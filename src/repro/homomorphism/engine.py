"""Homomorphism search between atom sets and database instances.

A homomorphism (Section 2 of the paper) is a mapping
``mu : Delta cup V -> Delta cup Delta_null`` such that (i) constants
map to themselves and (ii) atom images are preserved.  We additionally
require nulls occurring on the *source* side to map to themselves --
the source side of every search in this library is either a constraint
body (variables + constants) or an already-grounded atom set.

The search is a classic most-constrained-first backtracking join that
exploits the instance's ``(relation, position, term)`` index.
"""

from __future__ import annotations

from typing import (Callable, Dict, Iterable, Iterator, Mapping, Optional,
                    Sequence)

from repro.lang.atoms import Atom
from repro.lang.instance import Instance
from repro.lang.terms import Constant, GroundTerm, Null, Term, Variable

Assignment = Dict[Variable, GroundTerm]


def _resolve(term: Term, binding: Mapping[Variable, GroundTerm]
             ) -> Optional[GroundTerm]:
    """The ground value of ``term`` under ``binding`` or None if unbound."""
    if isinstance(term, Variable):
        return binding.get(term)
    # Constants and nulls are rigid on the source side.
    return term  # type: ignore[return-value]


def _bound_count(atom: Atom, binding: Mapping[Variable, GroundTerm]) -> int:
    return sum(1 for arg in atom.args if _resolve(arg, binding) is not None)


def _match_atom(atom: Atom, fact: Atom, binding: Assignment
                ) -> Optional[Assignment]:
    """Try to unify ``atom`` with ``fact`` under ``binding``.

    Returns the (possibly extended) binding on success, None otherwise.
    The returned dict is a fresh copy only when new variables are bound.
    """
    if atom.relation != fact.relation or atom.arity != fact.arity:
        return None
    new_entries: list[tuple[Variable, GroundTerm]] = []
    local: Dict[Variable, GroundTerm] = {}
    for arg, value in zip(atom.args, fact.args):
        if isinstance(arg, Variable):
            bound = binding.get(arg)
            if bound is None:
                bound = local.get(arg)
            if bound is None:
                local[arg] = value
                new_entries.append((arg, value))
            elif bound != value:
                return None
        elif arg != value:
            # Constants and source-side nulls must match exactly.
            return None
    if not new_entries:
        return binding if isinstance(binding, dict) else dict(binding)
    extended = dict(binding)
    extended.update(new_entries)
    return extended


def _candidates(instance: Instance, atom: Atom, binding: Assignment
                ) -> Iterable[Atom]:
    """Facts of the instance that could match ``atom`` under ``binding``."""
    bound: Dict[int, GroundTerm] = {}
    for i, arg in enumerate(atom.args):
        value = _resolve(arg, binding)
        if value is not None:
            bound[i] = value
    return instance.matching(atom.relation, bound)


def find_homomorphisms(atoms: Sequence[Atom], instance: Instance,
                       partial: Optional[Mapping[Variable, GroundTerm]] = None,
                       limit: Optional[int] = None,
                       prune: Optional[Callable[[Mapping[Variable, GroundTerm]],
                                                bool]] = None
                       ) -> Iterator[Assignment]:
    """Enumerate homomorphisms from ``atoms`` into ``instance``.

    ``partial`` pre-binds some variables (used for head-extension
    checks, where the universal variables are already fixed).  Yields
    complete assignments for the variables of ``atoms`` (pre-bound
    variables are included).  ``limit`` caps the number of results.

    ``prune``, if given, is called with each (partial) binding after an
    extension; returning True abandons the whole subtree.  The trigger
    index uses this to skip bindings whose frontier is already known to
    be satisfied (every completion would be satisfied too).
    """
    binding: Assignment = dict(partial) if partial else {}
    remaining = list(atoms)
    produced = 0
    if prune is not None and prune(binding):
        return

    def search(pending: list[Atom], current: Assignment) -> Iterator[Assignment]:
        nonlocal produced
        if limit is not None and produced >= limit:
            return
        if not pending:
            produced += 1
            yield dict(current)
            return
        # Most-constrained-first: pick the atom with the most bound args.
        best_index = max(range(len(pending)),
                         key=lambda i: _bound_count(pending[i], current))
        atom = pending[best_index]
        rest = pending[:best_index] + pending[best_index + 1:]
        for fact in _candidates(instance, atom, current):
            extended = _match_atom(atom, fact, current)
            if extended is None:
                continue
            if (prune is not None and extended is not current
                    and prune(extended)):
                continue
            yield from search(rest, extended)
            if limit is not None and produced >= limit:
                return

    yield from search(remaining, binding)


def find_homomorphisms_through(atoms: Sequence[Atom], instance: Instance,
                               delta_fact: Atom,
                               partial: Optional[Mapping[Variable, GroundTerm]] = None,
                               limit: Optional[int] = None,
                               prune: Optional[Callable[[Mapping[Variable, GroundTerm]],
                                                        bool]] = None
                               ) -> Iterator[Assignment]:
    """Enumerate homomorphisms whose image uses ``delta_fact``.

    The semi-naive restriction (cf. delta rules in datalog evaluation):
    ``delta_fact`` is a fact just added to ``instance``, and only
    homomorphisms mapping at least one atom of ``atoms`` onto it are of
    interest -- every other homomorphism already existed before the
    insertion.  For each atom that unifies with ``delta_fact``, the
    atom is pinned to it and the remaining atoms are solved against the
    full instance.  Results are deduplicated (a homomorphism using the
    delta fact at two positions is yielded once).

    This is the workhorse of :class:`repro.chase.triggers.TriggerIndex`:
    after a chase step adds facts, only these restricted searches run,
    instead of re-enumerating every body homomorphism from scratch.
    """
    atoms = list(atoms)
    base: Assignment = dict(partial) if partial else {}
    seen: set[frozenset] = set()
    produced = 0
    for pin, atom in enumerate(atoms):
        pinned = _match_atom(atom, delta_fact, base)
        if pinned is None:
            continue
        rest = atoms[:pin] + atoms[pin + 1:]
        for assignment in find_homomorphisms(rest, instance, partial=pinned,
                                             prune=prune):
            key = frozenset(assignment.items())
            if key in seen:
                continue
            seen.add(key)
            produced += 1
            yield assignment
            if limit is not None and produced >= limit:
                return


def find_homomorphism(atoms: Sequence[Atom], instance: Instance,
                      partial: Optional[Mapping[Variable, GroundTerm]] = None
                      ) -> Optional[Assignment]:
    """The first homomorphism, or None."""
    for assignment in find_homomorphisms(atoms, instance, partial, limit=1):
        return assignment
    return None


def has_homomorphism(atoms: Sequence[Atom], instance: Instance,
                     partial: Optional[Mapping[Variable, GroundTerm]] = None
                     ) -> bool:
    """Existence check."""
    return find_homomorphism(atoms, instance, partial) is not None


def homomorphism_between(source: Iterable[Atom], target: Iterable[Atom],
                         partial: Optional[Mapping[Variable, GroundTerm]] = None
                         ) -> Optional[Assignment]:
    """A homomorphism between two plain atom sets (wraps the target)."""
    return find_homomorphism(list(source), Instance(target), partial)


def apply_assignment(atoms: Iterable[Atom],
                     assignment: Mapping[Variable, GroundTerm]
                     ) -> list[Atom]:
    """Ground ``atoms`` under ``assignment`` (identity elsewhere)."""
    return [atom.substitute(dict(assignment)) for atom in atoms]


def is_endomorphism_proper(instance: Instance, assignment: Mapping) -> bool:
    """True when ``assignment`` (on nulls) is non-injective or drops a
    null -- used by the core computation."""
    values = set(assignment.values())
    return len(values) < len(assignment)


def null_renaming_equivalent(left: Instance, right: Instance) -> bool:
    """Homomorphic equivalence: homomorphisms both ways.

    The paper (after [21]) uses this to compare results of different
    chase orders.  Nulls on the source side must be treated as
    *movable*, so we first rename each side's nulls to fresh variables.
    """
    return (instance_maps_into(left, right)
            and instance_maps_into(right, left))


def instance_maps_into(source: Instance, target: Instance) -> bool:
    """Is there a homomorphism ``source -> target`` (nulls movable)?"""
    renaming: Dict[Null, Variable] = {
        null: Variable(f"__h{null.label}") for null in source.nulls()}
    atoms = [atom.substitute(dict(renaming)) for atom in source]
    return has_homomorphism(atoms, target)
