"""The pre-plan homomorphism search, kept as a reference oracle.

This module preserves the engine exactly as it shipped with the
incremental trigger index (PR 1): a most-constrained-first
backtracking join that re-derives its atom order on every recursion
step, pulls candidates through ``Instance.matching`` (set
intersections of boxed atoms) and copies the binding dict on every
extension.

It serves two purposes, mirroring how ``chase(..., naive=True)`` is
the oracle for the trigger index:

* **cross-validation** -- the compiled-plan executor of
  :mod:`repro.homomorphism.plan` must enumerate exactly the same
  assignments (``tests/homomorphism/test_plan.py``);
* **baseline** -- ``benchmarks/bench_chase_scaling.py`` measures the
  storage-layer speedup against this path via
  :func:`repro.homomorphism.engine.reference_engine`.

Do not "optimize" this module; its value is staying put.
"""

from __future__ import annotations

from typing import (Callable, Dict, Iterable, Iterator, Mapping, Optional,
                    Sequence)

from repro.lang.atoms import Atom
from repro.lang.terms import GroundTerm, Variable

Assignment = Dict[Variable, GroundTerm]


def _resolve(term, binding: Mapping[Variable, GroundTerm]
             ) -> Optional[GroundTerm]:
    """The ground value of ``term`` under ``binding`` or None if unbound."""
    if isinstance(term, Variable):
        return binding.get(term)
    # Constants and nulls are rigid on the source side.
    return term


def _bound_count(atom: Atom, binding: Mapping[Variable, GroundTerm]) -> int:
    return sum(1 for arg in atom.args if _resolve(arg, binding) is not None)


def _match_atom(atom: Atom, fact: Atom, binding: Assignment
                ) -> Optional[Assignment]:
    """Try to unify ``atom`` with ``fact`` under ``binding``.

    Returns the (possibly extended) binding on success, None otherwise.
    The returned dict is a fresh copy only when new variables are bound.
    """
    if atom.relation != fact.relation or atom.arity != fact.arity:
        return None
    new_entries: list[tuple[Variable, GroundTerm]] = []
    local: Dict[Variable, GroundTerm] = {}
    for arg, value in zip(atom.args, fact.args):
        if isinstance(arg, Variable):
            bound = binding.get(arg)
            if bound is None:
                bound = local.get(arg)
            if bound is None:
                local[arg] = value
                new_entries.append((arg, value))
            elif bound != value:
                return None
        elif arg != value:
            # Constants and source-side nulls must match exactly.
            return None
    if not new_entries:
        return binding if isinstance(binding, dict) else dict(binding)
    extended = dict(binding)
    extended.update(new_entries)
    return extended


def _candidates(instance, atom: Atom, binding: Assignment) -> Iterable[Atom]:
    """Facts of the instance that could match ``atom`` under ``binding``."""
    bound: Dict[int, GroundTerm] = {}
    for i, arg in enumerate(atom.args):
        value = _resolve(arg, binding)
        if value is not None:
            bound[i] = value
    return instance.matching(atom.relation, bound)


def reference_find_homomorphisms(atoms: Sequence[Atom], instance,
                                 partial: Optional[Mapping[Variable, GroundTerm]] = None,
                                 limit: Optional[int] = None,
                                 prune: Optional[Callable[[Mapping[Variable, GroundTerm]],
                                                          bool]] = None
                                 ) -> Iterator[Assignment]:
    """PR 1's ``find_homomorphisms``: per-call order, per-step copies."""
    binding: Assignment = dict(partial) if partial else {}
    remaining = list(atoms)
    produced = 0
    if prune is not None and prune(binding):
        return

    def search(pending: list[Atom], current: Assignment) -> Iterator[Assignment]:
        nonlocal produced
        if limit is not None and produced >= limit:
            return
        if not pending:
            produced += 1
            yield dict(current)
            return
        # Most-constrained-first: pick the atom with the most bound args.
        best_index = max(range(len(pending)),
                         key=lambda i: _bound_count(pending[i], current))
        atom = pending[best_index]
        rest = pending[:best_index] + pending[best_index + 1:]
        for fact in _candidates(instance, atom, current):
            extended = _match_atom(atom, fact, current)
            if extended is None:
                continue
            if (prune is not None and extended is not current
                    and prune(extended)):
                continue
            yield from search(rest, extended)
            if limit is not None and produced >= limit:
                return

    yield from search(remaining, binding)


def reference_find_homomorphisms_through(atoms: Sequence[Atom], instance,
                                         delta_fact: Atom,
                                         partial: Optional[Mapping[Variable, GroundTerm]] = None,
                                         limit: Optional[int] = None,
                                         prune: Optional[Callable[[Mapping[Variable, GroundTerm]],
                                                                  bool]] = None
                                         ) -> Iterator[Assignment]:
    """PR 1's delta-restricted search (always pays the dedup hash)."""
    atoms = list(atoms)
    base: Assignment = dict(partial) if partial else {}
    seen: set = set()
    produced = 0
    for pin, atom in enumerate(atoms):
        pinned = _match_atom(atom, delta_fact, base)
        if pinned is None:
            continue
        rest = atoms[:pin] + atoms[pin + 1:]
        for assignment in reference_find_homomorphisms(rest, instance,
                                                       partial=pinned,
                                                       prune=prune):
            key = frozenset(assignment.items())
            if key in seen:
                continue
            seen.add(key)
            produced += 1
            yield assignment
            if limit is not None and produced >= limit:
                return
