"""Column-at-a-time join kernels over interned term ids.

The primitives behind :meth:`repro.homomorphism.plan.JoinPlan
.execute_batch`: instead of binding one candidate row at a time with
trail undo, each join step manipulates whole columns --

* :func:`candidate_rows` narrows an atom's table to the rows matching
  its ground / constant-bound positions by galloping posting-list
  intersection (:class:`repro.storage.base.PostingList`), never
  touching a row the index can rule out;
* :func:`hash_build` / :func:`hash_join` join an atom's candidate
  columns against the accumulated binding table build/probe style,
  producing aligned ordinal vectors instead of nested loops;
* :func:`cross_pairs` expands the no-shared-variable case (the
  cross-product shape of ``bench_chase_scaling``'s worst family) as
  two array multiplications;
* :func:`take` gathers a column through an ordinal vector at C speed
  (``operator.itemgetter``).

Everything here speaks the backend-neutral posting-list protocol of
:class:`repro.storage.base.FactStore`, so the kernels run unchanged --
if not equally fast -- on every backend; batch-vs-tuple parity across
backends is fuzzed by the ``kernel_parity`` oracle.
"""

from __future__ import annotations

from array import array
from operator import itemgetter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import OBS
from repro.storage.base import FactStore, PostingList
from repro.storage.interning import TermId

#: Pinned (delta) searches whose widest unpinned relation is smaller
#: than this stay on the tuple path: the per-execution setup of the
#: batch kernels only pays for itself once a step can amortize it over
#: a reasonable column.
PIN_BATCH_MIN_ROWS = 32


def candidate_rows(store: FactStore, relation: str, arity: int,
                   fixed: Sequence[Tuple[int, TermId]]
                   ) -> Sequence[int]:
    """Row keys of ``relation``/``arity`` matching every fixed
    ``(position, term-id)`` pair, by posting-list intersection.

    Positions the store cannot serve a posting list for (``None``)
    are verified by a gather-and-filter residual pass instead.
    """
    postings: List[PostingList] = []
    residual: List[Tuple[int, TermId]] = []
    for position, tid in fixed:
        plist = store.posting_list(relation, arity, position, tid)
        if plist is None:
            residual.append((position, tid))
        elif len(plist) == 0:
            return ()
        else:
            postings.append(plist)
    if postings:
        if OBS.enabled:
            OBS.inc("kernels.postings_intersected", len(postings))
        postings.sort(key=len)
        acc = postings[0]
        for nxt in postings[1:]:
            if len(acc) == 0:
                break
            acc = acc.intersect(nxt)
        rows: Sequence[int] = acc.materialize()
    else:
        rows = store.row_universe(relation, arity).materialize()
    if residual and rows:
        columns = store.batch_columns(
            relation, arity, rows, [position for position, _ in residual])
        keep = [ordinal for ordinal in range(len(rows))
                if all(column[ordinal] == tid
                       for column, (_, tid) in zip(columns, residual))]
        rows = take(rows, keep)
    return rows


def take(column: Sequence, ordinals: Sequence[int]) -> Sequence:
    """Gather ``column`` through an ordinal vector (C-speed when the
    vector is long enough for itemgetter to win)."""
    if not ordinals:
        return ()
    if len(ordinals) == 1:
        return (column[ordinals[0]],)
    return itemgetter(*ordinals)(column)


def hash_build(key_columns: Sequence[Sequence[TermId]], count: int
               ) -> Dict:
    """Build side of the hash join: key tuple (or bare id, for
    single-column keys) -> list of candidate-row ordinals."""
    table: Dict = {}
    if OBS.enabled:
        OBS.observe("kernels.hash_build_rows", count)
    if len(key_columns) == 1:
        column = key_columns[0]
        for ordinal in range(count):
            key = column[ordinal]
            bucket = table.get(key)
            if bucket is None:
                table[key] = [ordinal]
            else:
                bucket.append(ordinal)
    else:
        for ordinal, key in enumerate(zip(*key_columns)):
            bucket = table.get(key)
            if bucket is None:
                table[key] = [ordinal]
            else:
                bucket.append(ordinal)
    return table


def hash_join(probe_columns: Sequence[Sequence[TermId]], nrows: int,
              build: Dict) -> Tuple[Sequence[int], Sequence[int]]:
    """Probe side: aligned ``(left, right)`` ordinal vectors, one entry
    per join match, in table-major (probe-row) order -- the batch
    analogue of the tuple path's DFS enumeration order."""
    left = array("q")
    right = array("q")
    if OBS.enabled:
        OBS.observe("kernels.hash_probe_rows", nrows)
    if len(probe_columns) == 1:
        column = probe_columns[0]
        get = build.get
        for ordinal in range(nrows):
            matches = get(column[ordinal])
            if matches:
                for match in matches:
                    left.append(ordinal)
                    right.append(match)
    else:
        get = build.get
        for ordinal, key in enumerate(zip(*probe_columns)):
            matches = get(key)
            if matches:
                for match in matches:
                    left.append(ordinal)
                    right.append(match)
    return left, right


def cross_pairs(nleft: int, nright: int
                ) -> Tuple[Sequence[int], Sequence[int]]:
    """Ordinal vectors of the full cross product, table-major."""
    right = array("q", range(nright)) * nleft
    left = array("q")
    for ordinal in range(nleft):
        left.extend(array("q", (ordinal,)) * nright)
    return left, right
