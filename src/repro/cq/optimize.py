"""Chase-based semantic query optimization (Section 4's scenario,
after Deutsch-Popa-Tannen [1]).

The pipeline: freeze the query, chase it with the constraints (using a
data-dependent termination guard), unfreeze into the *universal plan*,
then enumerate subqueries of the universal plan that chase back to a
homomorphic copy of it -- each is an equivalent (and hopefully
cheaper) rewriting.  On the paper's travel-agency scenario this
discovers ``q2''`` (join elimination) and ``q2'''`` (join
introduction) from ``q2``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, Iterable, List, Optional, Sequence

from repro.chase.core import core
from repro.chase.result import ChaseStatus
from repro.chase.runner import chase, DEFAULT_MAX_STEPS
from repro.cq.containment import equivalent
from repro.cq.query import ConjunctiveQuery, unfreeze
from repro.datadep.monitored_chase import monitored_chase
from repro.lang.atoms import Atom, atoms_variables
from repro.lang.constraints import Constraint
from repro.lang.errors import NonTerminationBudget
from repro.lang.instance import Instance
from repro.lang.terms import Constant, Null, Term, Variable

#: Tags marking the frozen terms of :func:`minimize_query` -- tuple
#: values cannot collide with any parsed constant (str/number).
_HEAD_TAG = "__cq_head__"
_NULL_TAG = "__cq_null__"


@dataclass
class OptimizationResult:
    """Outcome of the SQO pipeline for one query."""

    original: ConjunctiveQuery
    universal_plan: ConjunctiveQuery
    rewritings: List[ConjunctiveQuery] = field(default_factory=list)

    def minimal_rewritings(self) -> List[ConjunctiveQuery]:
        """The rewritings with the fewest body atoms."""
        if not self.rewritings:
            return []
        best = min(len(q.body) for q in self.rewritings)
        return [q for q in self.rewritings if len(q.body) == best]


def universal_plan(query: ConjunctiveQuery, sigma: Iterable[Constraint],
                   cycle_limit: Optional[int] = 3,
                   max_steps: int = DEFAULT_MAX_STEPS) -> ConjunctiveQuery:
    """Chase the query into its universal plan [1].

    With ``cycle_limit`` set, the monitored chase of Section 4.2 guards
    against divergence; :class:`NonTerminationBudget` is raised when
    the guard trips (the caller should then fall back to evaluating the
    original query -- e.g. ``q1`` of the travel scenario diverges).
    """
    frozen, var_map = query.freeze()
    sigma = list(sigma)
    if cycle_limit is not None:
        monitored = monitored_chase(frozen, sigma, cycle_limit,
                                    max_steps=max_steps)
        result = monitored.result
    else:
        result = chase(frozen, sigma, max_steps=max_steps)
    if result.status is not ChaseStatus.TERMINATED:
        raise NonTerminationBudget(
            f"chase of {query.name} did not terminate "
            f"({result.status.value}); no universal plan exists")
    return unfreeze(result.instance, var_map, query)


def minimize_query(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Classical CQ minimization via the core: fold the body onto
    itself by head-preserving endomorphisms until no proper fold
    remains.

    The body is frozen into an instance with head variables as tagged
    *constants* (endomorphisms must fix them -- the head-preservation
    requirement) and existential variables as nulls (movable), the
    greedy core computation of :mod:`repro.chase.core` shrinks it, and
    the retract unfreezes back into a query.  Labeled nulls already
    occurring in the body are frozen as tagged constants too: source-
    side nulls match themselves exactly during evaluation (see
    :mod:`repro.homomorphism.engine`), so minimization must keep them
    rigid rather than let the core fold them.  The result is
    equivalent to the input (the core is a homomorphic retract both
    ways) with a minimal body -- the "minimize via the core" step of
    the Section 4 pipeline, polynomial-ish where the subquery
    enumeration of :func:`optimize` is exponential.
    """
    head_vars = query.head_variables()
    freeze: Dict[Term, Term] = {}
    for index, var in enumerate(sorted(query.variables(),
                                       key=lambda v: v.name)):
        if var in head_vars:
            freeze[var] = Constant((_HEAD_TAG, var.name))
        else:
            freeze[var] = Null(-(index + 1) - 20_000_000)
    for null in sorted({arg for atom in query.body for arg in atom.args
                        if isinstance(arg, Null)},
                       key=lambda n: n.label):
        freeze[null] = Constant((_NULL_TAG, null.label))
    thaw: Dict[Term, Term] = {term: source
                              for source, term in freeze.items()}
    folded = core(Instance(atom.substitute(freeze)
                           for atom in query.body))
    body: List[Atom] = []
    for fact in sorted(folded.facts(), key=str):
        args: List[Term] = []
        for arg in fact.args:
            if (isinstance(arg, Null)
                    or (isinstance(arg, Constant)
                        and isinstance(arg.value, tuple)
                        and arg.value[0] in (_HEAD_TAG, _NULL_TAG))):
                args.append(thaw[arg])
            else:
                args.append(arg)
        body.append(Atom(fact.relation, tuple(args)))
    return query.with_body(body)


def optimize(query: ConjunctiveQuery, sigma: Iterable[Constraint],
             cycle_limit: Optional[int] = 3,
             max_steps: int = DEFAULT_MAX_STEPS,
             max_subquery_atoms: Optional[int] = None) -> OptimizationResult:
    """Full SQO: universal plan plus equivalent subquery rewritings.

    A subquery of the universal plan qualifies iff it keeps every head
    variable and is Sigma-equivalent to the original query (checked by
    chase-and-homomorphism, as in [1]).  ``max_subquery_atoms`` caps
    the enumeration for large plans.
    """
    sigma = list(sigma)
    plan = universal_plan(query, sigma, cycle_limit, max_steps)
    head_vars = query.head_variables()
    atoms = list(plan.body)
    rewritings: List[ConjunctiveQuery] = []
    limit = len(atoms) if max_subquery_atoms is None else max_subquery_atoms
    for size in range(1, min(limit, len(atoms)) + 1):
        for subset in combinations(atoms, size):
            if not head_vars <= atoms_variables(subset):
                continue
            candidate = query.with_body(subset)
            try:
                if equivalent(candidate, query, sigma, max_steps,
                              cycle_limit=cycle_limit):
                    rewritings.append(candidate)
            except NonTerminationBudget:
                continue
    return OptimizationResult(original=query, universal_plan=plan,
                              rewritings=rewritings)
