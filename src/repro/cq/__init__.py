"""Conjunctive queries and semantic query optimization."""

from repro.cq.containment import contained_in, equivalent
from repro.cq.optimize import (optimize, OptimizationResult, universal_plan)
from repro.cq.query import ConjunctiveQuery, unfreeze

__all__ = [
    "contained_in", "equivalent", "optimize", "OptimizationResult",
    "universal_plan", "ConjunctiveQuery", "unfreeze",
]
