"""Conjunctive queries, compiled evaluation and semantic query
optimization."""

from repro.cq.containment import contained_in, equivalent
from repro.cq.evaluate import (compile_query, CompiledQuery,
                               compiled_answers, reference_answers)
from repro.cq.optimize import (minimize_query, optimize,
                               OptimizationResult, universal_plan)
from repro.cq.query import ConjunctiveQuery, unfreeze

__all__ = [
    "compile_query", "CompiledQuery", "compiled_answers",
    "contained_in", "equivalent", "minimize_query", "optimize",
    "OptimizationResult", "reference_answers", "universal_plan",
    "ConjunctiveQuery", "unfreeze",
]
