"""CQ containment and equivalence, plain and under constraints.

Classical (Chandra-Merkle) containment: ``q1 subseteq q2`` iff there
is a homomorphism from ``q2``'s canonical instance to ``q1``'s that
maps head to head.  Under a constraint set ``Sigma`` the canonical
instance of ``q1`` is first chased (Johnson-Klug [13]; this is the
correctness backbone of the Section 4 SQO pipeline).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.chase.result import ChaseStatus
from repro.chase.runner import chase, DEFAULT_MAX_STEPS
from repro.cq.query import ConjunctiveQuery
from repro.homomorphism.engine import find_homomorphisms
from repro.lang.constraints import Constraint
from repro.lang.errors import NonTerminationBudget
from repro.lang.instance import Instance
from repro.lang.terms import GroundTerm, Variable


def _head_image(query: ConjunctiveQuery,
                mapping: Dict[Variable, GroundTerm]) -> tuple:
    return tuple(mapping.get(t, t) if isinstance(t, Variable) else t
                 for t in query.head)


def contained_in(q1: ConjunctiveQuery, q2: ConjunctiveQuery,
                 sigma: Iterable[Constraint] = (),
                 max_steps: int = DEFAULT_MAX_STEPS,
                 cycle_limit: Optional[int] = None) -> bool:
    """``q1 subseteq_Sigma q2``?

    Freezes ``q1``, chases it with ``sigma`` (must terminate, else
    :class:`NonTerminationBudget` is raised) and searches a
    head-preserving homomorphism from ``q2``'s body.  ``cycle_limit``
    arms the Section 4.2 monitor so divergent candidate chases abort
    after a handful of steps instead of burning the step budget.
    """
    frozen, var_map = q1.freeze()
    sigma = list(sigma)
    if sigma:
        if cycle_limit is not None:
            from repro.datadep.monitored_chase import monitored_chase
            result = monitored_chase(frozen, sigma, cycle_limit,
                                     max_steps=max_steps).result
        else:
            result = chase(frozen, sigma, max_steps=max_steps)
        if result.status is not ChaseStatus.TERMINATED:
            raise NonTerminationBudget(
                f"chase of {q1.name}'s canonical instance did not "
                f"terminate within {max_steps} steps "
                f"({result.status.value})")
        frozen = result.instance
    target_head = tuple(var_map.get(t, t) if isinstance(t, Variable) else t
                        for t in q1.head)
    for assignment in find_homomorphisms(list(q2.body), frozen):
        if _head_image(q2, assignment) == target_head:
            return True
    return False


def equivalent(q1: ConjunctiveQuery, q2: ConjunctiveQuery,
               sigma: Iterable[Constraint] = (),
               max_steps: int = DEFAULT_MAX_STEPS,
               cycle_limit: Optional[int] = None) -> bool:
    """``q1 equiv_Sigma q2``: containment both ways."""
    return (contained_in(q1, q2, sigma, max_steps, cycle_limit)
            and contained_in(q2, q1, sigma, max_steps, cycle_limit))
