"""Compiled conjunctive-query evaluation over the fact-store layer.

``q(I)`` (Section 2; the workload of Section 5's certain-answer
computation, Theorem 9 / Corollary 1) used to be computed by
enumerating every body homomorphism through the generic engine and
materializing a full term-level assignment dict per match.  This
module compiles the query once onto the same
:class:`~repro.homomorphism.plan.JoinPlan` machinery the chase runs
on, and pushes the head projection *into* the plan:

* the body join runs over interned ids with the store's
  selectivity-ordered access paths (one compiled plan per body tuple,
  shared with any constraint of identical body for the process
  lifetime);
* the plan yields only the projected head-variable ids
  (``JoinPlan.execute(project=...)``) -- no assignment dict, no term
  decoding per match;
* answers are **deduplicated and null-filtered at the id level**:
  distinct homomorphisms with equal head images collapse on a tuple of
  ints, the constants-only filter of the paper's certain-answer
  semantics (answers range over ``Delta``) drops null ids before
  decoding, and only surviving distinct rows are decoded to terms.

The PR 1 engine remains available as a cross-validation oracle:
:func:`reference_answers` evaluates through
:mod:`repro.homomorphism.reference` exactly the way the pre-plan code
did, and :meth:`repro.cq.query.ConjunctiveQuery.evaluate` routes
through it whenever a
:func:`~repro.homomorphism.engine.reference_engine` context is active
(``tests/cq/test_evaluate.py`` asserts identical answers on both
storage backends across the workload families).
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Set, Tuple

from repro.homomorphism import engine as _engine
from repro.homomorphism.plan import compile_plan, JoinPlan
from repro.homomorphism.reference import reference_find_homomorphisms
from repro.lang.instance import Instance
from repro.lang.terms import GroundTerm, Null, Variable

__all__ = ["CompiledQuery", "compile_query", "compiled_answers",
           "compiled_holds_in", "reference_answers"]


class CompiledQuery:
    """A conjunctive query compiled for id-level evaluation.

    Compiled once per query: the body's :class:`JoinPlan` (shared via
    :func:`~repro.homomorphism.plan.compile_plan`), the projection
    tuple of head-variable occurrences (in head order, duplicates
    preserved), and the positions of constant head terms.
    """

    __slots__ = ("query", "plan", "head", "project", "var_positions")

    def __init__(self, query) -> None:
        self.query = query
        self.plan: JoinPlan = compile_plan(query.body)
        self.head = query.head
        positions: List[int] = []
        variables: List[Variable] = []
        for position, term in enumerate(query.head):
            if isinstance(term, Variable):
                positions.append(position)
                variables.append(term)
        self.project: Tuple[Variable, ...] = tuple(variables)
        self.var_positions: Tuple[int, ...] = tuple(positions)

    # ------------------------------------------------------------------
    def answers(self, instance: Instance,
                constants_only: bool = True) -> Set[Tuple[GroundTerm, ...]]:
        """``q(I)`` over the instance's store, dedup/filter on ids.

        With ``constants_only`` (the paper's certain-answer semantics)
        head images containing labeled nulls are dropped -- decided on
        the interned id, before any term is materialized.

        On a vectorized store (outside a ``batch_disabled()`` /
        ``reference_engine()`` block) the body join runs through the
        column-at-a-time kernels of ``JoinPlan.execute_batch`` --
        answers are exhaustive by definition, the shape the batch path
        exists for.  Dedup and null filtering are unchanged: both
        happen here, on the projected id rows.
        """
        store = instance.store
        term_of = store.terms.term
        head = self.head
        var_positions = self.var_positions
        seen: Set[Tuple[int, ...]] = set()
        out: Set[Tuple[GroundTerm, ...]] = set()
        #: id -> is it a null?  Memoized per call: answer rows share
        #: ids heavily, so each distinct id is classified once.
        null_id: dict = {}
        if _engine.batch_mode_active() and store.supports_batch():
            rows = self.plan.execute_batch(store, project=self.project)
        else:
            rows = self.plan.execute(store, project=self.project)
        for row in rows:
            if row in seen:
                continue
            seen.add(row)
            if constants_only:
                dropped = False
                for tid in row:
                    is_null = null_id.get(tid)
                    if is_null is None:
                        is_null = isinstance(term_of(tid), Null)
                        null_id[tid] = is_null
                    if is_null:
                        dropped = True
                        break
                if dropped:
                    continue
            answer = list(head)
            for position, tid in zip(var_positions, row):
                answer[position] = term_of(tid)
            out.add(tuple(answer))
        return out

    def holds_in(self, instance: Instance) -> bool:
        """Boolean satisfaction: does any body match exist?"""
        for _ in self.plan.execute(instance.store, limit=1, project=()):
            return True
        return False


@lru_cache(maxsize=1024)
def compile_query(query) -> CompiledQuery:
    """The compiled form of a query, cached on the (frozen) query."""
    return CompiledQuery(query)


def compiled_answers(query, instance: Instance,
                     constants_only: bool = True
                     ) -> Set[Tuple[GroundTerm, ...]]:
    """Evaluate ``query`` on ``instance`` through its compiled form."""
    return compile_query(query).answers(instance, constants_only)


def compiled_holds_in(query, instance: Instance) -> bool:
    return compile_query(query).holds_in(instance)


def reference_answers(query, instance: Instance,
                      constants_only: bool = True
                      ) -> Set[Tuple[GroundTerm, ...]]:
    """The pre-plan evaluation loop, verbatim: enumerate every body
    homomorphism through :mod:`repro.homomorphism.reference`, build
    the head image at the term level, filter nulls per tuple.

    The oracle for the compiled path -- deliberately independent of
    :func:`compiled_answers` (different search algorithm, different
    filtering level), so agreement between the two is meaningful.
    """
    answers: Set[Tuple[GroundTerm, ...]] = set()
    for assignment in reference_find_homomorphisms(list(query.body),
                                                   instance):
        row: List[GroundTerm] = []
        for term in query.head:
            if isinstance(term, Variable):
                row.append(assignment[term])
            else:
                row.append(term)
        tup = tuple(row)
        if constants_only and any(isinstance(t, Null) for t in tup):
            continue
        answers.add(tup)
    return answers
