"""Conjunctive queries: representation, freezing, evaluation.

A CQ is ``ans(x) <- phi(x, z)`` (Section 2); its *canonical instance*
(freeze) replaces every variable by a fresh labeled null, turning the
body into a database -- the object that Section 4 chases during
semantic query optimization ("the query -- interpreted as database
instance -- is chased").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.homomorphism.engine import (find_homomorphisms,
                                       reference_mode_active)
from repro.lang.atoms import Atom, atoms_variables
from repro.lang.errors import SchemaError
from repro.lang.instance import Instance
from repro.lang.terms import Constant, GroundTerm, Null, Term, Variable


@dataclass(frozen=True)
class ConjunctiveQuery:
    """``name(head) <- body`` with ``head`` a tuple of variables or
    constants, each head variable occurring in the body."""

    name: str
    head: Tuple[Term, ...]
    body: Tuple[Atom, ...]

    def __post_init__(self) -> None:
        body_vars = atoms_variables(self.body)
        for term in self.head:
            if isinstance(term, Variable) and term not in body_vars:
                raise SchemaError(
                    f"head variable {term} does not occur in the body")
            if isinstance(term, Null):
                raise SchemaError("queries cannot contain labeled nulls")

    # ------------------------------------------------------------------
    @property
    def is_boolean(self) -> bool:
        return not self.head

    def variables(self) -> Set[Variable]:
        return atoms_variables(self.body)

    def head_variables(self) -> Set[Variable]:
        return {t for t in self.head if isinstance(t, Variable)}

    def existential_variables(self) -> Set[Variable]:
        """Body variables not exported by the head."""
        return self.variables() - self.head_variables()

    # ------------------------------------------------------------------
    def evaluate(self, instance: Instance,
                 constants_only: bool = True) -> Set[Tuple[GroundTerm, ...]]:
        """``q(I)``: all head images under body homomorphisms.

        With ``constants_only`` (the paper's semantics: answers range
        over ``Delta``), tuples containing labeled nulls are dropped.

        Evaluation runs through the compiled id-level path of
        :mod:`repro.cq.evaluate` (projection pushed into the body's
        :class:`~repro.homomorphism.plan.JoinPlan`, dedup and null
        filtering on interned ids); inside a
        :func:`~repro.homomorphism.engine.reference_engine` context the
        pre-plan oracle evaluates instead.
        """
        from repro.cq.evaluate import compiled_answers, reference_answers
        if reference_mode_active():
            return reference_answers(self, instance, constants_only)
        return compiled_answers(self, instance, constants_only)

    def holds_in(self, instance: Instance) -> bool:
        """Boolean-query satisfaction (existence of a body match)."""
        if reference_mode_active():
            for _ in find_homomorphisms(list(self.body), instance,
                                        limit=1):
                return True
            return False
        from repro.cq.evaluate import compiled_holds_in
        return compiled_holds_in(self, instance)

    # ------------------------------------------------------------------
    def freeze(self) -> Tuple[Instance, Dict[Variable, Null]]:
        """The canonical instance: variables become labeled nulls.

        Returns the instance and the variable-to-null mapping so
        results of chasing can be translated back (unfrozen).
        """
        mapping: Dict[Variable, Null] = {}
        for index, var in enumerate(sorted(self.variables(),
                                           key=lambda v: v.name)):
            mapping[var] = Null(-(index + 1) - 10_000_000)
        facts = [atom.substitute(dict(mapping)) for atom in self.body]
        return Instance(facts), mapping

    def with_body(self, body: Iterable[Atom]) -> "ConjunctiveQuery":
        return ConjunctiveQuery(self.name, self.head, tuple(body))

    # ------------------------------------------------------------------
    def __str__(self) -> str:
        head_inner = ", ".join(str(t) for t in self.head)
        body_inner = ", ".join(str(a) for a in self.body)
        return f"{self.name}({head_inner}) <- {body_inner}"


def unfreeze(instance: Instance, mapping: Dict[Variable, Null],
             query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Translate a (chased) canonical instance back into a query.

    Nulls from the original freeze map back to their variables; nulls
    invented by the chase become fresh variables ``zN``.
    """
    inverse: Dict[Null, Term] = {null: var for var, null in mapping.items()}
    fresh_index = 0
    body: List[Atom] = []
    for fact in sorted(instance.facts(), key=str):
        args: List[Term] = []
        for arg in fact.args:
            if isinstance(arg, Null):
                if arg not in inverse:
                    inverse[arg] = Variable(f"z{fresh_index}")
                    fresh_index += 1
                args.append(inverse[arg])
            else:
                args.append(arg)
        body.append(Atom(fact.relation, tuple(args)))
    return ConjunctiveQuery(query.name, query.head, tuple(body))
