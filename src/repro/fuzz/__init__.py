"""Adversarial constraint fuzzer and metamorphic cross-validation.

The paper's termination conditions, chase runners, query answering and
batch service all promise *universally quantified* properties -- every
Figure 1 inclusion, every-backend agreement, answer invariance under
optimization.  This package checks those promises on seeded random
inputs biased toward the termination-class boundaries:

* :mod:`repro.fuzz.generate` -- deterministic case generation;
* :mod:`repro.fuzz.oracles`  -- the metamorphic properties;
* :mod:`repro.fuzz.shrink`   -- delta-debugging minimization;
* :mod:`repro.fuzz.runner`   -- budgets, corpus driving, repro specs.

Entry points: :func:`repro.fuzz.runner.run_corpus` and the
``repro fuzz`` CLI command.
"""

from repro.fuzz.generate import (FuzzCase, FuzzConfig, GENERATOR_VERSION,
                                 case_rng, generate_case, generate_corpus)
from repro.fuzz.oracles import (ALL_SEQUENCE_CLASSES, DEEP_PROBES, ORACLES,
                                OracleContext, PROBES, Violation)
from repro.fuzz.runner import (FuzzFailure, FuzzReport, OracleTimeout,
                               oracle_deadline, run_corpus, write_repro_spec)
from repro.fuzz.shrink import ShrinkResult, shrink_case

__all__ = [
    "FuzzCase", "FuzzConfig", "GENERATOR_VERSION", "case_rng",
    "generate_case", "generate_corpus", "ALL_SEQUENCE_CLASSES",
    "DEEP_PROBES", "ORACLES", "OracleContext", "PROBES", "Violation",
    "FuzzFailure", "FuzzReport", "OracleTimeout", "oracle_deadline",
    "run_corpus", "write_repro_spec", "ShrinkResult", "shrink_case",
]
