"""Metamorphic oracles: the properties every generated case must obey.

Each oracle checks one universally-quantified claim of the paper (or
an implementation-level parity that follows from one) on a concrete
:class:`~repro.fuzz.generate.FuzzCase`:

* ``hierarchy``       -- every Figure 1 inclusion holds among the
  class-membership probes (safe => safely restricted => inductively
  restricted = T[2] <= T[3], weak acyclicity below safety and
  c-stratification, c-stratification below stratification);
* ``termination``     -- sets in an all-sequences class actually reach
  a fixpoint (Theorems 3/5/6/7); merely stratified sets terminate
  under Theorem 2's stratum order;
* ``backend_parity``  -- SetStore and ColumnStore chases agree
  (homomorphically equivalent results, same finite status);
* ``engine_parity``   -- compiled join plans and the preserved
  reference engine agree the same way, and a column-backend chase
  agrees with itself under ``batch_disabled()`` (tuple path pinned);
* ``kernel_parity``   -- the column-at-a-time kernels
  (``JoinPlan.execute_batch``) yield exactly the tuple path's
  homomorphism multiset on every constraint/query body of the case,
  on both backends (forced, so SetStore's emulated posting-list
  protocol is exercised too);
* ``order_cores``     -- results of different chase orders are
  homomorphically equivalent and their cores isomorphic (the paper's
  uniqueness-up-to-core claim, after [21]);
* ``certain_answers`` -- ``certain_answers`` is invariant under
  ``optimize=``, backend and engine (Theorem 9 / Corollary 1: the
  answer set depends only on the knowledge base);
* ``service_parity``  -- the batch service returns byte-identical
  results to in-process execution, warm cache hits replay the cold
  run, and (sampled) a real worker pool agrees with both.

Oracles return a list of :class:`Violation` (empty = pass) and may
record *skips*: a run that blew its wall-clock budget, or a
comparison that is not meaningful for the case (e.g. core isomorphism
on a set with no termination guarantee), is skipped rather than
failed, so corpus verdicts stay deterministic across machine speeds.

The hierarchy oracle consults the module-level :data:`PROBES` table
rather than calling the termination predicates directly -- that
indirection is the **mutation seam** the fuzzer's own test suite uses
to prove the oracles are not vacuous (replace a probe with a lie and
the corpus must catch it).
"""

from __future__ import annotations

import itertools
from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.chase.core import core
from repro.chase.result import ChaseResult, ChaseStatus
from repro.chase.runner import chase
from repro.chase.strategies import RandomStrategy, RoundRobinStrategy
from repro.fuzz.generate import FuzzCase
from repro.homomorphism.engine import (batch_disabled,
                                       null_renaming_equivalent,
                                       reference_engine)
from repro.homomorphism.plan import compile_plan
from repro.kb.answering import certain_answers
from repro.lang.errors import ReproError
from repro.lang.instance import Instance
from repro.lang.terms import NullFactory
from repro.service.cache import ServiceCache
from repro.service.jobs import ChaseJob, execute_any
from repro.service.query import QueryJob
from repro.service.scheduler import BatchScheduler
from repro.termination import (check_hierarchy_implications, in_t_level,
                               is_c_stratified, is_inductively_restricted,
                               is_safe, is_safely_restricted, is_stratified,
                               is_weakly_acyclic, stratified_strategy)

_FINITE = (ChaseStatus.TERMINATED, ChaseStatus.FAILED)

#: Class-membership probes, name -> predicate over a constraint set.
#: The fuzzer's hierarchy oracle reads this table at call time, so
#: mutation tests can swap a probe for a deliberate lie and assert the
#: corpus flags it.  ``deep`` probes cost an |Sigma|^k sweep and are
#: sampled (see :attr:`OracleContext.deep_hierarchy_every`).
PROBES: "OrderedDict[str, Callable]" = OrderedDict([
    ("weakly_acyclic", is_weakly_acyclic),
    ("safe", is_safe),
    ("stratified", is_stratified),
    ("c_stratified", is_c_stratified),
])

DEEP_PROBES: "OrderedDict[str, Callable]" = OrderedDict([
    ("safely_restricted", is_safely_restricted),
    ("inductively_restricted", is_inductively_restricted),
    ("t2", lambda sigma: in_t_level(sigma, 2)),
    ("t3", lambda sigma: in_t_level(sigma, 3)),
])

#: Membership names that bound *every* chase sequence (Theorems
#: 3/5/6/7) -- the operational oracle's trigger condition.  The last
#: two live in :data:`DEEP_PROBES`, so they only participate on
#: sampled cases (verdict lookups use ``.get``).
ALL_SEQUENCE_CLASSES = ("weakly_acyclic", "safe", "c_stratified",
                        "safely_restricted", "inductively_restricted")


@dataclass(frozen=True)
class Violation:
    """One broken metamorphic property on one case."""

    oracle: str
    case_label: str
    detail: str

    def render(self) -> str:
        return f"[{self.oracle}] {self.case_label}: {self.detail}"


@dataclass
class OracleContext:
    """Budgets, sampling knobs and shared service state for a corpus.

    ``max_steps`` / ``wall_clock`` bound every chase the oracles run
    (the per-case budget reusing ``EXCEEDED_WALL_CLOCK``: a divergent
    or explosively slow case is *skipped*, never allowed to hang the
    fuzzer).  ``deep_hierarchy_every`` / ``pool_every`` sample the
    expensive probes (k-restriction sweeps, a real fork()ed worker
    pool) every Nth case; 0 disables them.  Schedulers are created
    lazily and shared across the whole corpus -- the pool forks once,
    then every sampled case reuses its persistent workers.
    """

    max_steps: int = 300
    wall_clock: Optional[float] = 2.0
    deep_hierarchy_every: int = 4
    pool_every: int = 25
    skips: List[str] = field(default_factory=list)
    _case: Optional[FuzzCase] = None
    _memo: Dict = field(default_factory=dict)
    _inproc: Optional[BatchScheduler] = None
    _pool: Optional[BatchScheduler] = None

    # -- lifecycle ------------------------------------------------------
    def start_case(self, case: FuzzCase) -> None:
        self._case = case
        self._memo = {}

    def close(self) -> None:
        for scheduler in (self._inproc, self._pool):
            if scheduler is not None:
                scheduler.close()
        self._inproc = self._pool = None

    def __enter__(self) -> "OracleContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def skip(self, case: FuzzCase, oracle: str, reason: str) -> None:
        self.skips.append(f"[{oracle}] {case.label()}: {reason}")

    # -- memoized per-case runs -----------------------------------------
    def run_chase(self, case: FuzzCase, backend: Optional[str] = None,
                  strategy_key: str = "round_robin",
                  reference: bool = False,
                  no_batch: bool = False) -> ChaseResult:
        """One budgeted chase of the case, memoized per configuration.

        Every run uses a private :class:`NullFactory` (labels restart
        at 1) so configurations are comparable label-for-label where
        execution order happens to agree.  ``no_batch`` pins the run
        to the tuple-at-a-time path (``batch_disabled()``).
        """
        key = ("chase", backend, strategy_key, reference, no_batch)
        if key in self._memo:
            return self._memo[key]
        instance = case.instance
        if backend is not None and instance.backend != backend:
            instance = Instance(instance, backend=backend)
        if strategy_key == "round_robin":
            strategy = RoundRobinStrategy()
        elif strategy_key == "stratified":
            strategy = stratified_strategy(case.sigma)
        else:
            strategy = RandomStrategy(seed=int(strategy_key))
        kwargs = dict(strategy=strategy, max_steps=self.max_steps,
                      wall_clock=self.wall_clock, nulls=NullFactory())
        if reference:
            with reference_engine():
                result = chase(instance, list(case.sigma), **kwargs)
        elif no_batch:
            with batch_disabled():
                result = chase(instance, list(case.sigma), **kwargs)
        else:
            result = chase(instance, list(case.sigma), **kwargs)
        self._memo[key] = result
        return result

    def probes(self, case: FuzzCase, deep: bool = False) -> Dict[str, bool]:
        """Membership verdicts via :data:`PROBES` (re-read per call:
        the mutation seam), cheap ones always, deep ones on request."""
        if ("probes", True) in self._memo:
            return self._memo[("probes", True)]
        key = ("probes", deep)
        if key in self._memo:
            return self._memo[key]
        verdicts = {name: bool(probe(case.sigma))
                    for name, probe in PROBES.items()}
        if deep:
            verdicts.update({name: bool(probe(case.sigma))
                             for name, probe in DEEP_PROBES.items()})
        self._memo[key] = verdicts
        return verdicts

    def deep_case(self, case: FuzzCase) -> bool:
        return (self.deep_hierarchy_every > 0
                and case.index % self.deep_hierarchy_every == 0)

    def pool_case(self, case: FuzzCase) -> bool:
        return self.pool_every > 0 and case.index % self.pool_every == 0

    # -- shared schedulers ----------------------------------------------
    def inproc_scheduler(self) -> BatchScheduler:
        if self._inproc is None:
            self._inproc = BatchScheduler(
                workers=1, force_inprocess=True,
                cache=ServiceCache(result_size=64, report_size=64),
                unknown_step_cap=None)
        return self._inproc

    def pool_scheduler(self) -> BatchScheduler:
        if self._pool is None:
            self._pool = BatchScheduler(
                workers=2, cache=ServiceCache(result_size=0),
                unknown_step_cap=None)
        return self._pool


# ----------------------------------------------------------------------
# comparison helpers
# ----------------------------------------------------------------------
def compare_finite_runs(left: ChaseResult, right: ChaseResult,
                        what: str) -> Optional[str]:
    """Compare two chase runs of the same case; None if consistent.

    Only *finite* outcomes are compared: if either side exceeded a
    budget the prefixes are incomparable (different trigger orders cut
    at different points) and the caller should skip.  For finite
    outcomes the classical chase theorems apply: both sequences fail,
    or both terminate with homomorphically equivalent results.
    """
    if left.status != right.status:
        return (f"{what}: status {left.status.value} vs "
                f"{right.status.value}")
    if left.status is ChaseStatus.TERMINATED \
            and not null_renaming_equivalent(left.instance, right.instance):
        return (f"{what}: terminated results are not homomorphically "
                f"equivalent ({len(left.instance)} vs "
                f"{len(right.instance)} facts)")
    return None


def both_finite(left: ChaseResult, right: ChaseResult) -> bool:
    return left.status in _FINITE and right.status in _FINITE


# ----------------------------------------------------------------------
# the oracles
# ----------------------------------------------------------------------
def oracle_hierarchy(case: FuzzCase, ctx: OracleContext) -> List[Violation]:
    """Figure 1's inclusions hold among the membership probes."""
    deep = ctx.deep_case(case)
    verdicts = ctx.probes(case, deep=deep)
    return [Violation("hierarchy", case.label(), detail)
            for detail in check_hierarchy_implications(verdicts)]


def oracle_termination(case: FuzzCase, ctx: OracleContext) -> List[Violation]:
    """Membership promises hold on real runs (Theorems 2/3/5/6/7)."""
    verdicts = ctx.probes(case)
    guaranteed = [name for name in ALL_SEQUENCE_CLASSES
                  if verdicts.get(name)]
    if guaranteed:
        result = ctx.run_chase(case)
        if result.status is ChaseStatus.EXCEEDED_WALL_CLOCK:
            ctx.skip(case, "termination", "wall clock exhausted")
        elif result.status not in _FINITE:
            return [Violation(
                "termination", case.label(),
                f"set is in {'/'.join(guaranteed)} but the chase hit "
                f"{result.status.value} after {result.length} steps")]
        return []
    if verdicts["stratified"]:
        result = ctx.run_chase(case, strategy_key="stratified")
        if result.status is ChaseStatus.EXCEEDED_WALL_CLOCK:
            ctx.skip(case, "termination", "wall clock exhausted")
        elif result.status not in _FINITE:
            return [Violation(
                "termination", case.label(),
                "stratified set did not terminate under Theorem 2's "
                f"stratum order ({result.status.value} after "
                f"{result.length} steps)")]
    return []


def oracle_backend_parity(case: FuzzCase,
                          ctx: OracleContext) -> List[Violation]:
    """SetStore and ColumnStore chases agree on finite outcomes."""
    left = ctx.run_chase(case, backend="set")
    right = ctx.run_chase(case, backend="column")
    if not both_finite(left, right):
        ctx.skip(case, "backend_parity", "a run exceeded its budget")
        return []
    detail = compare_finite_runs(left, right, "set vs column backend")
    return [Violation("backend_parity", case.label(), detail)] \
        if detail else []


def oracle_engine_parity(case: FuzzCase,
                         ctx: OracleContext) -> List[Violation]:
    """Compiled join plans agree with the reference engine, and the
    column-at-a-time path agrees with the tuple path (third column of
    the parity matrix: a column-backend chase with batch routing on
    vs the same chase inside ``batch_disabled()``)."""
    out: List[Violation] = []
    left = ctx.run_chase(case)
    right = ctx.run_chase(case, reference=True)
    if not both_finite(left, right):
        ctx.skip(case, "engine_parity", "a run exceeded its budget")
    else:
        detail = compare_finite_runs(left, right,
                                     "compiled vs reference engine")
        if detail:
            out.append(Violation("engine_parity", case.label(), detail))
    batch_on = ctx.run_chase(case, backend="column")
    batch_off = ctx.run_chase(case, backend="column", no_batch=True)
    if not both_finite(batch_on, batch_off):
        ctx.skip(case, "engine_parity", "a batch-column run exceeded "
                                        "its budget")
    else:
        detail = compare_finite_runs(batch_on, batch_off,
                                     "column chase batch vs tuple path")
        if detail:
            out.append(Violation("engine_parity", case.label(), detail))
    return out


def oracle_kernel_parity(case: FuzzCase,
                         ctx: OracleContext) -> List[Violation]:
    """``JoinPlan.execute_batch`` yields exactly the tuple path's
    homomorphism multiset on every body of the case.

    Evaluated on the case's base instance, per constraint body and for
    the query body, on both backends.  The kernels are *forced*
    (``force=True``), bypassing the shape/store fallbacks -- this is
    what exercises SetStore's emulated posting-list protocol and the
    small shapes the routed path would normally hand to the tuple
    loop.  Comparison is on multisets of term-level assignments, so a
    duplicated or dropped homomorphism is caught even when the set of
    distinct results agrees.
    """
    bodies = {tuple(constraint.body) for constraint in case.sigma
              if constraint.body}
    bodies.add(tuple(case.query.body))
    out: List[Violation] = []
    for backend in ("set", "column"):
        instance = case.instance
        if instance.backend != backend:
            instance = Instance(instance, backend=backend)
        store = instance.store
        for body in sorted(bodies, key=str):
            plan = compile_plan(body)
            tuple_side = Counter(frozenset(a.items())
                                 for a in plan.execute(store))
            batch_side = Counter(frozenset(a.items())
                                 for a in plan.execute_batch(store,
                                                             force=True))
            if tuple_side != batch_side:
                out.append(Violation(
                    "kernel_parity", case.label(),
                    f"{backend} backend, body {body!r}: batch path "
                    f"yields {sum(batch_side.values())} homomorphisms "
                    f"vs tuple path {sum(tuple_side.values())}"))
    return out


def oracle_order_cores(case: FuzzCase, ctx: OracleContext) -> List[Violation]:
    """Chase results are unique up to core across chase orders.

    Only checked when some class bounds every sequence -- otherwise
    different orders may legitimately diverge (Example 4).
    """
    verdicts = ctx.probes(case)
    if not any(verdicts.get(name) for name in ALL_SEQUENCE_CLASSES):
        return []
    runs = [ctx.run_chase(case),
            ctx.run_chase(case, strategy_key=str(case.index % 7))]
    if not both_finite(*runs):
        ctx.skip(case, "order_cores", "a run exceeded its budget")
        return []
    detail = compare_finite_runs(runs[0], runs[1], "round_robin vs random")
    if detail:
        return [Violation("order_cores", case.label(), detail)]
    if runs[0].status is not ChaseStatus.TERMINATED:
        return []
    cores = [core(run.instance) for run in runs]
    out: List[Violation] = []
    for left, right in itertools.combinations(cores, 2):
        if len(left) != len(right) \
                or not null_renaming_equivalent(left, right):
            out.append(Violation(
                "order_cores", case.label(),
                f"cores differ across chase orders ({len(left)} vs "
                f"{len(right)} facts)"))
    return out


def oracle_certain_answers(case: FuzzCase,
                           ctx: OracleContext) -> List[Violation]:
    """``certain_answers`` is invariant under optimize=, backend and
    engine (the answer set depends only on the knowledge base)."""
    base = ctx.run_chase(case)
    if base.status is not ChaseStatus.TERMINATED:
        ctx.skip(case, "certain_answers",
                 f"exact chase {base.status.value}")
        return []
    steps = ctx.max_steps
    try:
        plain = certain_answers(case.instance, case.sigma, case.query,
                                max_steps=steps)
        variants = {
            "optimize=True": certain_answers(
                case.instance, case.sigma, case.query, max_steps=steps,
                optimize=True),
            "column backend": certain_answers(
                Instance(case.instance, backend="column"), case.sigma,
                case.query, max_steps=steps),
        }
        with reference_engine():
            variants["reference engine"] = certain_answers(
                case.instance, case.sigma, case.query, max_steps=steps)
    except ReproError as exc:
        ctx.skip(case, "certain_answers", f"evaluation refused: {exc}")
        return []
    out: List[Violation] = []
    for label, answers in variants.items():
        if answers != plain:
            out.append(Violation(
                "certain_answers", case.label(),
                f"answers change under {label}: {sorted(plain)!r} vs "
                f"{sorted(answers)!r}"))
    return out


def oracle_service_parity(case: FuzzCase,
                          ctx: OracleContext) -> List[Violation]:
    """The service path replays in-process execution byte-for-byte.

    Checks (a) direct execution vs the in-process scheduler, (b) a
    warm cache hit vs the cold run, and -- on sampled cases -- (c) a
    real 2-worker fork()ed pool vs both, for the chase job and the
    query job of the case.  All comparisons are exact: within one
    process tree, equal fingerprints must produce identical encoded
    results (the service layer's cache-soundness contract).
    """
    jobs = [ChaseJob(name=case.label(), sigma=case.sigma,
                     instance=case.instance, strategy="round_robin",
                     max_steps=ctx.max_steps, max_k=2),
            QueryJob(name=case.label() + "_q", sigma=case.sigma,
                     instance=case.instance, query=case.query,
                     strategy="round_robin", max_steps=ctx.max_steps,
                     optimize=False, max_k=2)]
    out: List[Violation] = []
    scheduler = ctx.inproc_scheduler()
    for job in jobs:
        direct = execute_any(job)
        if direct.status == ChaseStatus.EXCEEDED_WALL_CLOCK.value:
            ctx.skip(case, "service_parity", "wall clock exhausted")
            continue
        cold = scheduler.run_one(job)
        warm = scheduler.run_one(job)
        if (cold.status, cold.facts, cold.answers) \
                != (direct.status, direct.facts, direct.answers):
            out.append(Violation(
                "service_parity", case.label(),
                f"{job.kind} job: scheduler result diverges from "
                f"in-process execution ({cold.status} vs {direct.status})"))
            continue
        if direct.cacheable:
            if not warm.cached:
                out.append(Violation(
                    "service_parity", case.label(),
                    f"{job.kind} job: deterministic outcome "
                    f"{direct.status} was not served from cache"))
            elif (warm.status, warm.facts, warm.answers) \
                    != (cold.status, cold.facts, cold.answers):
                out.append(Violation(
                    "service_parity", case.label(),
                    f"{job.kind} job: warm cache hit diverges from the "
                    "cold run"))
        if ctx.pool_case(case):
            pooled = ctx.pool_scheduler().run_one(job)
            if (pooled.status, pooled.facts, pooled.answers) \
                    != (direct.status, direct.facts, direct.answers):
                out.append(Violation(
                    "service_parity", case.label(),
                    f"{job.kind} job: 2-worker pool result diverges "
                    f"from in-process execution ({pooled.status} vs "
                    f"{direct.status})"))
    return out


#: Oracle registry, in execution order.  The runner iterates this (or
#: a caller-supplied subset/extension) per case.
ORACLES: "OrderedDict[str, Callable]" = OrderedDict([
    ("hierarchy", oracle_hierarchy),
    ("termination", oracle_termination),
    ("backend_parity", oracle_backend_parity),
    ("engine_parity", oracle_engine_parity),
    ("kernel_parity", oracle_kernel_parity),
    ("order_cores", oracle_order_cores),
    ("certain_answers", oracle_certain_answers),
    ("service_parity", oracle_service_parity),
])
