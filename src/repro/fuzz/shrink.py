"""Delta-debugging shrinker for failing fuzz cases.

Given a :class:`~repro.fuzz.generate.FuzzCase` and a predicate that
re-checks the failure, :func:`shrink_case` greedily removes
constraints, then facts, then query body atoms, keeping each removal
that still fails -- a ddmin-style one-minimal reduction (every
remaining part is necessary under single-element removal).  The
predicate is called on *candidate* cases that may be degenerate (empty
body after dropping an atom, a query head variable with no binding);
candidates the model layer rejects are simply not reductions, so
:class:`~repro.lang.errors.ReproError`/``ValueError`` from a probe
count as "does not fail".

Shrinking is budgeted (``max_evaluations``): each predicate call costs
one or more chases, and an adversarial case can make any single check
slow, so the shrinker does the best reduction it can afford and
returns -- the original case is always a valid fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.fuzz.generate import FuzzCase
from repro.lang.errors import ReproError

Predicate = Callable[[FuzzCase], bool]


@dataclass
class ShrinkResult:
    """The minimized case plus reduction accounting."""

    case: FuzzCase
    evaluations: int
    removed_constraints: int
    removed_facts: int
    removed_query_atoms: int

    def describe(self) -> str:
        return (f"shrunk to {len(self.case.sigma)} constraints / "
                f"{len(self.case.instance)} facts / "
                f"{len(self.case.query.body)} query atoms "
                f"(-{self.removed_constraints}/-{self.removed_facts}/"
                f"-{self.removed_query_atoms} in {self.evaluations} "
                f"evaluations)")


class _Budget:
    __slots__ = ("left", "spent")

    def __init__(self, max_evaluations: int) -> None:
        self.left = max_evaluations
        self.spent = 0

    def charge(self) -> bool:
        if self.left <= 0:
            return False
        self.left -= 1
        self.spent += 1
        return True


def _check(candidate: Optional[FuzzCase], still_fails: Predicate,
           budget: _Budget) -> bool:
    if candidate is None or not budget.charge():
        return False
    try:
        return bool(still_fails(candidate))
    except (ReproError, ValueError):
        return False


def _minimize(items: Sequence, rebuild, still_fails: Predicate,
              budget: _Budget, keep_one: bool = False) -> List:
    """Greedy one-at-a-time removal to a fixpoint (ddmin's final
    granularity, which is where small fuzz cases spend all their
    time anyway)."""
    items = list(items)
    floor = 1 if keep_one else 0
    changed = True
    while changed and len(items) > floor and budget.left > 0:
        changed = False
        for index in range(len(items) - 1, -1, -1):
            if len(items) <= floor:
                break
            trial = items[:index] + items[index + 1:]
            try:
                candidate = rebuild(trial)
            except (ReproError, ValueError):
                continue
            if _check(candidate, still_fails, budget):
                items = trial
                changed = True
    return items


def shrink_case(case: FuzzCase, still_fails: Predicate,
                max_evaluations: int = 200) -> ShrinkResult:
    """Minimize ``case`` while ``still_fails`` keeps holding.

    ``still_fails`` must already hold on ``case`` itself (the caller
    observed the failure); it is *not* re-checked here, so a flaky
    predicate degrades to "no reduction found", never to a wrong
    result.  Reduction order -- constraints, then facts, then query
    atoms -- removes the most failure-relevant structure first: most
    oracle violations are properties of the constraint set, and a
    smaller set makes every later fact/query check cheaper.
    """
    original = case
    budget = _Budget(max_evaluations)
    sigma = _minimize(
        case.sigma, lambda s: case.with_parts(sigma=s),
        still_fails, budget)
    case = case.with_parts(sigma=sigma)

    facts = _minimize(
        list(case.instance), lambda f: case.with_parts(facts=f),
        still_fails, budget)
    case = case.with_parts(facts=facts)

    def rebuild_query(atoms):
        body = tuple(atoms)
        bound = {v for atom in body for v in atom.variables()}
        if not all(v in bound for v in case.query.head):
            return None
        query = type(case.query)(name=case.query.name,
                                 head=case.query.head, body=body)
        return case.with_parts(query=query)

    atoms = _minimize(case.query.body, rebuild_query, still_fails,
                      budget, keep_one=True)
    shrunk = rebuild_query(atoms)
    if shrunk is not None:
        case = shrunk

    return ShrinkResult(
        case=case,
        evaluations=budget.spent,
        removed_constraints=len(original.sigma) - len(case.sigma),
        removed_facts=len(original.instance) - len(case.instance),
        removed_query_atoms=(len(original.query.body)
                             - len(case.query.body)),
    )
