"""Seeded generation of adversarial fuzz cases.

A :class:`FuzzCase` is one complete metamorphic test input: a random
schema, a random TGD/EGD constraint set, a random source instance and
a random conjunctive query.  Generation is a pure function of
``(seed, index, config)`` -- :class:`random.Random` is seeded with a
version-tagged string, so the same corpus regenerates byte-identically
across processes, machines and interpreter hash seeds.

The generator is deliberately biased toward the **termination-class
boundaries** of the paper's Figure 1: besides uniform "atom soup"
TGDs, it injects *motifs* -- copy chains (weak acyclicity), null
cascades (safety's rank argument), feedback loops that pipe an
existential position back into its own body (the Introduction's
divergent ``S(x) -> E(x, y), S(y)`` shape) and EGDs over shared
prefixes -- because uniformly random sets are overwhelmingly either
trivially terminating or trivially divergent, and the interesting
oracle failures live on the class boundaries in between.

This module depends only on :mod:`repro.lang` and :mod:`repro.cq`
(never on the engine layers it fuzzes), so every execution surface can
import it without cycles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.cq.query import ConjunctiveQuery
from repro.lang.atoms import Atom
from repro.lang.constraints import Constraint, EGD, TGD
from repro.lang.instance import Instance
from repro.lang.parser import (render_constraints, render_instance,
                               render_query)
from repro.lang.schema import Schema
from repro.lang.terms import Constant, Null, Variable

#: Bumped whenever generation changes shape: the version participates
#: in the RNG seed string, so a corpus is only reproducible against
#: the generator that produced it.
GENERATOR_VERSION = 1


@dataclass(frozen=True)
class FuzzConfig:
    """Tunable knobs of the case generator (all ranges inclusive).

    ``feedback_probability`` is the cyclicity bias: the chance that a
    TGD's head reuses a body relation, creating the dependency-graph
    cycles that separate the Figure 1 classes.  ``shared_null_
    probability`` makes one existential variable occur in several head
    atoms (null-sharing, the shape behind the guarded-null property).
    """

    n_relations: Tuple[int, int] = (2, 3)
    max_arity: int = 3
    n_constraints: Tuple[int, int] = (1, 4)
    max_body_atoms: int = 2
    max_head_atoms: int = 2
    n_variables: int = 4
    existential_probability: float = 0.5
    shared_null_probability: float = 0.4
    feedback_probability: float = 0.6
    egd_probability: float = 0.2
    motif_probability: float = 0.5
    n_facts: Tuple[int, int] = (2, 6)
    domain_size: int = 4
    instance_null_probability: float = 0.1
    query_max_atoms: int = 2

    def validate(self) -> "FuzzConfig":
        if self.n_relations[0] < 1 or self.n_constraints[0] < 1:
            raise ValueError("need at least one relation and constraint")
        if self.max_arity < 1 or self.n_facts[0] < 1:
            raise ValueError("max_arity and n_facts must be positive")
        return self


@dataclass(frozen=True)
class FuzzCase:
    """One generated (schema, constraints, instance, query) input."""

    seed: int
    index: int
    schema: Schema
    sigma: Tuple[Constraint, ...]
    instance: Instance
    query: ConjunctiveQuery
    config: FuzzConfig = field(default_factory=FuzzConfig)

    def label(self) -> str:
        return f"fuzz_s{self.seed}_c{self.index}"

    # -- renderings -----------------------------------------------------
    def constraints_text(self) -> str:
        return render_constraints(self.sigma)

    def instance_text(self) -> str:
        return render_instance(self.instance)

    def query_text(self) -> str:
        return render_query(self.query)

    def describe(self) -> str:
        return (f"{self.label()}: {len(self.sigma)} constraints, "
                f"{len(self.instance)} facts, query "
                f"{self.query_text()}")

    # -- batch-service spec forms ---------------------------------------
    def to_chase_spec(self, max_steps: int = 400, **overrides) -> dict:
        """A ``repro batch`` chase job spec replaying this case.

        The strategy is pinned to ``round_robin`` (never ``auto``) so
        a replay executes exactly the order the fuzzer ran, without
        re-consulting the termination report.
        """
        spec = {
            "kind": "chase",
            "name": self.label(),
            "constraints": self.constraints_text(),
            "instance": self.instance_text(),
            "strategy": "round_robin",
            "max_steps": max_steps,
        }
        spec.update(overrides)
        return spec

    def to_query_spec(self, max_steps: int = 400, **overrides) -> dict:
        """A ``repro query``/``repro batch`` query job spec."""
        spec = self.to_chase_spec(max_steps=max_steps)
        spec["kind"] = "query"
        spec["query"] = self.query_text()
        spec.update(overrides)
        return spec

    def with_parts(self, sigma=None, facts=None, query=None) -> "FuzzCase":
        """A copy with constraints/facts/query replaced (the shrinker's
        reduction step; the schema is left as generated)."""
        changes = {}
        if sigma is not None:
            changes["sigma"] = tuple(sigma)
        if facts is not None:
            changes["instance"] = Instance(facts)
        if query is not None:
            changes["query"] = query
        return replace(self, **changes)


def case_rng(seed: int, index: int) -> random.Random:
    """The case's private RNG.  String seeding hashes through SHA-512
    inside :class:`random.Random`, which is stable across processes
    and interpreter hash seeds -- the root of corpus determinism."""
    return random.Random(f"repro-fuzz:v{GENERATOR_VERSION}:{seed}:{index}")


def _random_atom(rng: random.Random, schema: Schema, pool,
                 relations: Optional[List[str]] = None) -> Atom:
    relation = rng.choice(relations if relations else list(schema))
    return Atom(relation, tuple(rng.choice(pool)
                                for _ in range(schema.arity(relation))))


def _random_tgd(rng: random.Random, schema: Schema,
                config: FuzzConfig, label: str) -> TGD:
    variables = [Variable(f"x{i}") for i in range(config.n_variables)]
    body = [_random_atom(rng, schema, variables)
            for _ in range(rng.randint(1, config.max_body_atoms))]
    body_vars = sorted({v for atom in body for v in atom.variables()},
                       key=lambda v: v.name)
    head_pool: List[Variable] = list(body_vars)
    if rng.random() < config.existential_probability:
        if rng.random() < config.shared_null_probability:
            head_pool.extend([Variable("y0"), Variable("y0")])
        else:
            head_pool.extend([Variable(f"y{i}")
                              for i in range(rng.randint(1, 2))])
    # Cyclicity bias: reusing body relations in the head is what feeds
    # created values (and their positions) back into triggers.
    feedback = rng.random() < config.feedback_probability
    head_relations = (sorted({a.relation for a in body})
                      if feedback else None)
    head = [_random_atom(rng, schema, head_pool, relations=head_relations)
            for _ in range(rng.randint(1, config.max_head_atoms))]
    return TGD(body, head, label=label)


def _random_egd(rng: random.Random, schema: Schema, label: str
                ) -> Optional[EGD]:
    candidates = [r for r in schema if schema.arity(r) >= 2]
    if not candidates:
        return None
    relation = rng.choice(candidates)
    arity = schema.arity(relation)
    left = [Variable(f"x{i}") for i in range(arity)]
    right = [left[0]] + [Variable(f"z{i}") for i in range(1, arity)]
    position = rng.randrange(1, arity)
    return EGD([Atom(relation, tuple(left)), Atom(relation, tuple(right))],
               left[position], right[position], label=label)


def _motif(rng: random.Random, schema: Schema, label: str
           ) -> Optional[Constraint]:
    """A hand-shaped boundary constraint over random relations."""
    relations = list(schema)
    kind = rng.choice(("copy", "cascade", "feedback", "merge"))
    source = rng.choice(relations)
    target = rng.choice(relations)
    x, y = Variable("x"), Variable("y")
    if kind == "copy":
        # R(x..) -> S(x..): the weakly-acyclic side.
        width = min(schema.arity(source), schema.arity(target))
        xs = [Variable(f"x{i}") for i in range(schema.arity(source))]
        head_args = (xs * schema.arity(target))[:schema.arity(target)]
        return TGD([Atom(source, tuple(xs))],
                   [Atom(target, tuple(head_args))], label=label) \
            if width else None
    if kind == "cascade":
        # L(x,..) -> exists y M(y,..): safe null creation per level.
        xs = [x] * schema.arity(source)
        ys = [y] * schema.arity(target)
        return TGD([Atom(source, tuple(xs))], [Atom(target, tuple(ys))],
                   label=label)
    if kind == "feedback":
        # The Introduction's alpha_2 shape: S(x) -> E(x,y), S(y) --
        # an existential value re-entering its own trigger relation.
        unary = source
        xs = [x] * schema.arity(unary)
        pair = rng.choice(relations)
        edge_args = ([x, y] * schema.arity(pair))[:schema.arity(pair)]
        back_args = [y] * schema.arity(unary)
        return TGD([Atom(unary, tuple(xs))],
                   [Atom(pair, tuple(edge_args)),
                    Atom(unary, tuple(back_args))], label=label)
    return _random_egd(rng, schema, label)


def random_sigma(rng: random.Random, schema: Schema,
                 config: FuzzConfig) -> Tuple[Constraint, ...]:
    out: List[Constraint] = []
    size = rng.randint(*config.n_constraints)
    for index in range(size):
        label = f"f{index}"
        constraint: Optional[Constraint] = None
        if rng.random() < config.motif_probability:
            constraint = _motif(rng, schema, label)
        elif rng.random() < config.egd_probability:
            constraint = _random_egd(rng, schema, label)
        if constraint is None:
            constraint = _random_tgd(rng, schema, config, label)
        out.append(constraint)
    return tuple(out)


def random_case_instance(rng: random.Random, schema: Schema,
                         config: FuzzConfig) -> Instance:
    domain: List = [Constant(f"c{i}") for i in range(config.domain_size)]
    nulls = [Null(i + 1) for i in range(2)]
    facts: List[Atom] = []
    for _ in range(rng.randint(*config.n_facts)):
        relation = rng.choice(list(schema))
        args = []
        for _ in range(schema.arity(relation)):
            if rng.random() < config.instance_null_probability:
                args.append(rng.choice(nulls))
            else:
                args.append(rng.choice(domain))
        facts.append(Atom(relation, tuple(args)))
    return Instance(facts)


def random_case_query(rng: random.Random, schema: Schema,
                      config: FuzzConfig) -> ConjunctiveQuery:
    variables = [Variable(f"q{i}") for i in range(3)]
    body = [_random_atom(rng, schema, variables)
            for _ in range(rng.randint(1, config.query_max_atoms))]
    body_vars = sorted({v for atom in body for v in atom.variables()},
                       key=lambda v: v.name)
    head = tuple(rng.sample(body_vars, rng.randint(1, min(2, len(body_vars)))))
    return ConjunctiveQuery(name="q", head=head, body=tuple(body))


def generate_case(seed: int, index: int,
                  config: Optional[FuzzConfig] = None) -> FuzzCase:
    """The ``index``-th case of the ``seed`` corpus (pure function)."""
    config = (config or FuzzConfig()).validate()
    rng = case_rng(seed, index)
    schema = Schema({f"R{i}": rng.randint(1, config.max_arity)
                     for i in range(rng.randint(*config.n_relations))})
    sigma = random_sigma(rng, schema, config)
    instance = random_case_instance(rng, schema, config)
    query = random_case_query(rng, schema, config)
    return FuzzCase(seed=seed, index=index, schema=schema, sigma=sigma,
                    instance=instance, query=query, config=config)


def generate_corpus(seed: int, n_cases: int,
                    config: Optional[FuzzConfig] = None) -> List[FuzzCase]:
    """The full seeded corpus, in index order."""
    return [generate_case(seed, index, config) for index in range(n_cases)]
