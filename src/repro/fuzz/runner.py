"""The fuzz corpus runner: generate, check, shrink, persist.

:func:`run_corpus` drives a seeded corpus through every metamorphic
oracle under hard budgets:

* each chase inside an oracle is bounded by ``max_steps`` and
  ``wall_clock`` (abort = *skip*, reusing the runner's
  ``EXCEEDED_WALL_CLOCK`` semantics);
* each *oracle call* is additionally bounded by ``oracle_deadline``
  seconds of alarm-clock time -- adversarial constraint sets can make
  even the class-membership probes or query optimization blow up
  combinatorially, and a fuzzer must survive its own corpus.  A
  deadline hit is recorded as a skip, never a verdict.

Every violation is shrunk (:mod:`repro.fuzz.shrink`) by re-running the
*same single oracle* on reduced cases in a fresh
:class:`~repro.fuzz.oracles.OracleContext`, then written to
``repro_dir`` as a deterministic JSON job spec replayable with
``repro batch`` (the spec is a regular chase/query job plus a ``fuzz``
metadata key, which job parsing ignores).

Verdicts are deterministic per ``(seed, n_cases, config)``: the corpus
is a pure function of the seed, oracle comparisons only ever fail on
completed runs, and timing effects (wall clock, deadlines) can only
move outcomes into the skip column.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.fuzz.generate import (FuzzCase, FuzzConfig, GENERATOR_VERSION,
                                 generate_case)
from repro.fuzz.oracles import ORACLES, OracleContext, Violation
from repro.fuzz.shrink import ShrinkResult, shrink_case


class OracleTimeout(BaseException):
    """An oracle call exhausted its alarm-clock deadline.

    Deliberately a ``BaseException``: the engine and service layers
    contain job failures with broad ``except Exception`` handlers (one
    bad job must not kill a batch), and the deadline must cut through
    those -- otherwise an alarm firing inside ``execute_job`` would
    surface as a ``status="error"`` result and read as a fake parity
    violation instead of a skip.
    """


@contextmanager
def oracle_deadline(seconds: Optional[float]):
    """Bound the enclosed block by ``seconds`` of real time.

    Uses ``SIGALRM``, so it only arms on the main thread (elsewhere,
    and with ``seconds`` falsy, the block runs unguarded); the chase's
    own wall-clock budget still applies either way.
    """
    if not seconds or threading.current_thread() is not threading.main_thread():
        yield
        return

    def _fire(signum, frame):
        raise OracleTimeout()

    previous = signal.signal(signal.SIGALRM, _fire)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@dataclass
class FuzzFailure:
    """One confirmed oracle violation, with its minimized repro."""

    violation: Violation
    shrunk: FuzzCase
    shrink: Optional[ShrinkResult] = None
    repro_path: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "oracle": self.violation.oracle,
            "case": self.violation.case_label,
            "detail": self.violation.detail,
            "repro": self.repro_path,
            "constraints": self.shrunk.constraints_text(),
            "instance": self.shrunk.instance_text(),
            "query": self.shrunk.query_text(),
        }


@dataclass
class FuzzReport:
    """The outcome of one corpus run."""

    seed: int
    n_cases: int
    failures: List[FuzzFailure] = field(default_factory=list)
    skips: List[str] = field(default_factory=list)
    oracle_calls: int = 0
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "generator_version": GENERATOR_VERSION,
            "seed": self.seed,
            "cases": self.n_cases,
            "oracle_calls": self.oracle_calls,
            "failures": [f.to_dict() for f in self.failures],
            "skips": self.skips,
            "ok": self.ok,
            "elapsed": round(self.elapsed, 3),
        }

    def render(self) -> str:
        lines = [f"fuzz seed={self.seed}: {self.n_cases} cases, "
                 f"{self.oracle_calls} oracle calls, "
                 f"{len(self.failures)} violations, "
                 f"{len(self.skips)} skips, {self.elapsed:.1f}s"]
        for failure in self.failures:
            lines.append("  " + failure.violation.render())
            if failure.repro_path:
                lines.append(f"    repro: {failure.repro_path}")
        return "\n".join(lines)


def write_repro_spec(case: FuzzCase, violation: Violation,
                     directory, max_steps: int = 400) -> Path:
    """Persist a minimized case as a replayable ``repro batch`` spec.

    Query-flavoured violations get a query job spec, everything else a
    chase job spec; both carry the failing oracle and generator
    coordinates under the ``fuzz`` key, which the job parser ignores.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if violation.oracle == "certain_answers":
        spec = case.to_query_spec(max_steps=max_steps)
    else:
        spec = case.to_chase_spec(max_steps=max_steps)
    spec["fuzz"] = {
        "generator_version": GENERATOR_VERSION,
        "seed": case.seed,
        "case": case.index,
        "oracle": violation.oracle,
        "detail": violation.detail,
    }
    path = directory / f"{case.label()}_{violation.oracle}.json"
    path.write_text(json.dumps(spec, indent=2, sort_keys=True) + "\n")
    return path


def _shrink_predicate(oracle_name: str, oracle: Callable,
                      max_steps: int, wall_clock: Optional[float],
                      deadline: Optional[float]) -> Callable[[FuzzCase], bool]:
    """Does the *same* oracle still flag the candidate case?

    Each probe runs in a fresh single-case context with deep probes
    always on and the worker pool off (pool-specific divergence does
    not shrink -- the original case is then kept as the repro).
    """
    def still_fails(candidate: FuzzCase) -> bool:
        with OracleContext(max_steps=max_steps, wall_clock=wall_clock,
                           deep_hierarchy_every=1, pool_every=0) as local:
            local.start_case(candidate)
            try:
                with oracle_deadline(deadline):
                    return bool(oracle(candidate, local))
            except OracleTimeout:
                return False
    return still_fails


def run_corpus(seed: int, n_cases: int,
               config: Optional[FuzzConfig] = None,
               max_steps: int = 250,
               wall_clock: Optional[float] = 0.5,
               oracle_deadline_s: Optional[float] = 0.8,
               deep_hierarchy_every: int = 4,
               pool_every: int = 25,
               repro_dir=None,
               oracles: Optional[Dict[str, Callable]] = None,
               shrink: bool = True,
               shrink_evaluations: int = 120,
               on_case: Optional[Callable[[FuzzCase], None]] = None
               ) -> FuzzReport:
    """Generate and check the ``seed`` corpus; see the module docs.

    ``oracles`` substitutes the oracle registry (tests inject single
    oracles or deliberately broken ones); ``on_case`` observes each
    generated case before checking (progress reporting).
    """
    oracle_items = list((oracles if oracles is not None
                         else ORACLES).items())
    report = FuzzReport(seed=seed, n_cases=n_cases)
    started = time.perf_counter()
    with OracleContext(max_steps=max_steps, wall_clock=wall_clock,
                       deep_hierarchy_every=deep_hierarchy_every,
                       pool_every=pool_every) as ctx:
        for index in range(n_cases):
            case = generate_case(seed, index, config)
            if on_case is not None:
                on_case(case)
            ctx.start_case(case)
            for name, oracle in oracle_items:
                report.oracle_calls += 1
                try:
                    with oracle_deadline(oracle_deadline_s):
                        found = oracle(case, ctx)
                except OracleTimeout:
                    ctx.skip(case, name,
                             f"oracle deadline of {oracle_deadline_s:g}s "
                             "exhausted")
                    if name == "service_parity":
                        # The alarm may have cut a pool exchange mid-
                        # message; drop the schedulers (rebuilt lazily).
                        ctx.close()
                    # A deadline hit means the *case* is adversarial to
                    # analysis itself (precedence search or containment
                    # blowup); its remaining oracles would burn the same
                    # deadline for little coverage, so bail on the case.
                    ctx.skip(case, "case",
                             f"remaining oracles skipped after {name} "
                             "deadline")
                    break
                for violation in found:
                    failure = FuzzFailure(violation=violation, shrunk=case)
                    if shrink:
                        predicate = _shrink_predicate(
                            name, oracle, max_steps, wall_clock,
                            oracle_deadline_s)
                        result = shrink_case(
                            case, predicate,
                            max_evaluations=shrink_evaluations)
                        failure.shrink = result
                        failure.shrunk = result.case
                    if repro_dir is not None:
                        failure.repro_path = str(write_repro_spec(
                            failure.shrunk, violation, repro_dir,
                            max_steps=max_steps))
                    report.failures.append(failure)
        report.skips = list(ctx.skips)
    report.elapsed = time.perf_counter() - started
    return report
