"""Relational/logic substrate: terms, atoms, constraints, instances."""

from repro.lang.atoms import Atom, Position
from repro.lang.constraints import (Constraint, EGD, TGD,
                                    constraint_set_positions)
from repro.lang.errors import (ChaseFailure, NonTerminationBudget, ParseError,
                               ReproError, SchemaError)
from repro.lang.instance import Instance
from repro.lang.parser import (parse_atoms, parse_constraint,
                               parse_constraints, parse_instance, parse_query,
                               render_constraints)
from repro.lang.schema import Schema
from repro.lang.terms import (Constant, Null, NullFactory, NULLS, Term,
                              Variable, fresh_null)

__all__ = [
    "Atom", "Position", "Constraint", "EGD", "TGD",
    "constraint_set_positions", "ChaseFailure", "NonTerminationBudget",
    "ParseError", "ReproError", "SchemaError", "Instance",
    "parse_atoms", "parse_constraint", "parse_constraints",
    "parse_instance", "parse_query", "render_constraints", "Schema",
    "Constant", "Null", "NullFactory", "NULLS", "Term", "Variable",
    "fresh_null",
]
