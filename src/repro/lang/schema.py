"""Database schemas: relation symbols with fixed arities.

Schemas are optional throughout the library -- constraints and
instances carry enough information to infer one -- but they provide
arity checking and a stable universe of positions for the graph-based
termination conditions.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.lang.atoms import Atom, Position
from repro.lang.errors import SchemaError


class Schema:
    """A finite set of relation symbols with arities."""

    def __init__(self, relations: Mapping[str, int] | None = None) -> None:
        self._relations: dict[str, int] = {}
        if relations:
            for name, arity in relations.items():
                self.add_relation(name, arity)

    def add_relation(self, name: str, arity: int) -> None:
        if arity < 1:
            raise SchemaError(f"relation {name} must have arity >= 1")
        existing = self._relations.get(name)
        if existing is not None and existing != arity:
            raise SchemaError(
                f"relation {name} redeclared with arity {arity} "
                f"(was {existing})")
        self._relations[name] = arity

    def arity(self, name: str) -> int:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._relations))

    def __len__(self) -> int:
        return len(self._relations)

    def __eq__(self, other) -> bool:
        return isinstance(other, Schema) and self._relations == other._relations

    def relations(self) -> dict[str, int]:
        """A copy of the relation-to-arity mapping."""
        return dict(self._relations)

    def positions(self) -> list[Position]:
        """Every position of the schema, sorted."""
        return sorted(Position(name, i + 1)
                      for name, arity in self._relations.items()
                      for i in range(arity))

    def max_arity(self) -> int:
        return max(self._relations.values(), default=0)

    def validate_atom(self, atom: Atom) -> None:
        """Raise :class:`SchemaError` unless ``atom`` fits the schema."""
        if atom.relation not in self._relations:
            raise SchemaError(f"unknown relation {atom.relation}")
        expected = self._relations[atom.relation]
        if atom.arity != expected:
            raise SchemaError(
                f"atom {atom} has arity {atom.arity}, schema says {expected}")

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}/{a}" for n, a in sorted(self._relations.items()))
        return f"Schema({inner})"

    @classmethod
    def infer(cls, atoms: Iterable[Atom]) -> "Schema":
        """Infer a schema from any collection of atoms."""
        schema = cls()
        for atom in atoms:
            schema.add_relation(atom.relation, atom.arity)
        return schema

    def merged(self, other: "Schema") -> "Schema":
        """The union of two schemas (raises on arity conflicts)."""
        out = Schema(self._relations)
        for name, arity in other._relations.items():
            out.add_relation(name, arity)
        return out
