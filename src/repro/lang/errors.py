"""Exception hierarchy for the ``repro`` library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ParseError(ReproError):
    """Raised when constraint / instance / query text cannot be parsed."""

    def __init__(self, message: str, position: int | None = None,
                 text: str | None = None) -> None:
        self.position = position
        self.text = text
        if position is not None and text is not None:
            context = text[max(0, position - 20):position + 20]
            message = f"{message} (at offset {position}: ...{context!r}...)"
        super().__init__(message)


class SchemaError(ReproError):
    """Raised on arity mismatches or malformed atoms/constraints."""


class ChaseFailure(ReproError):
    """Raised when an EGD chase step would equate two distinct constants.

    The paper calls the chase result *undefined* in this case; callers
    that prefer a status object should use the runner API, which
    converts this exception into ``ChaseStatus.FAILED``.
    """


class NonTerminationBudget(ReproError):
    """Raised when a chase run exceeds its step budget."""
