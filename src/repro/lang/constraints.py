"""Tuple- and equality-generating dependencies (TGDs and EGDs).

Following Section 2 of the paper:

* A **TGD** is a sentence ``forall x (phi(x) -> exists y psi(x, y))``
  where ``phi`` (the body) may be empty, ``psi`` (the head) is
  non-empty, neither side contains equality atoms, and every
  universally quantified variable of the head also occurs in the body.
  Head variables that do not occur in the body are the existentially
  quantified variables.

* An **EGD** is a sentence ``forall x (phi(x) -> x_i = x_j)`` with a
  non-empty, equality-free body in which both ``x_i`` and ``x_j``
  occur.

``pos(alpha)`` denotes the set of positions *in the body* of ``alpha``
(the paper's convention), exposed here as :meth:`Constraint.positions`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.lang.atoms import (Atom, atoms_constants, atoms_positions,
                              atoms_variables, occurrences, Position)
from repro.lang.errors import SchemaError
from repro.lang.schema import Schema
from repro.lang.terms import Constant, Variable


class Constraint:
    """Common base class for TGDs and EGDs."""

    __slots__ = ("body", "label", "_hash", "_cache")

    body: tuple[Atom, ...]
    label: str | None

    def _cached(self, key: str, compute):
        """Memoize derived, order-insensitive data on the (immutable)
        constraint -- variable sets are recomputed on every chase step
        otherwise (``head_extends`` needs the frontier each time)."""
        cache = getattr(self, "_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_cache", cache)
        try:
            return cache[key]
        except KeyError:
            value = cache[key] = compute()
            return value

    @property
    def is_tgd(self) -> bool:
        return isinstance(self, TGD)

    @property
    def is_egd(self) -> bool:
        return isinstance(self, EGD)

    def body_variables(self) -> frozenset[Variable]:
        """Variables of the body (= the universally quantified ones,
        for EGDs and for TGDs together with head-occurring body vars)."""
        return self._cached("body_vars",
                            lambda: frozenset(atoms_variables(self.body)))

    def universal_variables(self) -> frozenset[Variable]:
        """All universally quantified variables (the body variables)."""
        return self.body_variables()

    def positions(self) -> set[Position]:
        """``pos(alpha)``: positions in the body (paper convention)."""
        return atoms_positions(self.body)

    def constants(self) -> set[Constant]:
        raise NotImplementedError

    def display_name(self) -> str:
        return self.label if self.label else str(self)

    def size(self) -> int:
        """``|alpha|``: a simple proxy for the formula length."""
        raise NotImplementedError


class TGD(Constraint):
    """A tuple generating dependency."""

    __slots__ = ("head",)

    def __init__(self, body: Iterable[Atom], head: Iterable[Atom],
                 label: str | None = None) -> None:
        body = tuple(body)
        head = tuple(head)
        if not head:
            raise SchemaError("a TGD must have a non-empty head")
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "_hash", hash(("TGD", body, head)))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("TGD is immutable")

    def __eq__(self, other) -> bool:
        return (isinstance(other, TGD) and self.body == other.body
                and self.head == other.head)

    def __hash__(self) -> int:
        return self._hash

    def head_variables(self) -> frozenset[Variable]:
        return self._cached("head_vars",
                            lambda: frozenset(atoms_variables(self.head)))

    def existential_variables(self) -> frozenset[Variable]:
        """Head variables that do not occur in the body."""
        return self._cached(
            "existential_vars",
            lambda: self.head_variables() - self.body_variables())

    def frontier_variables(self) -> frozenset[Variable]:
        """Body variables that also occur in the head."""
        return self._cached(
            "frontier_vars",
            lambda: self.head_variables() & self.body_variables())

    def head_positions(self) -> set[Position]:
        return atoms_positions(self.head)

    def body_positions_of(self, var: Variable) -> set[Position]:
        return occurrences(self.body, var)

    def head_positions_of(self, var: Variable) -> set[Position]:
        return occurrences(self.head, var)

    def constants(self) -> set[Constant]:
        return atoms_constants(self.body) | atoms_constants(self.head)

    @property
    def is_full(self) -> bool:
        """A *full* TGD has no existentially quantified variables."""
        return not self.existential_variables()

    def size(self) -> int:
        return (sum(a.arity + 1 for a in self.body)
                + sum(a.arity + 1 for a in self.head))

    def schema(self) -> Schema:
        return Schema.infer(self.body + self.head)

    def __repr__(self) -> str:
        return f"TGD({self.body!r}, {self.head!r})"

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self.body)
        head = ", ".join(str(a) for a in self.head)
        return f"{body} -> {head}" if body else f"-> {head}"


class EGD(Constraint):
    """An equality generating dependency ``phi(x) -> x_i = x_j``."""

    __slots__ = ("lhs", "rhs")

    def __init__(self, body: Iterable[Atom], lhs: Variable, rhs: Variable,
                 label: str | None = None) -> None:
        body = tuple(body)
        if not body:
            raise SchemaError("an EGD must have a non-empty body")
        variables = atoms_variables(body)
        for var in (lhs, rhs):
            if not isinstance(var, Variable):
                raise SchemaError(f"EGD equality side {var!r} must be a variable")
            if var not in variables:
                raise SchemaError(
                    f"EGD equality variable {var} must occur in the body")
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "lhs", lhs)
        object.__setattr__(self, "rhs", rhs)
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "_hash", hash(("EGD", body, lhs, rhs)))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("EGD is immutable")

    def __eq__(self, other) -> bool:
        return (isinstance(other, EGD) and self.body == other.body
                and self.lhs == other.lhs and self.rhs == other.rhs)

    def __hash__(self) -> int:
        return self._hash

    def constants(self) -> set[Constant]:
        return atoms_constants(self.body)

    def size(self) -> int:
        return sum(a.arity + 1 for a in self.body) + 2

    def schema(self) -> Schema:
        return Schema.infer(self.body)

    def __repr__(self) -> str:
        return f"EGD({self.body!r}, {self.lhs!r}, {self.rhs!r})"

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self.body)
        return f"{body} -> {self.lhs} = {self.rhs}"


def constraint_set_positions(sigma: Iterable[Constraint]) -> set[Position]:
    """``pos(Sigma)``: union of body positions over the set."""
    out: set[Position] = set()
    for constraint in sigma:
        out.update(constraint.positions())
    return out


def all_positions(sigma: Iterable[Constraint]) -> set[Position]:
    """Every position mentioned anywhere in the set (bodies and heads).

    The dependency/propagation graphs range over positions occurring in
    TGDs, including head-only positions, so this wider universe is
    sometimes needed alongside the paper's body-only ``pos(Sigma)``.
    """
    out: set[Position] = set()
    for constraint in sigma:
        out.update(constraint.positions())
        if isinstance(constraint, TGD):
            out.update(constraint.head_positions())
    return out


def constraint_set_schema(sigma: Iterable[Constraint]) -> Schema:
    """Infer the joint schema of a constraint set."""
    schema = Schema()
    for constraint in sigma:
        atoms: Sequence[Atom] = constraint.body
        schema = schema.merged(Schema.infer(atoms))
        if isinstance(constraint, TGD):
            schema = schema.merged(Schema.infer(constraint.head))
    return schema


def rename_apart(constraint: Constraint, suffix: str) -> Constraint:
    """Return a copy of ``constraint`` with every variable renamed by
    appending ``suffix`` (used to make two constraints variable-disjoint
    in the decision procedures for the firing relations)."""
    mapping = {var: Variable(var.name + suffix)
               for var in constraint.universal_variables()}
    if isinstance(constraint, TGD):
        mapping.update({var: Variable(var.name + suffix)
                        for var in constraint.existential_variables()})
        return TGD((a.substitute(mapping) for a in constraint.body),
                   (a.substitute(mapping) for a in constraint.head),
                   label=constraint.label)
    assert isinstance(constraint, EGD)
    return EGD((a.substitute(mapping) for a in constraint.body),
               mapping[constraint.lhs], mapping[constraint.rhs],
               label=constraint.label)
