"""Database instances: finite sets of facts over a pluggable store.

An instance is a finite set of atoms over constants and labeled nulls
(Section 2).  Since the storage-layer refactor the ``Instance`` class
is a thin facade: all physical concerns -- indexes, term interning,
fact ids, the change-listener delta feed -- live in a
:class:`repro.storage.base.FactStore` backend:

* ``backend="set"`` (:class:`repro.storage.set_store.SetStore`) keeps
  the reference dict-of-sets layout;
* ``backend="column"``
  (:class:`repro.storage.column_store.ColumnStore`) stores
  per-relation columnar tuples of interned term ids with array-backed
  posting lists -- the layout the compiled join plans of
  :mod:`repro.homomorphism.plan` execute against.

When ``backend`` is omitted the ``REPRO_BACKEND`` environment variable
decides (default ``set``).  Both backends are interchangeable: the
facade API, the listener event order, and the chase results are
identical (cross-validated in ``tests/storage/test_stores.py``).

Instances support *change listeners*: objects registered via
:meth:`Instance.add_listener` are told about every fact insertion and
removal.  This is the delta feed that drives the semi-naive trigger
index of :mod:`repro.chase.triggers`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Set, Union

from repro.lang.atoms import Atom, Position
from repro.lang.schema import Schema
from repro.lang.terms import Constant, GroundTerm, Null, Term
from repro.storage.base import FactStore, make_store
from repro.storage.interning import TermTable


class InstanceListener:
    """Callback interface for instance deltas.

    Subclass (or duck-type) and register with
    :meth:`Instance.add_listener`.  Listeners are invoked *after* the
    backend indexes have been updated, in registration order.
    """

    def fact_added(self, fact: Atom) -> None:
        """``fact`` was inserted (it was not present before)."""

    def fact_removed(self, fact: Atom) -> None:
        """``fact`` was removed (it was present before)."""


class Instance:
    """A mutable set of ground atoms (facts) behind a fact store."""

    __slots__ = ("_store",)

    def __init__(self, facts: Iterable[Atom] = (),
                 backend: Union[str, FactStore, None] = None) -> None:
        self._store = make_store(backend)
        add = self._store.add
        for fact in facts:
            add(fact)

    # ------------------------------------------------------------------
    # Storage backend
    # ------------------------------------------------------------------
    @property
    def store(self) -> FactStore:
        """The active storage backend (id-level API for the engine)."""
        return self._store

    @property
    def backend(self) -> str:
        """The active backend's registry name (``set`` / ``column``)."""
        return self._store.name

    @property
    def term_table(self) -> TermTable:
        """The store's term-interning table."""
        return self._store.terms

    # ------------------------------------------------------------------
    # Change listeners (delta feed for the incremental chase)
    # ------------------------------------------------------------------
    def add_listener(self, listener: InstanceListener) -> None:
        """Register ``listener`` for fact-added / fact-removed events."""
        self._store.add_listener(listener)

    def remove_listener(self, listener: InstanceListener) -> None:
        """Unregister ``listener`` (no-op if it is not registered)."""
        self._store.remove_listener(listener)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, fact: Atom) -> bool:
        """Insert a fact.  Returns True if it was new."""
        return self._store.add(fact)

    def add_all(self, facts: Iterable[Atom]) -> list[Atom]:
        """Insert many facts; return the ones that were actually new."""
        return self._store.add_all(facts)

    def discard(self, fact: Atom) -> bool:
        """Remove a fact if present.  Returns True if it was removed.

        Empty index buckets are pruned so the backend never retains
        keys for terms that no longer occur in the instance.
        """
        return self._store.discard(fact)

    def substitute_term(self, old: GroundTerm, new: GroundTerm) -> list[Atom]:
        """Replace every occurrence of ``old`` by ``new`` (EGD steps).

        Returns the list of facts that changed (their new versions).
        Uses the backend's term reverse index, so the cost is
        proportional to the number of affected facts, not the instance
        size.
        """
        return self._store.substitute_term(old, new)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, fact: Atom) -> bool:
        return fact in self._store

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._store)

    def __len__(self) -> int:
        return len(self._store)

    def __eq__(self, other) -> bool:
        # Set equality of the fact sets -- backends may differ.
        return (isinstance(other, Instance)
                and len(self._store) == len(other._store)
                and all(fact in other._store for fact in self._store))

    def facts(self, relation: str | None = None) -> Set[Atom]:
        """All facts, or the facts of one relation (a fresh set)."""
        return self._store.facts(relation)

    def matching(self, relation: str, bindings: Mapping[int, GroundTerm]
                 ) -> Set[Atom]:
        """Facts of ``relation`` agreeing with ``bindings``
        (0-based position index -> required term).  Uses the backend's
        access paths.
        """
        return self._store.matching(relation, bindings)

    def domain(self) -> set[GroundTerm]:
        """``dom(I)``: all constants and nulls appearing in the instance."""
        return self._store.domain()

    def constants(self) -> set[Constant]:
        return self._store.constants_of_domain()

    def nulls(self) -> set[Null]:
        return self._store.nulls_of_domain()

    def positions_of(self, term: Term) -> set[Position]:
        """``null-pos({term}, I)``: positions at which ``term`` occurs."""
        return {Position(relation, index + 1)
                for relation, index in self._store.term_positions(term)}

    def relations(self) -> set[str]:
        return self._store.relations()

    def schema(self) -> Schema:
        return Schema.infer(self._store)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def copy(self) -> "Instance":
        """A fresh instance with the same facts and backend kind
        (listeners are not copied)."""
        return Instance(self._store, backend=self._store.name)

    def union(self, other: "Instance") -> "Instance":
        out = self.copy()
        out.add_all(other.facts())
        return out

    def __or__(self, other: "Instance") -> "Instance":
        return self.union(other)

    def __repr__(self) -> str:
        facts = sorted(str(f) for f in self._store)
        preview = ", ".join(facts[:8])
        more = "" if len(facts) <= 8 else f", ... ({len(facts)} facts)"
        return f"Instance({{{preview}{more}}})"

    def render(self) -> str:
        """A deterministic multi-line rendering (sorted facts)."""
        return "\n".join(sorted(str(f) for f in self._store))
