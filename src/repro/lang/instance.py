"""Database instances: finite sets of facts with lookup indexes.

An instance is a finite set of atoms over constants and labeled nulls
(Section 2).  The implementation keeps three indexes tuned for the
homomorphism engine that powers the chase:

* relation name -> set of facts,
* ``(relation, position-index, term)`` -> set of facts,
* term -> set of ``(relation, position-index)`` keys where it occurs,

so that candidate facts for a partially-bound body atom can be found
by intersecting small sets instead of scanning, and so that EGD
substitutions (:meth:`Instance.substitute_term`) and position lookups
(:meth:`Instance.positions_of`) touch only the affected buckets.

Instances additionally support *change listeners*: objects registered
via :meth:`Instance.add_listener` are told about every fact insertion
and removal.  This is the delta feed that drives the semi-naive
trigger index of :mod:`repro.chase.triggers`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Set, Tuple

from repro.lang.atoms import Atom, Position
from repro.lang.errors import SchemaError
from repro.lang.schema import Schema
from repro.lang.terms import Constant, GroundTerm, Null, Term


class InstanceListener:
    """Callback interface for instance deltas.

    Subclass (or duck-type) and register with
    :meth:`Instance.add_listener`.  Listeners are invoked *after* the
    indexes have been updated, in registration order.
    """

    def fact_added(self, fact: Atom) -> None:
        """``fact`` was inserted (it was not present before)."""

    def fact_removed(self, fact: Atom) -> None:
        """``fact`` was removed (it was present before)."""


class Instance:
    """A mutable set of ground atoms (facts) with indexes."""

    def __init__(self, facts: Iterable[Atom] = ()) -> None:
        self._facts: Set[Atom] = set()
        self._by_relation: Dict[str, Set[Atom]] = {}
        self._by_term: Dict[tuple[str, int, GroundTerm], Set[Atom]] = {}
        # Reverse index: term -> {(relation, position-index)} with a
        # *non-empty* bucket in ``_by_term``.  Lets substitute_term and
        # positions_of avoid scanning every index key.
        self._term_positions: Dict[GroundTerm, Set[Tuple[str, int]]] = {}
        self._listeners: List[InstanceListener] = []
        for fact in facts:
            self.add(fact)

    # ------------------------------------------------------------------
    # Change listeners (delta feed for the incremental chase)
    # ------------------------------------------------------------------
    def add_listener(self, listener: InstanceListener) -> None:
        """Register ``listener`` for fact-added / fact-removed events."""
        self._listeners.append(listener)

    def remove_listener(self, listener: InstanceListener) -> None:
        """Unregister ``listener`` (no-op if it is not registered)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, fact: Atom) -> bool:
        """Insert a fact.  Returns True if it was new."""
        if not fact.is_ground:
            raise SchemaError(f"cannot store non-ground atom {fact}")
        if fact in self._facts:
            return False
        self._facts.add(fact)
        self._by_relation.setdefault(fact.relation, set()).add(fact)
        for i, term in enumerate(fact.args):
            self._by_term.setdefault((fact.relation, i, term), set()).add(fact)
            self._term_positions.setdefault(term, set()).add((fact.relation, i))
        for listener in self._listeners:
            listener.fact_added(fact)
        return True

    def add_all(self, facts: Iterable[Atom]) -> list[Atom]:
        """Insert many facts; return the ones that were actually new."""
        return [fact for fact in facts if self.add(fact)]

    def discard(self, fact: Atom) -> bool:
        """Remove a fact if present.  Returns True if it was removed.

        Empty index buckets are pruned so the indexes never retain keys
        for terms that no longer occur in the instance.
        """
        if fact not in self._facts:
            return False
        self._facts.discard(fact)
        relation_bucket = self._by_relation.get(fact.relation)
        if relation_bucket is not None:
            relation_bucket.discard(fact)
            if not relation_bucket:
                del self._by_relation[fact.relation]
        for i, term in enumerate(fact.args):
            key = (fact.relation, i, term)
            bucket = self._by_term.get(key)
            if bucket is None:
                continue
            bucket.discard(fact)
            if not bucket:
                del self._by_term[key]
                positions = self._term_positions.get(term)
                if positions is not None:
                    positions.discard((fact.relation, i))
                    if not positions:
                        del self._term_positions[term]
        for listener in self._listeners:
            listener.fact_removed(fact)
        return True

    def substitute_term(self, old: GroundTerm, new: GroundTerm) -> list[Atom]:
        """Replace every occurrence of ``old`` by ``new`` (EGD steps).

        Returns the list of facts that changed (their new versions).
        Uses the term reverse index, so the cost is proportional to the
        number of affected facts, not the instance size.
        """
        if old == new:
            return []
        affected: set[Atom] = set()
        for relation, i in self._term_positions.get(old, ()):
            affected.update(self._by_term.get((relation, i, old), ()))
        changed: list[Atom] = []
        for fact in affected:
            self.discard(fact)
            new_fact = fact.substitute({old: new})
            if self.add(new_fact):
                changed.append(new_fact)
        return changed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, fact: Atom) -> bool:
        return fact in self._facts

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def __eq__(self, other) -> bool:
        return isinstance(other, Instance) and self._facts == other._facts

    def facts(self, relation: str | None = None) -> Set[Atom]:
        """All facts, or the facts of one relation (a fresh set)."""
        if relation is None:
            return set(self._facts)
        return set(self._by_relation.get(relation, ()))

    def matching(self, relation: str, bindings: Mapping[int, GroundTerm]
                 ) -> Set[Atom]:
        """Facts of ``relation`` agreeing with ``bindings``
        (0-based position index -> required term).  Uses the indexes.
        """
        base = self._by_relation.get(relation)
        if not base:
            return set()
        if not bindings:
            return set(base)
        candidate_sets = []
        for i, term in bindings.items():
            facts = self._by_term.get((relation, i, term))
            if not facts:
                return set()
            candidate_sets.append(facts)
        candidate_sets.sort(key=len)
        result = set(candidate_sets[0])
        for facts in candidate_sets[1:]:
            result &= facts
            if not result:
                break
        return result

    def domain(self) -> set[GroundTerm]:
        """``dom(I)``: all constants and nulls appearing in the instance."""
        return set(self._term_positions)

    def constants(self) -> set[Constant]:
        return {t for t in self.domain() if isinstance(t, Constant)}

    def nulls(self) -> set[Null]:
        return {t for t in self.domain() if isinstance(t, Null)}

    def positions_of(self, term: Term) -> set[Position]:
        """``null-pos({term}, I)``: positions at which ``term`` occurs."""
        return {Position(relation, index + 1)
                for relation, index in self._term_positions.get(term, ())}

    def relations(self) -> set[str]:
        return {name for name, facts in self._by_relation.items() if facts}

    def schema(self) -> Schema:
        return Schema.infer(self._facts)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def copy(self) -> "Instance":
        """A fresh instance with the same facts (listeners not copied)."""
        return Instance(self._facts)

    def union(self, other: "Instance") -> "Instance":
        out = self.copy()
        out.add_all(other.facts())
        return out

    def __or__(self, other: "Instance") -> "Instance":
        return self.union(other)

    def __repr__(self) -> str:
        preview = ", ".join(sorted(str(f) for f in self._facts)[:8])
        more = "" if len(self._facts) <= 8 else f", ... ({len(self._facts)} facts)"
        return f"Instance({{{preview}{more}}})"

    def render(self) -> str:
        """A deterministic multi-line rendering (sorted facts)."""
        return "\n".join(sorted(str(f) for f in self._facts))
