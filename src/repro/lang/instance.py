"""Database instances: finite sets of facts with lookup indexes.

An instance is a finite set of atoms over constants and labeled nulls
(Section 2).  The implementation keeps two indexes tuned for the
homomorphism engine that powers the chase:

* relation name -> set of facts,
* ``(relation, position-index, term)`` -> set of facts,

so that candidate facts for a partially-bound body atom can be found
by intersecting small sets instead of scanning.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Set

from repro.lang.atoms import Atom, Position
from repro.lang.errors import SchemaError
from repro.lang.schema import Schema
from repro.lang.terms import Constant, GroundTerm, Null, Term


class Instance:
    """A mutable set of ground atoms (facts) with indexes."""

    def __init__(self, facts: Iterable[Atom] = ()) -> None:
        self._facts: Set[Atom] = set()
        self._by_relation: Dict[str, Set[Atom]] = {}
        self._by_term: Dict[tuple[str, int, GroundTerm], Set[Atom]] = {}
        for fact in facts:
            self.add(fact)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, fact: Atom) -> bool:
        """Insert a fact.  Returns True if it was new."""
        if not fact.is_ground:
            raise SchemaError(f"cannot store non-ground atom {fact}")
        if fact in self._facts:
            return False
        self._facts.add(fact)
        self._by_relation.setdefault(fact.relation, set()).add(fact)
        for i, term in enumerate(fact.args):
            self._by_term.setdefault((fact.relation, i, term), set()).add(fact)
        return True

    def add_all(self, facts: Iterable[Atom]) -> list[Atom]:
        """Insert many facts; return the ones that were actually new."""
        return [fact for fact in facts if self.add(fact)]

    def discard(self, fact: Atom) -> bool:
        """Remove a fact if present.  Returns True if it was removed."""
        if fact not in self._facts:
            return False
        self._facts.discard(fact)
        self._by_relation[fact.relation].discard(fact)
        for i, term in enumerate(fact.args):
            self._by_term[(fact.relation, i, term)].discard(fact)
        return True

    def substitute_term(self, old: GroundTerm, new: GroundTerm) -> list[Atom]:
        """Replace every occurrence of ``old`` by ``new`` (EGD steps).

        Returns the list of facts that changed (their new versions).
        """
        if old == new:
            return []
        # Collect all facts containing ``old`` via the term index.
        affected = [fact for key, facts in list(self._by_term.items())
                    if key[2] == old for fact in facts]
        changed: list[Atom] = []
        seen: set[Atom] = set()
        for fact in affected:
            if fact in seen:
                continue
            seen.add(fact)
            self.discard(fact)
            new_fact = fact.substitute({old: new})
            if self.add(new_fact):
                changed.append(new_fact)
        return changed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, fact: Atom) -> bool:
        return fact in self._facts

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def __eq__(self, other) -> bool:
        return isinstance(other, Instance) and self._facts == other._facts

    def facts(self, relation: str | None = None) -> Set[Atom]:
        """All facts, or the facts of one relation (a fresh set)."""
        if relation is None:
            return set(self._facts)
        return set(self._by_relation.get(relation, ()))

    def matching(self, relation: str, bindings: Mapping[int, GroundTerm]
                 ) -> Set[Atom]:
        """Facts of ``relation`` agreeing with ``bindings``
        (0-based position index -> required term).  Uses the indexes.
        """
        base = self._by_relation.get(relation)
        if not base:
            return set()
        if not bindings:
            return set(base)
        candidate_sets = []
        for i, term in bindings.items():
            facts = self._by_term.get((relation, i, term))
            if not facts:
                return set()
            candidate_sets.append(facts)
        candidate_sets.sort(key=len)
        result = set(candidate_sets[0])
        for facts in candidate_sets[1:]:
            result &= facts
            if not result:
                break
        return result

    def domain(self) -> set[GroundTerm]:
        """``dom(I)``: all constants and nulls appearing in the instance."""
        out: set[GroundTerm] = set()
        for fact in self._facts:
            out.update(fact.args)  # type: ignore[arg-type]
        return out

    def constants(self) -> set[Constant]:
        return {t for t in self.domain() if isinstance(t, Constant)}

    def nulls(self) -> set[Null]:
        return {t for t in self.domain() if isinstance(t, Null)}

    def positions_of(self, term: Term) -> set[Position]:
        """``null-pos({term}, I)``: positions at which ``term`` occurs."""
        out: set[Position] = set()
        for (relation, index, indexed_term), facts in self._by_term.items():
            if indexed_term == term and facts:
                out.add(Position(relation, index + 1))
        return out

    def relations(self) -> set[str]:
        return {name for name, facts in self._by_relation.items() if facts}

    def schema(self) -> Schema:
        return Schema.infer(self._facts)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def copy(self) -> "Instance":
        return Instance(self._facts)

    def union(self, other: "Instance") -> "Instance":
        out = self.copy()
        out.add_all(other.facts())
        return out

    def __or__(self, other: "Instance") -> "Instance":
        return self.union(other)

    def __repr__(self) -> str:
        preview = ", ".join(sorted(str(f) for f in self._facts)[:8])
        more = "" if len(self._facts) <= 8 else f", ... ({len(self._facts)} facts)"
        return f"Instance({{{preview}{more}}})"

    def render(self) -> str:
        """A deterministic multi-line rendering (sorted facts)."""
        return "\n".join(sorted(str(f) for f in self._facts))
