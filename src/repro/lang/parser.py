"""A small text format for constraints, instances and queries.

Grammar (informal)::

    program     := statement (";" | newline)* ...
    constraint  := [label ":"] body? "->" (atoms | equality)
    body        := atoms | "true"
    atoms       := atom ("," atom)*
    atom        := IDENT "(" term ("," term)* ")"
    equality    := IDENT "=" IDENT
    query       := atom "<-" atoms

Term conventions:

* in **constraints and queries**, a bare identifier is a *variable*;
  quoted strings (``'paris'``) and numbers are *constants*;
* in **instances**, a bare identifier is a *constant* and ``?n7`` is
  the labeled null with label 7 (quoted strings/numbers also parse as
  constants).

Examples::

    parse_constraint("S(x), E(x,y) -> E(y,x)")
    parse_constraint("a2: S(x), E(x,y) -> E(y,z), E(z,x)")   # z existential
    parse_constraint("E(x,y), E(x,z) -> y = z")              # EGD
    parse_constraint("-> S(x), E(x,y)")                      # empty body
    parse_instance("S(a). S(b). E(a,b)")
    parse_query("rf(x2) <- rail('c1', x1, y1), fly(x1, x2, y2)")
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.lang.atoms import Atom
from repro.lang.constraints import Constraint, EGD, TGD
from repro.lang.errors import ParseError
from repro.lang.instance import Instance
from repro.lang.terms import Constant, Null, Term, Variable

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<arrow>->)
  | (?P<larrow><-)
  | (?P<null>\?[A-Za-z_][A-Za-z0-9_]*)
  | (?P<number>-?\d+(\.\d+)?)
  | (?P<string>'([^'\\]|\\.)*')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>[(),;:=.])
""", re.VERBOSE)


class _Token:
    __slots__ = ("kind", "text", "pos")

    def __init__(self, kind: str, text: str, pos: int) -> None:
        self.kind = kind
        self.text = text
        self.pos = pos

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Token({self.kind}, {self.text!r})"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError("unexpected character", pos, text)
        kind = match.lastgroup or ""
        if kind == "string":
            kind = "string"
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), pos))
        pos = match.end()
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class _Parser:
    """Recursive-descent parser over the shared token stream."""

    def __init__(self, text: str, instance_mode: bool = False) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0
        self.instance_mode = instance_mode
        self._null_cache: dict[str, Null] = {}
        self._null_counter = 0

    # -- token plumbing -------------------------------------------------
    def peek(self) -> _Token:
        return self.tokens[self.index]

    def next(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind: str, text: str | None = None) -> _Token:
        token = self.next()
        if token.kind != kind or (text is not None and token.text != text):
            want = text if text is not None else kind
            raise ParseError(f"expected {want!r}, found {token.text!r}",
                             token.pos, self.text)
        return token

    def at(self, kind: str, text: str | None = None) -> bool:
        token = self.peek()
        return token.kind == kind and (text is None or token.text == text)

    def skip_separators(self) -> None:
        while self.at("punct", ";") or self.at("punct", "."):
            self.next()

    # -- grammar --------------------------------------------------------
    def term(self) -> Term:
        token = self.next()
        if token.kind == "ident":
            if self.instance_mode:
                return Constant(token.text)
            return Variable(token.text)
        if token.kind == "number":
            value = float(token.text) if "." in token.text else int(token.text)
            return Constant(value)
        if token.kind == "string":
            # Unescape any backslash-escaped character (the renderer
            # escapes backslashes and quotes; the lexer's string rule
            # admits arbitrary \x pairs).
            return Constant(re.sub(r"\\(.)", r"\1",
                                   token.text[1:-1]))
        if token.kind == "null":
            name = token.text[1:]
            if name not in self._null_cache:
                match = re.fullmatch(r"n(\d+)", name)
                if match:
                    self._null_cache[name] = Null(int(match.group(1)))
                else:
                    # Named nulls get negative labels local to this parse.
                    self._null_counter -= 1
                    self._null_cache[name] = Null(self._null_counter)
            return self._null_cache[name]
        raise ParseError(f"expected a term, found {token.text!r}",
                         token.pos, self.text)

    def atom(self) -> Atom:
        name = self.expect("ident").text
        self.expect("punct", "(")
        args = [self.term()]
        while self.at("punct", ","):
            self.next()
            args.append(self.term())
        self.expect("punct", ")")
        return Atom(name, args)

    def atom_list(self) -> list[Atom]:
        atoms = [self.atom()]
        while self.at("punct", ","):
            self.next()
            atoms.append(self.atom())
        return atoms

    def constraint(self) -> Constraint:
        label: str | None = None
        # Optional "label :" prefix (label must not be followed by "(").
        if (self.at("ident")
                and self.tokens[self.index + 1].kind == "punct"
                and self.tokens[self.index + 1].text == ":"):
            label = self.next().text
            self.next()
        body: list[Atom] = []
        if self.at("ident", "true") and self.tokens[self.index + 1].kind == "arrow":
            self.next()
        elif not self.at("arrow"):
            body = self.atom_list()
        self.expect("arrow")
        # EGD: "x = y"; TGD otherwise.
        if (self.at("ident")
                and self.tokens[self.index + 1].kind == "punct"
                and self.tokens[self.index + 1].text == "="):
            lhs_token = self.next()
            self.next()
            rhs_token = self.expect("ident")
            return EGD(body, Variable(lhs_token.text), Variable(rhs_token.text),
                       label=label)
        head = self.atom_list()
        return TGD(body, head, label=label)

    def query(self):
        from repro.cq.query import ConjunctiveQuery
        head = self.atom()
        self.expect("larrow")
        body = self.atom_list()
        head_terms = []
        for arg in head.args:
            head_terms.append(arg)
        return ConjunctiveQuery(name=head.relation, head=tuple(head_terms),
                                body=tuple(body))


def parse_constraint(text: str) -> Constraint:
    """Parse a single TGD or EGD."""
    parser = _Parser(text)
    constraint = parser.constraint()
    parser.skip_separators()
    parser.expect("eof")
    return constraint


def parse_constraints(text: str) -> list[Constraint]:
    """Parse a ``;``- or newline-separated list of constraints."""
    parser = _Parser(text)
    out: list[Constraint] = []
    parser.skip_separators()
    while not parser.at("eof"):
        out.append(parser.constraint())
        parser.skip_separators()
    return out


def parse_atoms(text: str, instance_mode: bool = False) -> list[Atom]:
    """Parse a list of atoms (separators: ``,``, ``;`` or ``.``)."""
    parser = _Parser(text, instance_mode=instance_mode)
    out: list[Atom] = []
    parser.skip_separators()
    while not parser.at("eof"):
        out.append(parser.atom())
        if parser.at("punct", ","):
            parser.next()
        parser.skip_separators()
    return out


def parse_instance(text: str) -> Instance:
    """Parse a database instance; bare identifiers become constants."""
    return Instance(parse_atoms(text, instance_mode=True))


def parse_query(text: str):
    """Parse a conjunctive query ``ans(x) <- body``."""
    parser = _Parser(text)
    query = parser.query()
    parser.skip_separators()
    parser.expect("eof")
    return query


def render_instance(instance) -> str:
    """Render an instance in the parser's text format, one fact per
    line, sorted -- the canonical inverse of :func:`parse_instance`.

    Constants render bare (identifiers/numbers) or quoted, labeled
    nulls as ``?nN``; the output re-parses to an equal instance, which
    is what job specs, fuzz repro files and the batch workload
    generators rely on."""
    return "\n".join(sorted(f"{_render_instance_atom(fact)}."
                            for fact in instance))


def _render_instance_atom(atom: Atom) -> str:
    args = ", ".join(_render_instance_term(t) for t in atom.args)
    return f"{atom.relation}({args})"


def _render_instance_term(term: Term) -> str:
    """Instance-mode term rendering: bare identifiers are constants."""
    if isinstance(term, Constant):
        value = term.value
        if isinstance(value, (int, float)):
            return str(value)
        if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", str(value)):
            return str(value)
        escaped = str(value).replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    if isinstance(term, Null) and term.label >= 0:
        return f"?n{term.label}"
    raise ParseError(f"cannot render term {term!r} in instance position")


def render_constraints(sigma: Iterable[Constraint]) -> str:
    """Render constraints in re-parseable form, one per line."""
    lines = []
    for constraint in sigma:
        prefix = f"{constraint.label}: " if constraint.label else ""
        lines.append(prefix + _render_constraint_body(constraint))
    return "\n".join(lines)


def _render_term(term: Term) -> str:
    """Render a variable/constant/null in the re-parseable text
    format."""
    if isinstance(term, Variable):
        return term.name
    if isinstance(term, Constant):
        if isinstance(term.value, (int, float)):
            return str(term.value)
        # Backslashes before quotes, or a value ending in a backslash
        # renders as an escaped closing quote and fails to re-parse.
        escaped = str(term.value).replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    if isinstance(term, Null) and term.label >= 0:
        # ``?n7`` round-trips; negative labels (parse-local named
        # nulls, internal freezes) have no textual form.
        return f"?n{term.label}"
    raise ParseError(f"cannot render term {term!r} in rule position")


def _render_atom(atom: Atom) -> str:
    return f"{atom.relation}({', '.join(_render_term(t) for t in atom.args)})"


def _render_constraint_body(constraint: Constraint) -> str:
    body = ", ".join(_render_atom(a) for a in constraint.body)
    if isinstance(constraint, TGD):
        head = ", ".join(_render_atom(a) for a in constraint.head)
        return f"{body} -> {head}" if body else f"-> {head}"
    assert isinstance(constraint, EGD)
    return f"{body} -> {constraint.lhs.name} = {constraint.rhs.name}"


def render_query(query) -> str:
    """Render a conjunctive query in re-parseable ``head <- body`` form
    (the wire and fingerprint encoding of query jobs).  Queries with
    empty bodies cannot be expressed in the text format."""
    if not query.body:
        raise ParseError(f"cannot render the body-less query "
                         f"{query.name!r} in the text format")
    head = ", ".join(_render_term(t) for t in query.head)
    body = ", ".join(_render_atom(a) for a in query.body)
    return f"{query.name}({head}) <- {body}"
