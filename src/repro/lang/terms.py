"""Terms of the relational language: constants, labeled nulls, variables.

The paper fixes three pairwise disjoint infinite sets: the constants
``Delta``, the labeled nulls ``Delta_null`` and the variables ``V``
(Section 2, *Databases*).  We model each as a small immutable class so
that terms can be used as dictionary keys and set members, and so that
homomorphisms (which must fix constants but may move nulls) can
dispatch on the term kind cheaply.
"""

from __future__ import annotations

import threading
from typing import Union


class Term:
    """Abstract base class for all terms."""

    __slots__ = ()

    @property
    def is_constant(self) -> bool:
        return isinstance(self, Constant)

    @property
    def is_null(self) -> bool:
        return isinstance(self, Null)

    @property
    def is_variable(self) -> bool:
        return isinstance(self, Variable)


class Constant(Term):
    """An element of the constant domain ``Delta``.

    Homomorphisms are required to map every constant to itself.
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value) -> None:
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash(("Constant", value)))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Constant is immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, Constant) and self.value == other.value

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __str__(self) -> str:
        return str(self.value)


class Null(Term):
    """A labeled null from ``Delta_null``.

    Nulls are created by chase steps for existentially quantified
    variables.  Each null carries a unique integer label; two nulls are
    equal iff their labels are equal.  Nulls may be renamed by
    homomorphisms (unlike constants).
    """

    __slots__ = ("label", "_hash")

    def __init__(self, label: int) -> None:
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "_hash", hash(("Null", label)))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Null is immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, Null) and self.label == other.label

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Null({self.label})"

    def __str__(self) -> str:
        return f"?n{self.label}"


class Variable(Term):
    """A first-order variable.

    Variables appear only in constraints and queries, never in database
    instances.  Universally vs. existentially quantified is a property
    of the enclosing constraint, not of the variable itself.
    """

    __slots__ = ("name", "_hash")

    def __init__(self, name: str) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash(("Variable", name)))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Variable is immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name


GroundTerm = Union[Constant, Null]


class NullFactory:
    """Thread-safe generator of fresh labeled nulls.

    A single module-level factory (:data:`NULLS`) backs the chase
    engine; tests may instantiate private factories or call
    :meth:`reset` for reproducible labels.
    """

    def __init__(self, start: int = 1) -> None:
        self._lock = threading.Lock()
        self._next = start

    def fresh(self) -> Null:
        """Return a null with a label never handed out before."""
        with self._lock:
            label = self._next
            self._next += 1
        return Null(label)

    def reset(self, start: int = 1) -> None:
        """Restart labeling (intended for tests and examples)."""
        with self._lock:
            self._next = start

    def advance_past(self, label: int) -> None:
        """Guarantee every future label exceeds ``label``.

        The chase calls this with the highest null label of its input
        instance: a "fresh" null whose label collides with a null
        already present would silently alias two distinct values (and
        an EGD equating the old one would corrupt the new one).
        Monotone, so advancing a shared factory is always safe.
        """
        with self._lock:
            if self._next <= label:
                self._next = label + 1


#: Default factory used by the chase engine when none is supplied.
NULLS = NullFactory()


def fresh_null() -> Null:
    """Convenience wrapper around the default :class:`NullFactory`."""
    return NULLS.fresh()
