"""Relational atoms and database positions.

A *position* is a pair ``(R, i)`` for a relation symbol ``R`` and a
1-based index ``i <= ar(R)`` (Section 2 of the paper, where position
``(E, 1)`` is written ``E^1``).  Positions are the vertices of the
dependency graph (Definition 1) and the propagation graph
(Definition 7), and the currency of affected-position computations.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.lang.errors import SchemaError
from repro.lang.terms import Constant, Null, Term, Variable


class Position:
    """A database position ``R^i`` (1-based, as in the paper)."""

    __slots__ = ("relation", "index", "_hash")

    def __init__(self, relation: str, index: int) -> None:
        if index < 1:
            raise SchemaError(f"positions are 1-based, got {relation}^{index}")
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "index", index)
        object.__setattr__(self, "_hash", hash((relation, index)))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Position is immutable")

    def __eq__(self, other) -> bool:
        return (isinstance(other, Position)
                and self.relation == other.relation
                and self.index == other.index)

    def __lt__(self, other: "Position") -> bool:
        return (self.relation, self.index) < (other.relation, other.index)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Position({self.relation!r}, {self.index})"

    def __str__(self) -> str:
        return f"{self.relation}^{self.index}"


class Atom:
    """A relational atom ``R(t_1, ..., t_n)``.

    Atoms are immutable; the argument tuple may mix variables,
    constants and labeled nulls.  An atom whose arguments are all
    constants or nulls is a *fact* and may be stored in an instance.
    """

    __slots__ = ("relation", "args", "_hash")

    def __init__(self, relation: str, args: Iterable[Term]) -> None:
        args = tuple(args)
        for arg in args:
            if not isinstance(arg, Term):
                raise SchemaError(
                    f"atom argument {arg!r} is not a Term; "
                    "wrap raw values in Constant/Variable/Null")
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "_hash", hash((relation, args)))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Atom is immutable")

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def is_ground(self) -> bool:
        """True when the atom contains no variables (it is a fact)."""
        return not any(isinstance(a, Variable) for a in self.args)

    def variables(self) -> set[Variable]:
        return {a for a in self.args if isinstance(a, Variable)}

    def constants(self) -> set[Constant]:
        return {a for a in self.args if isinstance(a, Constant)}

    def nulls(self) -> set[Null]:
        return {a for a in self.args if isinstance(a, Null)}

    def positions(self) -> list[Position]:
        """All positions of this atom, in order."""
        return [Position(self.relation, i + 1) for i in range(self.arity)]

    def positions_of(self, term: Term) -> set[Position]:
        """The positions at which ``term`` occurs in this atom."""
        return {Position(self.relation, i + 1)
                for i, a in enumerate(self.args) if a == term}

    def substitute(self, mapping: Mapping[Term, Term]) -> "Atom":
        """Apply ``mapping`` to every argument (identity on misses)."""
        return Atom(self.relation, tuple(mapping.get(a, a) for a in self.args))

    def __eq__(self, other) -> bool:
        return (isinstance(other, Atom)
                and self.relation == other.relation
                and self.args == other.args)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Atom({self.relation!r}, {self.args!r})"

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.relation}({inner})"


def atoms_variables(atoms: Iterable[Atom]) -> set[Variable]:
    """The set of variables occurring in a collection of atoms."""
    out: set[Variable] = set()
    for atom in atoms:
        out.update(atom.variables())
    return out


def atoms_constants(atoms: Iterable[Atom]) -> set[Constant]:
    """The set of constants occurring in a collection of atoms."""
    out: set[Constant] = set()
    for atom in atoms:
        out.update(atom.constants())
    return out


def atoms_positions(atoms: Iterable[Atom]) -> set[Position]:
    """The set of positions spanned by a collection of atoms."""
    out: set[Position] = set()
    for atom in atoms:
        out.update(atom.positions())
    return out


def occurrences(atoms: Iterable[Atom], term: Term) -> set[Position]:
    """Positions at which ``term`` occurs across ``atoms``."""
    out: set[Position] = set()
    for atom in atoms:
        out.update(atom.positions_of(term))
    return out


def iter_term_positions(atoms: Iterable[Atom]) -> Iterator[tuple[Term, Position]]:
    """Yield every ``(term, position)`` occurrence pair."""
    for atom in atoms:
        for i, arg in enumerate(atom.args):
            yield arg, Position(atom.relation, i + 1)
