PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-fast test-service query-smoke fuzz-smoke kernel-smoke obs-smoke http-smoke bench bench-smoke bench-json check-bench docs-check

test:
	$(PYTHON) -m pytest -x -q

# Tier-1 minus the marked-slow stress tests -- the quick inner loop.
test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow and not fuzz"

# Seeded metamorphic smoke corpus: 200 generated constraint sets
# through every oracle (hierarchy, termination, backend/engine parity,
# core isomorphism, certain answers, service parity).  Deterministic
# for a fixed seed; minimized repro specs for any violation land in
# examples/repros/.  Budgeted to finish well under a minute.
fuzz-smoke:
	$(PYTHON) -m repro fuzz --seed 0 --cases 200 --repro-dir examples/repros

# Service-layer smoke: worker pool (2 workers), budget kills, cache,
# batch/serve CLI -- plus a real `repro batch` over the example jobs.
test-service:
	$(PYTHON) -m pytest tests/service tests/integration/test_cli.py \
	    tests/chase/test_budgets.py -q
	$(PYTHON) -m repro batch examples/jobs --workers 2 --events

# Query-service smoke: the shipped certain-answer specs (terminating,
# stratified-only, depth-bounded guarded) end to end through
# `repro query` on 2 workers.
query-smoke:
	$(PYTHON) -m repro query examples/queries --workers 2 --events

# Kernel-layer smoke: posting-list protocol + column kernel units,
# batch/tuple parity suite, and a timing-disabled pass over the
# kernel microbenchmarks (parity asserts still run inside them).
kernel-smoke:
	$(PYTHON) -m pytest tests/homomorphism/test_kernels.py \
	    tests/homomorphism/test_batch.py -q
	REPRO_BENCH_SIZES=4,8 $(PYTHON) -m pytest \
	    benchmarks/bench_join_kernels.py -q --benchmark-disable

# Observability smoke: the obs test package, then a real instrumented
# 2-worker batch -- merged fleet-wide metrics on stderr, an NDJSON
# trace validated against the span schema by tools/check_trace.py.
obs-smoke:
	$(PYTHON) -m pytest tests/obs -q
	$(PYTHON) -m repro batch examples/jobs --workers 2 \
	    --metrics --metrics-json OBS_smoke.json --trace OBS_smoke.ndjson
	$(PYTHON) tools/check_trace.py OBS_smoke.ndjson
	$(PYTHON) -m repro stats OBS_smoke.json > /dev/null
	@rm -f OBS_smoke.json OBS_smoke.ndjson
	@echo "obs ok"

# HTTP front-end smoke: a real `repro serve --http` subprocess on an
# ephemeral port, a 16-request mixed burst (chase/query/cached/
# malformed) from concurrent stdlib clients, /stats schema validation
# and a graceful POST /shutdown drain -- all via tools/http_smoke.py.
http-smoke:
	$(PYTHON) tools/http_smoke.py

bench:
	$(PYTHON) -m pytest benchmarks/bench_*.py -q

bench-smoke:
	REPRO_BENCH_SIZES=4,8 $(PYTHON) -m pytest benchmarks/bench_chase_scaling.py -q --benchmark-disable

# Timed run of the scaling + kernel benches, persisted as a JSON
# artifact so the perf trajectory (incremental index, storage
# backends, batch kernels) is tracked across PRs.  Honours
# REPRO_BENCH_SIZES.
bench-json:
	$(PYTHON) -m pytest benchmarks/bench_chase_scaling.py \
	    benchmarks/bench_join_kernels.py -q \
	    --benchmark-json=BENCH_chase_scaling.json
	@echo "wrote BENCH_chase_scaling.json"

# Regression gate against the committed baseline: re-times the bench
# into a scratch JSON and compares per-benchmark mean ratios,
# normalized by the run-wide median (machine speed cancels out).
check-bench:
	REPRO_BENCH_SIZES=4,8 $(PYTHON) -m pytest \
	    benchmarks/bench_chase_scaling.py \
	    benchmarks/bench_join_kernels.py -q \
	    --benchmark-json=BENCH_fresh.json
	$(PYTHON) tools/check_bench.py BENCH_chase_scaling.json BENCH_fresh.json
	@rm -f BENCH_fresh.json

# Fails on broken intra-repo markdown links and on references to
# nonexistent files from docs or docstrings (the class of rot where a
# module keeps pointing at a long-deleted design document).
docs-check:
	@test -f docs/ARCHITECTURE.md || { echo "docs/ARCHITECTURE.md missing"; exit 1; }
	@test -f docs/PAPER_MAP.md || { echo "docs/PAPER_MAP.md missing"; exit 1; }
	$(PYTHON) tools/check_docs.py
	$(PYTHON) examples/quickstart.py > /dev/null
	@echo "docs ok"
