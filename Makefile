PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-service bench bench-smoke bench-json docs-check

test:
	$(PYTHON) -m pytest -x -q

# Service-layer smoke: worker pool (2 workers), budget kills, cache,
# batch/serve CLI -- plus a real `repro batch` over the example jobs.
test-service:
	$(PYTHON) -m pytest tests/service tests/integration/test_cli.py \
	    tests/chase/test_budgets.py -q
	$(PYTHON) -m repro batch examples/jobs --workers 2 --events

bench:
	$(PYTHON) -m pytest benchmarks/bench_*.py -q

bench-smoke:
	REPRO_BENCH_SIZES=4,8 $(PYTHON) -m pytest benchmarks/bench_chase_scaling.py -q --benchmark-disable

# Timed run of the scaling bench, persisted as a JSON artifact so the
# perf trajectory (incremental index, storage backends) is tracked
# across PRs.  Honours REPRO_BENCH_SIZES.
bench-json:
	$(PYTHON) -m pytest benchmarks/bench_chase_scaling.py -q \
	    --benchmark-json=BENCH_chase_scaling.json
	@echo "wrote BENCH_chase_scaling.json"

docs-check:
	@test -f README.md || { echo "README.md missing"; exit 1; }
	@test -f docs/ARCHITECTURE.md || { echo "docs/ARCHITECTURE.md missing"; exit 1; }
	$(PYTHON) examples/quickstart.py > /dev/null
	@echo "docs ok"
