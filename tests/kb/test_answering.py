"""Certain-answer computation and the depth-bounded chase."""

import pytest

from repro.chase import chase
from repro.kb.answering import (certain_answers, default_depth,
                                depth_bounded_chase)
from repro.kb.guarded_null import (sequence_has_guarded_nulls,
                                   step_has_guarded_nulls)
from repro.kb.treewidth import (gaifman_graph, lemma6_bound,
                                treewidth_upper_bound)
from repro.lang.parser import (parse_constraints, parse_instance,
                               parse_query)
from repro.lang.terms import Constant


class TestDepthBoundedChase:
    def test_truncates_divergent_chase(self):
        sigma = parse_constraints("S(x) -> E(x,y), S(y)")
        inst = parse_instance("S(a)")
        bounded = depth_bounded_chase(inst, sigma, depth_limit=3)
        assert bounded.truncated
        assert all(d <= 3 for d in bounded.null_depths.values())
        # exactly 3 generations of nulls
        assert len(bounded.instance.nulls()) == 3

    def test_exact_on_terminating_sets(self):
        sigma = parse_constraints("S(x) -> E(x,y)")
        inst = parse_instance("S(a). S(b)")
        bounded = depth_bounded_chase(inst, sigma, depth_limit=5)
        assert not bounded.truncated
        exact = chase(inst, sigma)
        assert len(bounded.instance) == len(exact.instance)

    def test_depth_respects_provenance(self):
        sigma = parse_constraints("S(x) -> E(x,y), S(y)")
        bounded = depth_bounded_chase(parse_instance("S(a)"), sigma, 2)
        depths = sorted(bounded.null_depths.values())
        assert depths == [1, 2]

    def test_fact_budget_truncates_earlier(self):
        sigma = parse_constraints("S(x) -> E(x,y), S(y)")
        inst = parse_instance("S(a)")
        capped = depth_bounded_chase(inst, sigma, depth_limit=50,
                                     max_facts=5)
        assert capped.truncated and len(capped.instance) <= 7

    def test_wall_clock_budget_truncates(self):
        sigma = parse_constraints("S(x) -> E(x,y), S(y)")
        inst = parse_instance("S(a)")
        capped = depth_bounded_chase(inst, sigma, depth_limit=10_000,
                                     max_steps=1_000_000, wall_clock=0.0)
        assert capped.truncated and capped.steps <= 1


class TestCertainAnswers:
    def test_exact_path(self):
        sigma = parse_constraints("E(x,y) -> E(y,x)")
        inst = parse_instance("E(a,b)")
        q = parse_query("q(x,y) <- E(x,y)")
        answers = certain_answers(inst, sigma, q)
        assert answers == {(Constant("a"), Constant("b")),
                           (Constant("b"), Constant("a"))}

    def test_divergent_kb_constant_answers(self):
        """On the divergent intro set, constants-only answers are still
        computed from the bounded prefix."""
        sigma = parse_constraints("S(x) -> E(x,y), S(y)")
        inst = parse_instance("S(a). E(a,b). S(b)")
        q = parse_query("q(u) <- S(u)")
        answers = certain_answers(inst, sigma, q, max_steps=60)
        assert answers == {(Constant("a"),), (Constant("b"),)}

    def test_join_through_nulls(self):
        """A query that joins through a null witness but outputs
        constants is answerable on the prefix."""
        sigma = parse_constraints("S(x) -> E(x,y), S(y)")
        inst = parse_instance("S(a)")
        q = parse_query("q(u) <- S(u), E(u, v)")
        answers = certain_answers(inst, sigma, q, max_steps=40)
        assert answers == {(Constant("a"),)}

    def test_default_depth_scales_with_query(self):
        sigma = parse_constraints("S(x) -> E(x,y)")
        small = parse_query("q(u) <- S(u)")
        large = parse_query("q(u) <- S(u), E(u,v), E(v,w)")
        assert default_depth(large, sigma) > default_depth(small, sigma)


class TestGuardedNullProperty:
    def test_guarded_run(self):
        sigma = parse_constraints("R(x,y), S(y) -> R(y,z)")
        inst = parse_instance("R(a,b). S(b)")
        result = chase(inst, sigma, max_steps=100)
        assert sequence_has_guarded_nulls(result.sequence, inst)

    def test_unguarded_step_detected(self):
        # alpha2's trigger can split two nulls across body atoms
        sigma = parse_constraints("""
            P(x) -> E(x,y), F(x,z);
            E(x,y), F(x,z) -> G(y,z)
        """)
        inst = parse_instance("P(a)")
        result = chase(inst, sigma, max_steps=100)
        assert result.terminated
        assert not sequence_has_guarded_nulls(result.sequence, inst)

    def test_base_nulls_exempt(self):
        """Nulls already in dom(I) do not need guarding (Def. 21)."""
        sigma = parse_constraints("E(x,y), F(x,z) -> G(y,z)")
        inst = parse_instance("E(a,?n1). F(a,?n2)")
        result = chase(inst, sigma, max_steps=10)
        assert sequence_has_guarded_nulls(result.sequence, inst)


class TestTreewidth:
    def test_gaifman_graph(self):
        inst = parse_instance("E(a,b). E(b,c)")
        graph = gaifman_graph(inst)
        assert graph.has_edge(Constant("a"), Constant("b"))
        assert not graph.has_edge(Constant("a"), Constant("c"))

    def test_path_has_treewidth_one(self):
        inst = parse_instance("E(a,b). E(b,c). E(c,d)")
        assert treewidth_upper_bound(inst) == 1

    def test_lemma6_bound_holds_on_guarded_chase(self):
        sigma = parse_constraints("R(x,y), S(y) -> R(y,z)")
        inst = parse_instance("R(a,b). S(b). S(a)")
        result = chase(inst, sigma, max_steps=200)
        assert result.terminated
        assert sequence_has_guarded_nulls(result.sequence, inst)
        assert treewidth_upper_bound(result.instance) <= lemma6_bound(inst, 2)
