"""Weak / restricted guardedness (Section 5, Defs. 20 and 22)."""

from hypothesis import given, settings

from repro.kb.guardedness import (is_restrictedly_guarded, is_weakly_guarded,
                                  restricted_guards, weak_guards)
from repro.lang.parser import parse_constraints
from repro.workloads.paper import example19

from tests.conftest import graph_tgd_sets


class TestWeakGuardedness:
    def test_single_guarded_tgd(self):
        sigma = parse_constraints("R(x,y), S(y) -> R(y,z)")
        assert is_weakly_guarded(sigma)

    def test_example19_not_weakly_guarded(self):
        """aff(Sigma) covers all R/S positions and alpha2 has no atom
        containing x1, x2, x3."""
        assert not is_weakly_guarded(example19())

    def test_guards_reported(self):
        sigma = parse_constraints("S(x) -> E(x,y)")
        guards = weak_guards(sigma)
        assert guards is not None
        (tgd,) = sigma
        assert guards[tgd] in tgd.body

    def test_full_tgds_trivially_guarded(self):
        sigma = parse_constraints("E(x,y) -> E(y,x); E(x,y), E(y,z) -> E(x,z)")
        assert is_weakly_guarded(sigma)  # no affected positions at all


class TestRestrictedGuardedness:
    def test_example19_restrictedly_guarded(self):
        """The separating example: RG but not WG (Lemma 7b)."""
        sigma = example19()
        assert is_restrictedly_guarded(sigma)
        guards = restricted_guards(sigma)
        assert guards is not None
        alpha2 = next(c for c in sigma if c.label == "a2")
        # the paper: S(x1, x2) serves as alpha2's restricted guard
        assert guards[alpha2] in alpha2.body

    def test_lemma7a_wg_implies_rg(self):
        for text in ("R(x,y), S(y) -> R(y,z)",
                     "S(x) -> E(x,y)",
                     "E(x,y) -> E(y,x)"):
            sigma = parse_constraints(text)
            assert is_weakly_guarded(sigma)
            assert is_restrictedly_guarded(sigma)

    @given(graph_tgd_sets(max_size=2))
    @settings(max_examples=10, deadline=None)
    def test_lemma7a_property(self, sigma):
        if is_weakly_guarded(sigma):
            assert is_restrictedly_guarded(sigma)

    def test_unguardable_set(self):
        # both positions of both body atoms affected; no atom covers
        # x1, x2, x3 together
        sigma = parse_constraints("""
            P(x) -> E(x,y), E(y,x);
            E(x1,x2), E(x2,x3) -> E(x1,x3), P(x1)
        """)
        assert not is_weakly_guarded(sigma)
