"""TermTable unit tests: dense ids, bijectivity, permanence."""

from repro.lang.terms import Constant, Null
from repro.storage.interning import TermTable

a, b = Constant("a"), Constant("b")
n1 = Null(1)


class TestTermTable:
    def test_ids_are_dense_and_stable(self):
        table = TermTable()
        assert table.intern(a) == 0
        assert table.intern(b) == 1
        assert table.intern(a) == 0  # idempotent
        assert len(table) == 2

    def test_round_trip(self):
        table = TermTable()
        for term in (a, b, n1):
            assert table.term(table.intern(term)) == term

    def test_id_of_does_not_insert(self):
        table = TermTable()
        assert table.id_of(a) is None
        assert len(table) == 0
        table.intern(a)
        assert table.id_of(a) == 0

    def test_equal_terms_share_an_id(self):
        table = TermTable()
        assert table.intern(Constant("x")) == table.intern(Constant("x"))
        assert table.intern(Null(7)) == table.intern(Null(7))

    def test_contains(self):
        table = TermTable()
        table.intern(a)
        assert a in table and b not in table
