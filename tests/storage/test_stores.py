"""Storage-backend tests: SetStore/ColumnStore parity.

The set backend is the reference semantics; the columnar backend must
be observationally identical through the ``Instance`` facade -- same
query answers, same listener event sequences, and (the acceptance bar)
identical chase results over randomized generator workloads.
"""

import pytest
from hypothesis import given, settings

from repro.chase import chase, ChaseStatus, oblivious_chase, OrderedStrategy
from repro.homomorphism.engine import null_renaming_equivalent
from repro.homomorphism.extend import all_satisfied
from repro.lang.atoms import Atom, Position
from repro.lang.instance import Instance
from repro.lang.parser import parse_instance
from repro.lang.terms import Constant, Null
from repro.storage import ColumnStore, SetStore, make_store
from repro.workloads.generators import (random_constraint_set,
                                        random_full_tgds,
                                        random_graph_instance,
                                        random_instance, random_schema)

from tests.conftest import graph_instances

BACKENDS = ["set", "column"]

a, b, c = Constant("a"), Constant("b"), Constant("c")
n1, n2 = Null(901), Null(902)


def both(facts):
    return (Instance(facts, backend="set"),
            Instance(facts, backend="column"))


# ----------------------------------------------------------------------
# Facade parity on the query API
# ----------------------------------------------------------------------
class TestQueryParity:
    @given(graph_instances())
    @settings(max_examples=30, deadline=None)
    def test_queries_agree(self, inst):
        facts = sorted(inst.facts(), key=str)
        left, right = both(facts)
        assert left == right
        assert left.facts("E") == right.facts("E")
        assert left.domain() == right.domain()
        assert left.relations() == right.relations()
        for term in left.domain():
            assert left.positions_of(term) == right.positions_of(term)
        for fact in facts:
            bindings = dict(enumerate(fact.args))
            assert (left.matching(fact.relation, bindings)
                    == right.matching(fact.relation, bindings))
            assert (left.matching(fact.relation, {0: fact.args[0]})
                    == right.matching(fact.relation, {0: fact.args[0]}))
        assert left.matching("E", {}) == right.matching("E", {})

    @given(graph_instances())
    @settings(max_examples=20, deadline=None)
    def test_scan_agrees(self, inst):
        facts = sorted(inst.facts(), key=str)
        left, right = both(facts)
        for relation, arity in (("E", 2), ("S", 1)):
            decoded = []
            for instance in (left, right):
                store = instance.store
                term_of = store.terms.term
                decoded.append({tuple(term_of(tid) for tid in row)
                                for row in store.scan(relation, arity, [])})
            assert decoded[0] == decoded[1]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mutation_semantics(self, backend):
        inst = Instance(backend=backend)
        fact = Atom("E", (a, b))
        assert inst.add(fact) and not inst.add(fact)
        assert len(inst) == 1 and fact in inst
        assert inst.discard(fact) and not inst.discard(fact)
        assert len(inst) == 0 and inst.matching("E", {0: a}) == set()
        assert inst.domain() == set()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_substitute_merges_and_reindexes(self, backend):
        inst = Instance([Atom("E", (a, n1)), Atom("E", (n1, b)),
                         Atom("E", (a, b))], backend=backend)
        changed = inst.substitute_term(n1, b)
        # E(a, n1) merges onto the existing E(a, b).
        assert len(inst) == 2
        assert changed == [Atom("E", (b, b))]
        assert inst.matching("E", {0: n1}) == set()
        assert inst.positions_of(n1) == set()
        assert n1 not in inst.domain()

    def test_nullary_relations_scan_on_both_backends(self):
        """Regression: zip() over zero columns yields nothing, so the
        column backend used to lose arity-0 facts from scans."""
        from repro.homomorphism.engine import find_homomorphisms
        from repro.lang.terms import Variable
        x = Variable("x")
        facts = [Atom("P", ()), Atom("Q", (a,))]
        pattern = [Atom("P", ()), Atom("Q", (x,))]
        expected = [{x: a}]
        for backend in BACKENDS:
            inst = Instance(facts, backend=backend)
            assert list(find_homomorphisms(pattern, inst)) == expected
            store = inst.store
            assert list(store.scan("P", 0, [])) == [()]
            inst.discard(Atom("P", ()))
            assert list(store.scan("P", 0, [])) == []

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_positions_of_after_discard(self, backend):
        inst = Instance([Atom("E", (a, n1)), Atom("S", (n1,))],
                        backend=backend)
        inst.discard(Atom("S", (n1,)))
        assert inst.positions_of(n1) == {Position("E", 2)}


# ----------------------------------------------------------------------
# Listener event sequences (identical on every backend)
# ----------------------------------------------------------------------
class Recorder:
    def __init__(self):
        self.events = []

    def fact_added(self, fact):
        self.events.append(("+", fact))

    def fact_removed(self, fact):
        self.events.append(("-", fact))


class TestListenerOrdering:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_substitute_removal_precedes_addition_per_fact(self, backend):
        inst = Instance([Atom("E", (a, n1)), Atom("E", (n1, b))],
                        backend=backend)
        recorder = Recorder()
        inst.add_listener(recorder)
        inst.substitute_term(n1, c)
        # Rewritten in insertion order, removal before the rewrite.
        assert recorder.events == [
            ("-", Atom("E", (a, n1))), ("+", Atom("E", (a, c))),
            ("-", Atom("E", (n1, b))), ("+", Atom("E", (c, b)))]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_merge_produces_no_addition_event(self, backend):
        inst = Instance([Atom("E", (a, n1)), Atom("E", (a, b))],
                        backend=backend)
        recorder = Recorder()
        inst.add_listener(recorder)
        inst.substitute_term(n1, b)
        assert recorder.events == [("-", Atom("E", (a, n1)))]

    def test_sequences_identical_across_backends(self):
        facts = [Atom("E", (a, n1)), Atom("E", (n1, n2)),
                 Atom("S", (n1,)), Atom("E", (b, c))]
        sequences = []
        for backend in BACKENDS:
            inst = Instance(facts, backend=backend)
            recorder = Recorder()
            inst.add_listener(recorder)
            inst.substitute_term(n1, a)
            inst.substitute_term(n2, b)
            sequences.append(recorder.events)
        assert sequences[0] == sequences[1]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_listeners_fire_in_registration_order(self, backend):
        inst = Instance(backend=backend)
        order = []
        first, second = Recorder(), Recorder()
        first.fact_added = lambda fact: order.append("first")
        second.fact_added = lambda fact: order.append("second")
        inst.add_listener(first)
        inst.add_listener(second)
        inst.add(Atom("S", (a,)))
        assert order == ["first", "second"]


# ----------------------------------------------------------------------
# Fact ids and columnar internals
# ----------------------------------------------------------------------
class TestFactIds:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_ids_survive_removal_and_reinsertion(self, backend):
        store = make_store(backend)
        fact = Atom("E", (a, b))
        store.add(fact)
        fid = store.fact_id(fact)
        assert fid is not None and store.alive(fid)
        store.discard(fact)
        assert store.fact_id(fact) == fid and not store.alive(fid)
        assert store.fact_of(fid) == fact
        store.add(Atom("E", (a, b)))
        assert store.fact_id(fact) == fid and store.alive(fid)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_row_fid_matches_fact_id(self, backend):
        store = make_store(backend)
        fact = Atom("E", (a, b))
        store.add(fact)
        ids = tuple(store.terms.id_of(term) for term in fact.args)
        assert store.row_fid("E", 2, ids) == store.fact_id(fact)
        assert store.has_row("E", 2, ids)
        store.discard(fact)
        assert store.row_fid("E", 2, ids) is None
        assert not store.has_row("E", 2, ids)

    def test_column_store_compaction_preserves_answers(self):
        store = ColumnStore()
        facts = [Atom("E", (Constant(f"v{i}"), Constant(f"v{i+1}")))
                 for i in range(200)]
        for fact in facts:
            store.add(fact)
        keep = facts[::3]
        for fact in facts:
            if fact not in keep:
                store.discard(fact)  # tombstones, then compaction
        bucket = store._bucket("E", 2)
        assert bucket.dead < len(facts)  # compaction ran at some point
        assert store.facts("E") == set(keep)
        for fact in keep:
            fid = store.fact_id(fact)
            assert store.alive(fid) and store.fact_of(fid) == fact
            assert store.matching("E", {0: fact.args[0]}) == {fact}
        decoded = {tuple(store.terms.term(tid) for tid in row)
                   for row in store.scan("E", 2, [])}
        assert decoded == {fact.args for fact in keep}

    def test_set_store_is_default_reference(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert isinstance(Instance().store, SetStore)


# ----------------------------------------------------------------------
# Randomized cross-validation: identical chase results on both backends
# ----------------------------------------------------------------------
def _chase_on(backend, sigma, facts, **kw):
    return chase(Instance(facts, backend=backend), sigma,
                 strategy=OrderedStrategy(), **kw)


class TestChaseCrossValidation:
    @pytest.mark.parametrize("seed", range(8))
    def test_full_tgd_generator_workloads_agree(self, seed):
        """Full TGDs always terminate: both backends must reach
        null-renaming-equivalent results."""
        sigma = random_full_tgds(seed, size=4)
        schema = random_schema(__import__("random").Random(seed))
        facts = sorted(random_instance(seed, schema, n_facts=12).facts(),
                       key=str)
        results = [_chase_on(backend, sigma, facts, max_steps=5000)
                   for backend in BACKENDS]
        assert all(r.status is ChaseStatus.TERMINATED for r in results)
        assert null_renaming_equivalent(results[0].instance,
                                        results[1].instance)
        for result in results:
            assert all_satisfied(sigma, result.instance)

    @pytest.mark.parametrize("seed", range(8))
    def test_existential_generator_workloads_agree(self, seed):
        """Random TGD sets over the graph schema (possibly divergent):
        same status under the same budget; equivalent when terminating."""
        sigma = random_constraint_set(seed, size=3,
                                      existential_probability=0.5)
        facts = sorted(random_graph_instance(seed, n_nodes=5).facts(),
                       key=str)
        results = [_chase_on(backend, sigma, facts, max_steps=300)
                   for backend in BACKENDS]
        assert results[0].status is results[1].status
        if results[0].status is ChaseStatus.TERMINATED:
            assert null_renaming_equivalent(results[0].instance,
                                            results[1].instance)

    @pytest.mark.parametrize("seed", range(4))
    def test_egd_generator_workloads_agree(self, seed):
        sigma = random_constraint_set(seed, size=4,
                                      existential_probability=0.3,
                                      egd_probability=0.5)
        facts = sorted(random_graph_instance(seed + 100, n_nodes=4).facts(),
                       key=str)
        results = [_chase_on(backend, sigma, facts, max_steps=300)
                   for backend in BACKENDS]
        assert results[0].status is results[1].status
        if results[0].status is ChaseStatus.TERMINATED:
            assert null_renaming_equivalent(results[0].instance,
                                            results[1].instance)

    @pytest.mark.parametrize("seed", range(4))
    def test_oblivious_chase_agrees(self, seed):
        sigma = random_full_tgds(seed, size=3)
        schema = random_schema(__import__("random").Random(seed))
        facts = sorted(random_instance(seed, schema, n_facts=8).facts(),
                       key=str)
        results = [oblivious_chase(Instance(facts, backend=backend), sigma,
                                   max_steps=4000)
                   for backend in BACKENDS]
        assert results[0].status is results[1].status
        if results[0].status is ChaseStatus.TERMINATED:
            assert results[0].length == results[1].length
            assert null_renaming_equivalent(results[0].instance,
                                            results[1].instance)

    def test_egd_failure_and_merge_families(self):
        for text, instance_text in [
            ("E(x,y), E(x,z) -> y = z", "E(a,b). E(a,c)"),
            ("E(x,y), E(x,z) -> y = z", "E(a,b). E(a,?n1). E(?n1,c)"),
        ]:
            from repro.lang.parser import parse_constraints
            sigma = parse_constraints(text)
            facts = sorted(parse_instance(instance_text).facts(), key=str)
            results = [_chase_on(backend, sigma, facts, max_steps=100)
                       for backend in BACKENDS]
            assert results[0].status is results[1].status
            if results[0].status is ChaseStatus.TERMINATED:
                assert null_renaming_equivalent(results[0].instance,
                                                results[1].instance)
