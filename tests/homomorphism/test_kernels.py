"""Unit tests of the column kernels and the posting-list protocol.

The kernels (:mod:`repro.homomorphism.kernels`) and the
:class:`~repro.storage.base.PostingList` primitive are exercised
directly -- intersection against brute-force set intersection,
hash join against nested loops, candidate narrowing against full
scans -- on both backends' protocol implementations.
"""

from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.homomorphism.kernels import (candidate_rows, cross_pairs,
                                        hash_build, hash_join, take)
from repro.lang.atoms import Atom
from repro.lang.instance import Instance
from repro.lang.terms import Constant
from repro.storage.base import PostingList

BACKENDS = ["set", "column"]


def plist(values):
    return PostingList(array("q", values))


class TestPostingList:
    def test_gallop_finds_first_at_or_above(self):
        rows = array("q", [2, 4, 4, 8, 16, 32])
        assert PostingList.gallop(rows, 0) == 0
        assert PostingList.gallop(rows, 2) == 0
        assert PostingList.gallop(rows, 3) == 1
        assert PostingList.gallop(rows, 4) == 1
        assert PostingList.gallop(rows, 5) == 3
        assert PostingList.gallop(rows, 33) == len(rows)
        assert PostingList.gallop(rows, 8, lo=4) == 4

    @given(st.lists(st.integers(0, 200), max_size=40),
           st.lists(st.integers(0, 200), max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_intersect_matches_set_semantics(self, left, right):
        left, right = sorted(set(left)), sorted(set(right))
        out = plist(left).intersect(plist(right))
        assert list(out) == sorted(set(left) & set(right))

    def test_intersect_skewed_pair(self):
        small = plist([5, 1000, 99999])
        large = plist(range(0, 100000, 5))
        assert list(small.intersect(large)) == [5, 1000]
        assert list(large.intersect(small)) == [5, 1000]

    def test_empty_intersections(self):
        assert list(plist([]).intersect(plist([1, 2]))) == []
        assert list(plist([1, 2]).intersect(plist([]))) == []
        assert list(plist([1, 3]).intersect(plist([2, 4]))) == []

    def test_materialize_is_indexable(self):
        rows = plist([1, 2, 3]).materialize()
        assert rows[1] == 2 and len(rows) == 3


class TestKernels:
    def test_take_gathers(self):
        column = [10, 20, 30, 40]
        assert list(take(column, [])) == []
        assert list(take(column, [2])) == [30]
        assert list(take(column, [0, 3, 1])) == [10, 40, 20]

    def test_hash_build_and_join_single_key(self):
        build = hash_build([[7, 8, 7]], 3)
        assert build == {7: [0, 2], 8: [1]}
        left, right = hash_join([[8, 7, 9]], 3, build)
        assert list(left) == [0, 1, 1]
        assert list(right) == [1, 0, 2]

    def test_hash_join_composite_key(self):
        build = hash_build([[1, 1, 2], [5, 6, 5]], 3)
        left, right = hash_join([[1, 2], [5, 5]], 2, build)
        assert list(left) == [0, 1]
        assert list(right) == [0, 2]

    def test_cross_pairs_table_major(self):
        left, right = cross_pairs(2, 3)
        assert list(left) == [0, 0, 0, 1, 1, 1]
        assert list(right) == [0, 1, 2, 0, 1, 2]
        empty_left, empty_right = cross_pairs(0, 3)
        assert list(empty_left) == [] and list(empty_right) == []


@pytest.mark.parametrize("backend", BACKENDS)
class TestProtocolOnStores:
    def _store(self, backend):
        facts = [Atom("E", (Constant(f"a{i % 4}"), Constant(f"b{i % 3}")))
                 for i in range(12)]
        facts += [Atom("S", (Constant("a1"),)), Atom("S", (Constant("z"),))]
        return Instance(facts, backend=backend).store

    def test_posting_lists_are_sorted_live_and_decodable(self, backend):
        store = self._store(backend)
        tid = store.terms.id_of(Constant("a1"))
        plist_ = store.posting_list("E", 2, 0, tid)
        rows = list(plist_)
        assert rows == sorted(rows) and len(rows) == len(set(rows))
        assert len(rows) == store.posting_size("E", 0, tid)
        [column] = store.batch_columns("E", 2, rows, [0])
        assert all(value == tid for value in column)

    def test_row_universe_covers_the_relation(self, backend):
        store = self._store(backend)
        universe = store.row_universe("E", 2)
        assert len(universe) == store.relation_size("E")
        rows = list(universe)
        assert rows == sorted(rows)
        left, right = store.batch_columns("E", 2, rows, [0, 1])
        term_of = store.terms.term
        decoded = {Atom("E", (term_of(s), term_of(t)))
                   for s, t in zip(left, right)}
        assert decoded == store.facts("E")

    def test_missing_term_and_relation_are_empty(self, backend):
        store = self._store(backend)
        tid = store.terms.id_of(Constant("z"))   # occurs only in S
        assert len(store.posting_list("E", 2, 0, tid)) == 0
        assert len(store.row_universe("Q", 2)) == 0

    def test_postings_exclude_removed_rows(self, backend):
        store = self._store(backend)
        victim = next(iter(store.facts("E")))
        tid = store.terms.id_of(victim.args[0])
        before = len(store.posting_list("E", 2, 0, tid))
        store.discard(victim)
        after = store.posting_list("E", 2, 0, tid)
        assert len(after) == before - 1
        [column] = store.batch_columns("E", 2, list(after), [0])
        assert all(value == tid for value in column)
        assert len(store.row_universe("E", 2)) == store.relation_size("E")

    def test_candidate_rows_narrow_like_matching(self, backend):
        store = self._store(backend)
        a1 = store.terms.id_of(Constant("a1"))
        b0 = store.terms.id_of(Constant("b0"))
        rows = candidate_rows(store, "E", 2, [(0, a1), (1, b0)])
        left, right = store.batch_columns("E", 2, list(rows), [0, 1])
        assert all(s == a1 and t == b0 for s, t in zip(left, right))
        term_of = store.terms.term
        expected = store.matching("E", {0: term_of(a1), 1: term_of(b0)})
        assert len(rows) == len(expected)

    def test_vectorized_flag_routes_supports_batch(self, backend):
        store = self._store(backend)
        assert store.supports_batch() == (backend == "column")

    def test_generation_counts_successful_mutations(self, backend):
        store = self._store(backend)
        start = store.generation
        fact = Atom("E", (Constant("fresh"), Constant("fresh")))
        assert store.add(fact) and store.generation == start + 1
        assert not store.add(fact) and store.generation == start + 1
        assert store.discard(fact) and store.generation == start + 2
        assert not store.discard(fact) and store.generation == start + 2
