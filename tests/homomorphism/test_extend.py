"""Tests for satisfaction and trigger search."""

from repro.homomorphism.extend import (all_satisfied,
                                       constraint_satisfied_for,
                                       find_oblivious_trigger, head_extends,
                                       is_satisfied, trigger_key, violation)
from repro.lang.parser import (parse_constraint, parse_constraints,
                               parse_instance)
from repro.lang.terms import Constant, Variable

x, y = Variable("x"), Variable("y")
a, b = Constant("a"), Constant("b")


class TestHeadExtension:
    def test_extends_when_witness_exists(self):
        tgd = parse_constraint("S(x) -> E(x,y)")
        inst = parse_instance("S(a). E(a,b)")
        assert head_extends(tgd, inst, {x: a})

    def test_fails_without_witness(self):
        tgd = parse_constraint("S(x) -> E(x,y)")
        inst = parse_instance("S(a). E(b,a)")
        assert not head_extends(tgd, inst, {x: a})


class TestViolation:
    def test_satisfied_constraint_has_no_trigger(self):
        tgd = parse_constraint("S(x) -> E(x,y)")
        assert violation(tgd, parse_instance("S(a). E(a,b)")) is None
        assert is_satisfied(tgd, parse_instance("S(a). E(a,b)"))

    def test_violated_tgd(self):
        tgd = parse_constraint("S(x) -> E(x,y)")
        trigger = violation(tgd, parse_instance("S(a)"))
        assert trigger == {x: a}

    def test_violated_egd(self):
        egd = parse_constraint("E(x,y), E(x,z) -> y = z")
        trigger = violation(egd, parse_instance("E(a,b). E(a,c)"))
        assert trigger is not None
        assert trigger[egd.lhs] != trigger[egd.rhs]

    def test_satisfied_egd(self):
        egd = parse_constraint("E(x,y), E(x,z) -> y = z")
        assert is_satisfied(egd, parse_instance("E(a,b). E(c,b)"))

    def test_all_satisfied(self):
        sigma = parse_constraints("S(x) -> E(x,y); E(x,y) -> E(y,x)")
        assert all_satisfied(sigma, parse_instance("S(a). E(a,b). E(b,a)"))
        assert not all_satisfied(sigma, parse_instance("S(a)"))


class TestSatisfactionForParameters:
    def test_tgd_trivially_satisfied_when_body_absent(self):
        tgd = parse_constraint("S(x) -> E(x,y)")
        inst = parse_instance("E(a,b)")
        assert constraint_satisfied_for(tgd, inst, {x: a})

    def test_tgd_violated_for_specific_parameters(self):
        tgd = parse_constraint("S(x) -> E(x,y)")
        inst = parse_instance("S(a). S(b). E(b,a)")
        assert not constraint_satisfied_for(tgd, inst, {x: a})
        assert constraint_satisfied_for(tgd, inst, {x: b})

    def test_egd_for_parameters(self):
        egd = parse_constraint("E(x,y), E(x,z) -> y = z")
        inst = parse_instance("E(a,b). E(a,c)")
        binding = {egd.body[0].args[0]: a, egd.lhs: Constant("b"),
                   egd.rhs: Constant("c")}
        binding[Variable("x")] = a
        assert not constraint_satisfied_for(egd, inst, binding)


class TestObliviousTriggers:
    def test_fires_even_when_satisfied(self):
        tgd = parse_constraint("S(x) -> E(x,y)")
        inst = parse_instance("S(a). E(a,b)")
        assert violation(tgd, inst) is None
        assert find_oblivious_trigger(tgd, inst) == {x: a}

    def test_exclude_set(self):
        tgd = parse_constraint("S(x) -> E(x,y)")
        inst = parse_instance("S(a). S(b)")
        first = find_oblivious_trigger(tgd, inst)
        key = trigger_key(tgd, first)
        second = find_oblivious_trigger(tgd, inst, exclude={key})
        assert second is not None and second != first

    def test_trigger_key_is_stable(self):
        tgd = parse_constraint("S(x) -> E(x,y)")
        assert trigger_key(tgd, {x: a}) == trigger_key(tgd, {x: a})
        assert trigger_key(tgd, {x: a}) != trigger_key(tgd, {x: b})
