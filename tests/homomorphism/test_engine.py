"""Unit and property tests for the homomorphism engine."""

from hypothesis import given

from repro.homomorphism.engine import (apply_assignment, find_homomorphism,
                                       find_homomorphisms, has_homomorphism,
                                       homomorphism_between,
                                       instance_maps_into,
                                       is_endomorphism_proper,
                                       null_renaming_equivalent)
from repro.lang.atoms import Atom
from repro.lang.instance import Instance
from repro.lang.parser import parse_atoms, parse_instance
from repro.lang.terms import Constant, Null, Variable

from tests.conftest import graph_instances

x, y, z = Variable("x"), Variable("y"), Variable("z")
a, b, c = Constant("a"), Constant("b"), Constant("c")


class TestBasicSearch:
    def test_single_atom(self):
        inst = parse_instance("E(a,b). E(b,c)")
        homs = list(find_homomorphisms([Atom("E", (x, y))], inst))
        assert len(homs) == 2
        assert {(h[x], h[y]) for h in homs} == {(a, b), (b, c)}

    def test_join(self):
        inst = parse_instance("E(a,b). E(b,c). E(a,c)")
        pattern = [Atom("E", (x, y)), Atom("E", (y, z))]
        homs = list(find_homomorphisms(pattern, inst))
        assert {(h[x], h[y], h[z]) for h in homs} == {(a, b, c)}

    def test_constants_must_match(self):
        inst = parse_instance("E(a,b)")
        assert has_homomorphism([Atom("E", (a, y))], inst)
        assert not has_homomorphism([Atom("E", (b, y))], inst)

    def test_repeated_variable(self):
        inst = parse_instance("E(a,a). E(a,b)")
        homs = list(find_homomorphisms([Atom("E", (x, x))], inst))
        assert len(homs) == 1 and homs[0][x] == a

    def test_partial_binding(self):
        inst = parse_instance("E(a,b). E(b,c)")
        homs = list(find_homomorphisms([Atom("E", (x, y))], inst,
                                       partial={x: b}))
        assert len(homs) == 1 and homs[0][y] == c

    def test_limit(self):
        inst = parse_instance("E(a,b). E(b,c). E(c,a)")
        assert len(list(find_homomorphisms([Atom("E", (x, y))], inst,
                                           limit=2))) == 2

    def test_source_nulls_are_rigid(self):
        inst = Instance([Atom("E", (a, Null(1)))])
        assert has_homomorphism([Atom("E", (x, Null(1)))], inst)
        assert not has_homomorphism([Atom("E", (x, Null(2)))], inst)

    def test_empty_pattern(self):
        assert find_homomorphism([], parse_instance("E(a,b)")) == {}

    def test_unsatisfiable(self):
        inst = parse_instance("E(a,b)")
        assert find_homomorphism([Atom("S", (x,))], inst) is None


class TestHelpers:
    def test_apply_assignment(self):
        grounded = apply_assignment([Atom("E", (x, y))], {x: a, y: b})
        assert grounded == [Atom("E", (a, b))]

    def test_homomorphism_between_atom_sets(self):
        source = parse_atoms("E(x,y), E(y,x)")
        target = parse_atoms("E(a,a)", instance_mode=True)
        hom = homomorphism_between(source, target)
        assert hom is not None and hom[x] == a

    def test_instance_maps_into_moves_nulls(self):
        source = Instance([Atom("E", (a, Null(1)))])
        target = parse_instance("E(a,b)")
        assert instance_maps_into(source, target)
        assert not instance_maps_into(target, source)  # b is a constant

    def test_null_renaming_equivalence(self):
        left = Instance([Atom("E", (a, Null(1)))])
        right = Instance([Atom("E", (a, Null(2)))])
        assert null_renaming_equivalent(left, right)


class TestProperties:
    @given(graph_instances())
    def test_identity_homomorphism_exists(self, inst):
        """Every instance maps into itself."""
        assert instance_maps_into(inst, inst)

    @given(graph_instances(), graph_instances())
    def test_union_absorbs(self, left, right):
        """Any instance maps into any superset of itself."""
        assert instance_maps_into(left, left | right)

    @given(graph_instances())
    def test_found_homomorphisms_are_correct(self, inst):
        """Every reported assignment really embeds the pattern."""
        pattern = [Atom("E", (x, y)), Atom("S", (x,))]
        for hom in find_homomorphisms(pattern, inst):
            for atom in apply_assignment(pattern, hom):
                assert atom in inst


class TestIsEndomorphismProper:
    """The core computation's can-this-shrink filter: proper means
    non-injective *or* drops a null (maps one to a non-null)."""

    def test_null_permutation_is_not_proper(self):
        inst = Instance([Atom("E", (Null(1), Null(2)))])
        assert not is_endomorphism_proper(
            inst, {Null(1): Null(2), Null(2): Null(1)})
        assert not is_endomorphism_proper(inst, {Null(1): Null(1)})

    def test_non_injective_mapping_is_proper(self):
        inst = Instance([Atom("E", (Null(1), Null(2)))])
        assert is_endomorphism_proper(
            inst, {Null(1): Null(2), Null(2): Null(2)})

    def test_injective_null_to_constant_is_proper(self):
        # The pre-fix implementation missed exactly this case: the
        # mapping is injective on its values but drops the null.
        inst = Instance([Atom("S", (Null(1),)), Atom("S", (a,))])
        assert is_endomorphism_proper(inst, {Null(1): a})

    def test_empty_mapping_is_not_proper(self):
        assert not is_endomorphism_proper(Instance(), {})


class TestDeltaRestrictedSearch:
    """find_homomorphisms_through: the semi-naive delta search."""

    def _through(self, pattern, inst, fact, **kw):
        from repro.homomorphism.engine import find_homomorphisms_through
        return list(find_homomorphisms_through(pattern, inst, fact, **kw))

    def test_only_homs_using_the_delta_fact(self):
        inst = parse_instance("E(a,b). E(b,c)")
        delta = Atom("E", (b, c))
        homs = self._through([Atom("E", (x, y))], inst, delta)
        assert [(h[x], h[y]) for h in homs] == [(b, c)]

    def test_join_through_delta(self):
        inst = parse_instance("E(a,b). E(b,c). E(c,a)")
        delta = Atom("E", (b, c))
        pattern = [Atom("E", (x, y)), Atom("E", (y, z))]
        homs = self._through(pattern, inst, delta)
        assert {(h[x], h[y], h[z]) for h in homs} == {(a, b, c), (b, c, a)}

    def test_deduplicates_multi_position_uses(self):
        inst = parse_instance("E(a,a)")
        delta = Atom("E", (a, a))
        pattern = [Atom("E", (x, y)), Atom("E", (y, x))]
        homs = self._through(pattern, inst, delta)
        assert len(homs) == 1

    def test_relation_mismatch_yields_nothing(self):
        inst = parse_instance("E(a,b). S(a)")
        homs = self._through([Atom("E", (x, y))], inst, Atom("S", (a,)))
        assert homs == []

    def test_limit(self):
        inst = parse_instance("E(a,b). E(b,c). E(c,a)")
        pattern = [Atom("E", (x, y)), Atom("E", (z, y))]
        homs = self._through(pattern, inst, Atom("E", (a, b)), limit=1)
        assert len(homs) == 1

    @given(graph_instances())
    def test_equals_set_difference_of_full_searches(self, inst):
        """homs(I) - homs(I without f) == homs through f, for any f."""
        from repro.homomorphism.engine import find_homomorphisms_through
        pattern = [Atom("E", (x, y)), Atom("S", (x,))]
        facts = sorted(inst.facts(), key=str)
        if not facts:
            return
        fact = facts[0]
        without = Instance(f for f in inst if f != fact)
        full = {frozenset(h.items())
                for h in find_homomorphisms(pattern, inst)}
        old = {frozenset(h.items())
               for h in find_homomorphisms(pattern, without)}
        delta = {frozenset(h.items())
                 for h in find_homomorphisms_through(pattern, inst, fact)}
        assert delta == full - old
