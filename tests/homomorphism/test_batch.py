"""Batch (column-at-a-time) execution parity with the tuple path.

``JoinPlan.execute_batch`` must yield exactly the tuple path's
homomorphism *multiset* -- same assignments, same multiplicities --
on both backends, with and without pinned delta atoms, under
projection push-down, over null-heavy instances, and on every edge
shape the kernels special-case (empty posting lists, single-atom
bodies, fully-ground bodies, arity-1 relations, repeated variables).
The tuple path is the oracle throughout, mirroring the
reference-engine discipline one layer down.
"""

import random
from collections import Counter

import pytest
from hypothesis import given, settings

from repro.homomorphism.engine import (batch_disabled, batch_mode_active,
                                       find_homomorphisms,
                                       find_homomorphisms_through)
from repro.homomorphism.plan import JoinPlan, compile_plan
from repro.lang.atoms import Atom
from repro.lang.instance import Instance
from repro.lang.parser import parse_instance
from repro.lang.terms import Constant, Null, Variable

from tests.conftest import graph_instances

BACKENDS = ["set", "column"]

x, y, z, u, v = (Variable("x"), Variable("y"), Variable("z"),
                 Variable("u"), Variable("v"))
a, b, c = Constant("a"), Constant("b"), Constant("c")

PATTERNS = [
    [Atom("E", (x, y))],                            # single atom
    [Atom("E", (x, x))],                            # repeated var, 1 atom
    [Atom("E", (x, y)), Atom("E", (y, z))],         # chain join
    [Atom("E", (x, y)), Atom("E", (y, x))],         # cycle join
    [Atom("E", (x, y)), Atom("S", (x,))],           # arity-1 join
    [Atom("E", (x, y)), Atom("S", (u,))],           # cross product
    [Atom("E", (a, y)), Atom("E", (y, z))],         # ground position
    [Atom("E", (a, b)), Atom("E", (x, y))],         # fully-ground atom
    [Atom("E", (a, b)), Atom("S", (c,))],           # fully-ground body
    [Atom("S", (x,)), Atom("S", (y,)), Atom("E", (x, y))],
    [Atom("E", (x, x)), Atom("E", (x, y)), Atom("S", (y,))],
]


def _multiset(assignments):
    return Counter(frozenset(h.items()) for h in assignments)


def _random_instance(seed, nulls=False):
    rng = random.Random(seed)
    pool = [Constant(f"c{i}") for i in range(rng.randint(2, 8))]
    if nulls:
        pool += [Null(900 + i) for i in range(rng.randint(1, 4))]
    facts = []
    for _ in range(rng.randint(3, 40)):
        if rng.random() < 0.3:
            facts.append(Atom("S", (rng.choice(pool),)))
        else:
            facts.append(Atom("E", (rng.choice(pool), rng.choice(pool))))
    return facts


class TestBatchParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_full_search_parity(self, backend, seed):
        facts = _random_instance(seed, nulls=seed % 2 == 1)
        store = Instance(facts, backend=backend).store
        for pattern in PATTERNS:
            plan = compile_plan(tuple(pattern))
            expected = _multiset(plan.execute(store))
            actual = _multiset(plan.execute_batch(store, force=True))
            assert actual == expected, (backend, seed, pattern)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_pinned_parity(self, backend, seed):
        facts = _random_instance(seed + 100)
        store = Instance(facts, backend=backend).store
        for pattern in PATTERNS:
            plan = compile_plan(tuple(pattern))
            for delta in facts[:5]:
                for index in range(len(plan.atoms)):
                    entries = plan.pin_binding(index, delta, {})
                    if entries is None:
                        continue
                    expected = _multiset(plan.execute(
                        store, pin_index=index, pin_entries=entries))
                    actual = _multiset(plan.execute_batch(
                        store, pin_index=index, pin_entries=entries,
                        force=True))
                    assert actual == expected, (backend, seed, pattern,
                                                delta, index)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_partial_binding_and_projection_parity(self, backend):
        facts = _random_instance(7)
        store = Instance(facts, backend=backend).store
        some = next(term for fact in facts for term in fact.args)
        for pattern in PATTERNS:
            plan = compile_plan(tuple(pattern))
            if x not in plan.variables:
                continue
            partial = {x: some}
            expected = _multiset(plan.execute(store, partial=partial))
            actual = _multiset(plan.execute_batch(store, partial=partial,
                                                  force=True))
            assert actual == expected, (backend, pattern)
            project = tuple(sorted(plan.variables, key=lambda t: t.name))
            expected_rows = Counter(plan.execute(store, project=project))
            actual_rows = Counter(plan.execute_batch(store, project=project,
                                                     force=True))
            assert actual_rows == expected_rows, (backend, pattern)

    @given(graph_instances())
    @settings(max_examples=25, deadline=None)
    def test_hypothesis_instances_agree(self, inst):
        facts = sorted(inst.facts(), key=str)
        for backend in BACKENDS:
            store = Instance(facts, backend=backend).store
            for pattern in PATTERNS:
                plan = compile_plan(tuple(pattern))
                assert _multiset(plan.execute_batch(store, force=True)) \
                    == _multiset(plan.execute(store)), (backend, pattern)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_prune_parity_with_and_without_depends_on(self, backend):
        facts = _random_instance(11)
        store = Instance(facts, backend=backend).store
        inst = Instance(facts, backend=backend)
        target = store.terms.intern(facts[0].args[0])

        def make_prune(declare):
            def prune(binding):
                return binding.get(x) == target
            if declare:
                prune.depends_on = frozenset((x,))
            return prune

        for pattern in PATTERNS:
            plan = compile_plan(tuple(pattern))
            if x not in plan.variables:
                continue
            for declare in (False, True):
                expected = _multiset(plan.execute(
                    store, prune=make_prune(declare)))
                actual = _multiset(plan.execute_batch(
                    store, prune=make_prune(declare), force=True))
                assert actual == expected, (backend, pattern, declare)
        assert inst  # keep the facade alive for store listeners


class TestBatchEdgeShapes:
    def test_empty_posting_list_short_circuits(self):
        store = parse_instance("E(a,b). S(a)").store
        plan = compile_plan((Atom("E", (c, y)), Atom("S", (x,))))
        assert list(plan.execute_batch(store, force=True)) == []

    def test_empty_relation(self):
        store = parse_instance("S(a). S(b)").store
        plan = compile_plan((Atom("E", (x, y)), Atom("S", (x,))))
        assert list(plan.execute_batch(store, force=True)) == []

    def test_single_atom_body_delegates_to_tuple_path(self):
        store = parse_instance("E(a,b). E(b,c)").store
        plan = compile_plan((Atom("E", (x, y)),))
        assert _multiset(plan.execute_batch(store)) \
            == _multiset(plan.execute(store))

    def test_fully_ground_body(self):
        store = parse_instance("E(a,b). S(c)").store
        plan = compile_plan((Atom("E", (a, b)), Atom("S", (c,))))
        assert list(plan.execute_batch(store, force=True)) == [{}]
        missing = compile_plan((Atom("E", (b, a)), Atom("S", (c,))))
        assert list(missing.execute_batch(store, force=True)) == []

    def test_arity_one_joins(self):
        store = parse_instance("S(a). S(b). T(b). T(c)").store
        plan = compile_plan((Atom("S", (x,)), Atom("T", (x,))))
        assert _multiset(plan.execute_batch(store, force=True)) \
            == _multiset(plan.execute(store)) == Counter(
                [frozenset({(x, b)})])

    def test_null_heavy_instance(self):
        n1, n2 = Null(901), Null(902)
        facts = [Atom("E", (n1, n2)), Atom("E", (n2, n1)),
                 Atom("E", (n1, a)), Atom("S", (n1,)), Atom("S", (a,))]
        for backend in BACKENDS:
            store = Instance(facts, backend=backend).store
            for pattern in PATTERNS:
                plan = compile_plan(tuple(pattern))
                assert _multiset(plan.execute_batch(store, force=True)) \
                    == _multiset(plan.execute(store)), (backend, pattern)


class TestBatchRouting:
    def test_batch_disabled_context(self):
        assert batch_mode_active()
        with batch_disabled():
            assert not batch_mode_active()
        assert batch_mode_active()

    def test_find_homomorphisms_batch_optin(self):
        inst = Instance(parse_instance("E(a,b). E(b,c). S(a). S(b)"),
                        backend="column")
        pattern = [Atom("E", (x, y)), Atom("S", (z,))]
        expected = _multiset(find_homomorphisms(pattern, inst))
        assert _multiset(find_homomorphisms(pattern, inst, batch=True)) \
            == expected
        with batch_disabled():
            assert _multiset(find_homomorphisms(pattern, inst,
                                                batch=True)) == expected

    def test_delta_search_parity_under_both_modes(self):
        facts = _random_instance(23)
        inst = Instance(facts, backend="column")
        delta = facts[0]
        for pattern in PATTERNS:
            routed = _multiset(find_homomorphisms_through(pattern, inst,
                                                          delta))
            with batch_disabled():
                pinned_tuple = _multiset(find_homomorphisms_through(
                    pattern, inst, delta))
            assert routed == pinned_tuple, pattern

    def test_non_vectorized_store_falls_back(self):
        inst = Instance(parse_instance("E(a,b). E(b,c). S(a)"),
                        backend="set")
        assert not inst.store.supports_batch()
        plan = compile_plan((Atom("E", (x, y)), Atom("S", (z,))))
        # Routed (no force): delegates to the tuple path on SetStore.
        assert _multiset(plan.execute_batch(inst.store)) \
            == _multiset(plan.execute(inst.store))
