"""Compiled join plans: unit behaviour + reference cross-validation.

The plan executor must enumerate exactly the assignments of the
preserved PR 1 search (:mod:`repro.homomorphism.reference`) on both
storage backends -- the same discipline as the trigger index's
naive/incremental cross-validation.
"""

import pytest
from hypothesis import given, settings

from repro.homomorphism.engine import (find_homomorphisms,
                                       find_homomorphisms_through,
                                       reference_engine)
from repro.homomorphism.plan import JoinPlan, compile_plan
from repro.homomorphism.reference import (
    reference_find_homomorphisms, reference_find_homomorphisms_through)
from repro.lang.atoms import Atom
from repro.lang.instance import Instance
from repro.lang.parser import parse_instance
from repro.lang.terms import Constant, Variable

from tests.conftest import graph_instances

x, y, z, u = Variable("x"), Variable("y"), Variable("z"), Variable("u")
a, b, c = Constant("a"), Constant("b"), Constant("c")

PATTERNS = [
    [Atom("E", (x, y))],
    [Atom("E", (x, x))],
    [Atom("E", (x, y)), Atom("E", (y, z))],
    [Atom("E", (x, y)), Atom("E", (y, x))],
    [Atom("E", (x, y)), Atom("S", (x,))],
    [Atom("E", (x, y)), Atom("S", (u,))],          # cross product
    [Atom("E", (a, y)), Atom("E", (y, z))],        # ground position
    [Atom("S", (x,)), Atom("S", (y,)), Atom("E", (x, y))],
]


def _freeze(assignments):
    return {frozenset(h.items()) for h in assignments}


class TestPlanMatchesReference:
    @given(graph_instances())
    @settings(max_examples=30, deadline=None)
    def test_find_homomorphisms_agrees(self, inst):
        facts = sorted(inst.facts(), key=str)
        for backend in ("set", "column"):
            instance = Instance(facts, backend=backend)
            for pattern in PATTERNS:
                expected = _freeze(
                    reference_find_homomorphisms(pattern, instance))
                actual = _freeze(find_homomorphisms(pattern, instance))
                assert actual == expected, (backend, pattern)

    @given(graph_instances())
    @settings(max_examples=30, deadline=None)
    def test_delta_search_agrees(self, inst):
        facts = sorted(inst.facts(), key=str)
        for backend in ("set", "column"):
            instance = Instance(facts, backend=backend)
            delta = facts[0]
            for pattern in PATTERNS:
                expected = _freeze(reference_find_homomorphisms_through(
                    pattern, instance, delta))
                actual = _freeze(find_homomorphisms_through(
                    pattern, instance, delta))
                assert actual == expected, (backend, pattern)

    def test_partial_binding_agrees(self):
        inst = parse_instance("E(a,b). E(b,c). E(a,c). S(a). S(b)")
        pattern = [Atom("E", (x, y)), Atom("E", (y, z))]
        expected = _freeze(
            reference_find_homomorphisms(pattern, inst, partial={x: a}))
        assert _freeze(find_homomorphisms(pattern, inst,
                                          partial={x: a})) == expected

    def test_reference_engine_context_switches_the_default(self):
        inst = parse_instance("E(a,b)")
        with reference_engine():
            homs = list(find_homomorphisms([Atom("E", (x, y))], inst))
        assert homs == [{x: a, y: b}]


class TestPlanUnits:
    def test_compile_plan_is_cached_per_body(self):
        body = (Atom("E", (x, y)), Atom("S", (x,)))
        assert compile_plan(body) is compile_plan(body)
        assert compile_plan(body) is not compile_plan((Atom("E", (x, y)),))

    def test_order_cached_per_signature(self):
        inst = parse_instance("E(a,b). E(b,c). S(a)")
        plan = JoinPlan([Atom("E", (x, y)), Atom("S", (x,))])
        first = plan.order_for(inst.store, frozenset())
        assert plan.order_for(inst.store, frozenset()) is first
        pinned = plan.order_for(inst.store, frozenset(), pin=0)
        assert pinned == (1,)

    def test_order_prefers_selective_relation(self):
        # S has 1 fact, E has 3: with nothing bound the greedy order
        # starts at the smaller relation.
        inst = parse_instance("E(a,b). E(b,c). E(c,a). S(a)")
        plan = JoinPlan([Atom("E", (x, y)), Atom("S", (x,))])
        assert plan.order_for(inst.store, frozenset()) == (1, 0)

    def test_pin_binding_rejects_mismatches(self):
        plan = JoinPlan([Atom("E", (x, x)), Atom("E", (a, y))])
        assert plan.pin_binding(0, Atom("E", (a, b)), {}) is None
        assert plan.pin_binding(0, Atom("E", (a, a)), {}) == {x: a}
        assert plan.pin_binding(1, Atom("S", (a,)), {}) is None
        assert plan.pin_binding(1, Atom("E", (a, b)), {}) == {y: b}
        assert plan.pin_binding(1, Atom("E", (b, b)), {}) is None

    def test_single_pin_skips_dedup_but_stays_correct(self):
        # The delta unifies with exactly one atom: results must equal
        # the reference (which always pays the dedup hash).
        inst = parse_instance("E(a,b). E(b,c). S(a). S(b)")
        pattern = [Atom("E", (x, y)), Atom("S", (x,))]
        delta = Atom("S", (b,))
        expected = _freeze(reference_find_homomorphisms_through(
            pattern, inst, delta))
        assert _freeze(find_homomorphisms_through(pattern, inst,
                                                  delta)) == expected

    def test_multi_pin_deduplicates(self):
        inst = parse_instance("E(a,a)")
        pattern = [Atom("E", (x, y)), Atom("E", (y, x))]
        homs = list(find_homomorphisms_through(pattern, inst,
                                               Atom("E", (a, a))))
        assert homs == [{x: a, y: a}]

    def test_limit_respected_on_all_paths(self):
        inst = parse_instance("E(a,b). E(b,c). E(c,a). S(a). S(b). S(c)")
        assert len(list(find_homomorphisms([Atom("E", (x, y))], inst,
                                           limit=2))) == 2
        assert len(list(find_homomorphisms(
            [Atom("E", (x, y)), Atom("S", (u,))], inst, limit=4))) == 4

    def test_prune_depends_on_abandons_scan_soundly(self):
        # A prune predicate reading only x: declaring depends_on lets
        # the executor abandon whole scans, without changing results.
        inst = parse_instance("E(a,b). E(b,c). S(a). S(b). S(c)")
        pattern = [Atom("E", (x, y)), Atom("S", (u,))]

        def make_prune(declare):
            def prune(binding):
                value = binding.get(x)
                if value is None:
                    return False
                table = inst.term_table
                tid = value if isinstance(value, int) else table.intern(value)
                return tid == table.intern(a)
            if declare:
                prune.depends_on = frozenset((x,))
            return prune

        plain = list(find_homomorphisms(pattern, inst,
                                        prune=make_prune(False)))
        declared = list(find_homomorphisms(pattern, inst,
                                           prune=make_prune(True)))
        assert _freeze(plain) == _freeze(declared)
        assert declared and all(h[x] != a for h in declared)

class TestStaleStatisticsInvalidation:
    """The order cache must not keep serving a join order whose
    statistics have been invalidated by the chase growing a relation
    past it (regression: orders used to be cached forever with the
    sizes observed at first use)."""

    def _plan_and_store(self, n_s, n_e):
        facts = [Atom("S", (Constant(f"s{i}"),)) for i in range(n_s)]
        facts += [Atom("E", (Constant(f"e{i}"), Constant(f"e{i+1}")))
                  for i in range(n_e)]
        store = Instance(facts).store
        return JoinPlan([Atom("S", (x,)), Atom("E", (x, y))]), store

    def test_pathological_stale_order_is_recomputed(self):
        # Decision time: S holds 1 fact, E holds 100 -> scan S first.
        plan, store = self._plan_and_store(1, 100)
        assert plan.order_for(store, frozenset()) == (0, 1)
        # The chase then grows S far past E (a >4x shift): the cached
        # order would now enumerate 800 S facts per execution when
        # starting from E costs 100.  The generation-aware cache must
        # flip it.
        for i in range(800):
            store.add(Atom("S", (Constant(f"grown{i}"),)))
        assert plan.order_for(store, frozenset()) == (1, 0)

    def test_small_shifts_keep_the_cached_order(self):
        plan, store = self._plan_and_store(10, 40)
        first = plan.order_for(store, frozenset())
        assert first == (0, 1)
        # Growth within 4x of the decision-time snapshot: same order
        # object, no recompute (the tie could legitimately flip at
        # exactly equal sizes, but the rule is cheap stability).
        for i in range(25):
            store.add(Atom("S", (Constant(f"g{i}"),)))
        assert plan.order_for(store, frozenset()) is first

    def test_shrink_also_invalidates(self):
        plan, store = self._plan_and_store(64, 8)
        assert plan.order_for(store, frozenset()) == (1, 0)
        for fact in list(store.facts("E"))[:6]:
            store.discard(fact)
        assert plan.order_for(store, frozenset()) == (1, 0)  # 8->2: 4x ok
        victim = next(iter(store.facts("E")))
        store.discard(victim)
        assert plan.order_for(store, frozenset()) == (1, 0)  # still E first

    def test_unchanged_generation_is_a_fast_path(self):
        plan, store = self._plan_and_store(3, 9)
        first = plan.order_for(store, frozenset())
        calls = []
        original = store.relation_size
        store.relation_size = lambda rel: (calls.append(rel),
                                           original(rel))[1]
        assert plan.order_for(store, frozenset()) is first
        assert calls == []      # no statistics were consulted
        store.relation_size = original
