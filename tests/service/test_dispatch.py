"""The transport-neutral dispatch layer: table lookup, structured
errors, budgets.

The load-bearing regressions here: a request whose ``kind`` resolves
through the dispatch table but whose payload is incomplete (missing
required fields) must come back as a *structured* error reply --
``{"status": "error", "error": <code>, "kind": <kind>,
"failure_reason": ...}`` -- never silence, never a raised exception.
Both serve transports (NDJSON and HTTP) sit on this contract.
"""

import pytest

from gateway_utils import DIVERGENT, spec, TERMINATING
from repro.service import BatchScheduler, ServiceCache
from repro.service.dispatch import (error_payload, RequestError,
                                    request_kind, ServiceSession)


@pytest.fixture
def session():
    scheduler = BatchScheduler(workers=1,
                               cache=ServiceCache(result_size=64))
    try:
        yield ServiceSession(scheduler)
    finally:
        scheduler.close()


# ----------------------------------------------------------------------
# request_kind: the dispatch key
# ----------------------------------------------------------------------
def test_request_kind_mirrors_job_discriminator():
    assert request_kind({"kind": "chase"}) == "chase"
    assert request_kind({"kind": "stats"}) == "stats"
    assert request_kind({"constraints": "..."}) == "chase"
    assert request_kind({"query": "q(x) <- S(x)"}) == "query"


def test_request_kind_rejects_non_dicts_and_bad_kinds():
    with pytest.raises(RequestError) as exc_info:
        request_kind([1, 2, 3])
    assert exc_info.value.code == "invalid_request"
    with pytest.raises(RequestError) as exc_info:
        request_kind({"kind": 7})
    assert exc_info.value.code == "invalid_request"


# ----------------------------------------------------------------------
# the satellite fix: valid kind, incomplete payload -> structured error
# ----------------------------------------------------------------------
def test_valid_kind_with_missing_fields_is_a_structured_error(session):
    """The dispatch-table lookup succeeding is no promise the payload
    is complete: ``{"kind": "chase"}`` resolves to the job handler but
    misses every required field.  The reply must be the structured
    error contract, with the kind echoed so batched clients can
    attribute the rejection."""
    reply = session.handle({"kind": "chase"})
    assert reply["status"] == "error"
    assert reply["error"] == "invalid_spec"
    assert reply["kind"] == "chase"
    assert "constraints" in reply["failure_reason"]
    assert "Traceback" not in reply["failure_reason"]


def test_query_kind_with_missing_fields_echoes_query(session):
    reply = session.handle({"kind": "query",
                            "constraints": TERMINATING})
    assert reply["status"] == "error"
    assert reply["kind"] == "query"


def test_wrong_typed_fields_are_structured_not_raised(session):
    reply = session.handle({"constraints": 5, "instance": "S(a)."})
    assert reply["status"] == "error"
    assert reply["kind"] == "chase"
    # Whatever blew up inside the handler, the reply is structured.
    assert isinstance(reply["failure_reason"], str)


def test_unknown_kind_is_a_structured_error(session):
    reply = session.handle({"kind": "frobnicate"})
    assert reply["status"] == "error"
    assert reply["error"] == "unknown_kind"
    assert "frobnicate" in reply["failure_reason"]


def test_handle_never_raises_even_for_garbage(session):
    for garbage in (None, 42, "x", [], {"kind": None, "query": 9}):
        reply = session.handle(garbage)
        assert reply["status"] in ("error",) or "status" in reply


# ----------------------------------------------------------------------
# handle_line: the NDJSON transport surface
# ----------------------------------------------------------------------
def test_handle_line_blank_and_bad_json(session):
    assert session.handle_line("   \n") is None
    reply = session.handle_line("{not json")
    assert reply["status"] == "error"
    assert reply["error"] == "invalid_json"


def test_handle_line_serves_jobs_and_stats(session):
    import json
    reply = session.handle_line(json.dumps(spec("j1")))
    assert reply["status"] == "terminated"
    reply = session.handle_line('{"kind": "stats"}')
    assert reply["kind"] == "stats"
    assert "metrics" in reply and "cache" in reply


# ----------------------------------------------------------------------
# parse_job / budgets / cached_result (the HTTP gateway surface)
# ----------------------------------------------------------------------
def test_parse_job_returns_the_planned_job(session):
    job = session.parse_job(spec("p1"))          # strategy="auto" spec
    assert job.strategy in ("round_robin", "stratified")
    # The planned fingerprint is the cache key: running the job and
    # looking its fingerprint up must agree.
    result = session.scheduler.run_one(job)
    assert session.cached_result(job.fingerprint()) is not None
    assert result.fingerprint == job.fingerprint()


def test_parse_job_applies_unknown_step_cap(session):
    job = session.parse_job(spec("p2", constraints=DIVERGENT,
                                 max_steps=10_000_000))
    assert job.max_steps == session.scheduler.unknown_step_cap


def test_request_wall_clock_clamps_only_looser_budgets(session):
    session.request_wall_clock = 2.0
    assert session.budgeted(
        session.parse_job(spec("b1"))).wall_clock == 2.0
    tight = session.parse_job(spec("b2", wall_clock=0.5))
    assert session.budgeted(tight).wall_clock == 0.5


def test_wall_clock_clamp_is_cache_sound(session):
    """wall_clock is excluded from fingerprints, so the clamp cannot
    fork the cache key space."""
    loose = session.parse_job(spec("b3"))
    session.request_wall_clock = 1.0
    clamped = session.parse_job(spec("b3"))
    assert clamped.wall_clock == 1.0
    assert clamped.fingerprint() == loose.fingerprint()


def test_cached_result_miss_is_none(session):
    assert session.cached_result("0" * 64) is None


def test_error_payload_shape():
    payload = error_payload("boom", "some_code", kind="chase")
    assert payload == {"status": "error", "error": "some_code",
                       "failure_reason": "boom", "kind": "chase"}
    assert "kind" not in error_payload("boom")
