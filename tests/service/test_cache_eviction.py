"""ServiceCache eviction under interleaved traffic at tiny capacities.

The serve loop keeps one :class:`ServiceCache` alive for its whole
lifetime; these tests squeeze it to capacity 1-2 and drive interleaved
chase/query jobs through a 1-worker in-process scheduler to pin the
LRU contract: promotion on hit, coldest-first eviction, and the
soundness rule that timing-dependent outcomes (wall-clock aborts) are
never stored.
"""

import pytest

from repro.service.cache import LRUCache, ServiceCache
from repro.service.jobs import ChaseJob
from repro.service.query import QueryJob
from repro.service.scheduler import BatchScheduler

TERMINATING = "a1: S(x) -> E(x, y)"
DIVERGENT = "a2: S(x) -> E(x, y), S(y)"


def chase_job(letter: str, **overrides) -> ChaseJob:
    return ChaseJob.from_dict({
        "name": f"chase_{letter}", "constraints": TERMINATING,
        "instance": f"S({letter}).", "strategy": "round_robin",
        "max_steps": 100, **overrides})


def query_job(letter: str, **overrides) -> QueryJob:
    return QueryJob.from_dict({
        "name": f"query_{letter}", "constraints": TERMINATING,
        "instance": f"S({letter}).", "query": "q(x) <- S(x)",
        "strategy": "round_robin", "max_steps": 100, **overrides})


@pytest.fixture
def scheduler_factory():
    schedulers = []

    def make(result_size: int) -> BatchScheduler:
        scheduler = BatchScheduler(
            workers=1, cache=ServiceCache(result_size=result_size),
            force_inprocess=True)
        schedulers.append(scheduler)
        return scheduler

    yield make
    for scheduler in schedulers:
        scheduler.close()


# ----------------------------------------------------------------------
# LRU order through the scheduler at capacity 2
# ----------------------------------------------------------------------
def test_recently_hit_entry_survives_eviction(scheduler_factory):
    scheduler = scheduler_factory(result_size=2)
    a, b, c = chase_job("a"), chase_job("b"), chase_job("c")
    assert not scheduler.run_one(a).cached
    assert not scheduler.run_one(b).cached
    # Touch a: it becomes the most recently used entry...
    assert scheduler.run_one(a).cached
    # ...so inserting c evicts b, the coldest, not a.
    assert not scheduler.run_one(c).cached
    assert scheduler.cache.results.evictions == 1
    assert scheduler.run_one(a).cached
    assert not scheduler.run_one(b).cached      # b was evicted: re-runs


def test_interleaved_chase_and_query_jobs_share_the_result_cache(
        scheduler_factory):
    scheduler = scheduler_factory(result_size=2)
    jobs = [chase_job("a"), query_job("a"), chase_job("a"), query_job("a")]
    results = [scheduler.run_one(job) for job in jobs]
    # Chase and query results live in the same compartment, keyed on
    # distinct fingerprints: both second visits are warm.
    assert [r.cached for r in results] == [False, False, True, True]
    assert results[3].answers == results[1].answers
    assert len(scheduler.cache.results) == 2


def test_capacity_one_thrashes_under_alternation(scheduler_factory):
    scheduler = scheduler_factory(result_size=1)
    results = []
    for _ in range(3):
        results.append(scheduler.run_one(chase_job("a")))
        results.append(scheduler.run_one(query_job("a")))
    # Alternating distinct fingerprints through a single slot: every
    # run evicts the other entry, so nothing is ever served warm.
    assert not any(r.cached for r in results)
    assert scheduler.cache.results.evictions == 5
    assert len(scheduler.cache.results) == 1


def test_capacity_one_serves_repeats_of_the_same_job(scheduler_factory):
    scheduler = scheduler_factory(result_size=1)
    first = scheduler.run_one(chase_job("a"))
    repeats = [scheduler.run_one(chase_job("a")) for _ in range(3)]
    assert not first.cached
    assert all(r.cached for r in repeats)
    assert scheduler.cache.results.evictions == 0


# ----------------------------------------------------------------------
# non-deterministic outcomes are never cached
# ----------------------------------------------------------------------
def test_wall_clock_aborts_are_not_cached(scheduler_factory):
    scheduler = scheduler_factory(result_size=2)
    divergent = ChaseJob.from_dict({
        "name": "divergent", "constraints": DIVERGENT,
        "instance": "S(a).", "strategy": "round_robin",
        "max_steps": 1_000_000, "wall_clock": 0.0})
    first = scheduler.run_one(divergent)
    second = scheduler.run_one(divergent)
    assert first.status == "exceeded_wall_clock"
    assert not first.cacheable
    assert not second.cached
    assert len(scheduler.cache.results) == 0


def test_wall_clock_abort_between_cacheable_jobs_leaves_lru_intact(
        scheduler_factory):
    scheduler = scheduler_factory(result_size=2)
    aborting = ChaseJob.from_dict({
        "name": "divergent", "constraints": DIVERGENT,
        "instance": "S(a).", "strategy": "round_robin",
        "max_steps": 1_000_000, "wall_clock": 0.0})
    scheduler.run_one(chase_job("a"))
    scheduler.run_one(chase_job("b"))
    scheduler.run_one(aborting)                 # must not evict a or b
    assert scheduler.run_one(chase_job("a")).cached
    assert scheduler.run_one(chase_job("b")).cached
    assert scheduler.cache.results.evictions == 0


def test_store_result_refuses_non_deterministic_statuses():
    cache = ServiceCache(result_size=4)
    job = chase_job("a", wall_clock=0.0, constraints=DIVERGENT,
                    max_steps=1_000_000)
    from repro.service.jobs import execute_job
    result = execute_job(job)
    assert result.status == "exceeded_wall_clock"
    assert cache.store_result(result) is False
    assert len(cache.results) == 0


# ----------------------------------------------------------------------
# LRUCache unit behaviour backing the above
# ----------------------------------------------------------------------
def test_lru_get_promotes_and_eviction_counts():
    cache = LRUCache(maxsize=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1                  # promote a over b
    cache.put("c", 3)                           # evicts b
    assert "b" not in cache
    assert cache.get("a") == 1 and cache.get("c") == 3
    assert cache.evictions == 1


def test_lru_maxsize_zero_disables_storage():
    cache = LRUCache(maxsize=0)
    cache.put("a", 1)
    assert cache.get("a") is None
    assert len(cache) == 0
