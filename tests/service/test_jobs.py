"""ChaseJob specs, content fingerprints and in-process execution."""

import json

import pytest

from repro.chase import ChaseStatus
from repro.chase.strategies import (OrderedStrategy, RandomStrategy,
                                    RoundRobinStrategy, StratifiedStrategy)
from repro.lang.atoms import Atom
from repro.lang.instance import Instance
from repro.lang.parser import parse_constraints
from repro.lang.terms import Constant
from repro.service.jobs import (ChaseJob, execute_job, instance_fingerprint,
                                resolve_strategy, STATUS_ERROR)
from repro.workloads.paper import example4, intro_alpha2

TERMINATING = "a1: S(x) -> E(x, y)"
DIVERGENT = "a2: S(x) -> E(x, y), S(y)"


def make_job(constraints=TERMINATING, instance="S(a). S(b).", **kw):
    payload = {"constraints": constraints, "instance": instance}
    payload.update(kw)
    return ChaseJob.from_dict(payload, name=kw.get("name", "job"))


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
def test_instance_fingerprint_ignores_insertion_order_and_backend():
    facts = [Atom("E", (Constant(f"c{i}"), Constant(f"c{i+1}")))
             for i in range(5)]
    fp = instance_fingerprint(Instance(facts))
    assert fp == instance_fingerprint(Instance(list(reversed(facts))))
    assert fp == instance_fingerprint(Instance(facts, backend="column"))


def test_instance_fingerprint_separates_content():
    one = Instance([Atom("S", (Constant("a"),))])
    other = Instance([Atom("S", (Constant("b"),))])
    typed = Instance([Atom("S", (Constant(1),))])
    stringy = Instance([Atom("S", (Constant("1"),))])
    fingerprints = {instance_fingerprint(i)
                    for i in (one, other, typed, stringy)}
    assert len(fingerprints) == 4


def test_job_fingerprint_excludes_name_and_wall_clock():
    base = make_job(name="alpha")
    assert base.fingerprint() == make_job(name="beta").fingerprint()
    assert base.fingerprint() == make_job(wall_clock=0.5).fingerprint()


def test_job_fingerprint_ignores_labels_but_not_order():
    unlabeled = make_job(constraints="S(x) -> E(x, y)\nE(x, y) -> S(y)")
    labeled = make_job(constraints="a: S(x) -> E(x, y)\nb: E(x, y) -> S(y)")
    swapped = make_job(constraints="E(x, y) -> S(y)\nS(x) -> E(x, y)")
    assert unlabeled.fingerprint() == labeled.fingerprint()
    assert unlabeled.fingerprint() != swapped.fingerprint()


def test_job_fingerprint_covers_budgets_and_strategy():
    base = make_job()
    assert base.fingerprint() != make_job(max_steps=7).fingerprint()
    assert base.fingerprint() != make_job(max_facts=9).fingerprint()
    assert base.fingerprint() != make_job(strategy="ordered").fingerprint()
    assert base.fingerprint() != make_job(cycle_limit=2).fingerprint()


# ----------------------------------------------------------------------
# spec parsing
# ----------------------------------------------------------------------
def test_from_dict_accepts_wire_instance_and_constraint_list():
    job = ChaseJob.from_dict({
        "constraints": ["S(x) -> E(x, y)", "E(x, y) -> S(y)"],
        "instance": {"facts": [["S", [["c", "a"]]], ["E", [["n", 4],
                                                          ["c", "b"]]]]},
    })
    assert len(job.sigma) == 2
    assert len(job.instance) == 2
    assert any(arg.is_null for fact in job.instance for arg in fact.args)


def test_from_path_defaults_name_to_stem(tmp_path):
    path = tmp_path / "my_job.json"
    path.write_text(json.dumps({"constraints": TERMINATING,
                                "instance": "S(a)."}))
    assert ChaseJob.from_path(path).name == "my_job"


def test_from_dict_rejects_missing_keys():
    from repro.service.serialize import WireError
    with pytest.raises(WireError):
        ChaseJob.from_dict({"constraints": TERMINATING})
    with pytest.raises(WireError):
        ChaseJob.from_dict("not a dict")


def test_from_dict_honours_explicit_zero_budgets():
    job = ChaseJob.from_dict({"constraints": TERMINATING,
                              "instance": "S(a).", "max_steps": 0,
                              "max_k": 0})
    assert job.max_steps == 0 and job.max_k == 0
    result = execute_job(job)
    assert result.status == ChaseStatus.EXCEEDED_BUDGET.value
    assert result.steps == 0


def test_wire_roundtrip_preserves_fingerprint():
    job = make_job(backend="column", max_facts=50, cycle_limit=2)
    clone = ChaseJob.from_dict(job.to_dict())
    assert clone.fingerprint() == job.fingerprint()


# ----------------------------------------------------------------------
# strategy resolution
# ----------------------------------------------------------------------
def test_resolve_strategy_names():
    sigma = parse_constraints(TERMINATING)
    assert isinstance(resolve_strategy("ordered", sigma), OrderedStrategy)
    assert isinstance(resolve_strategy("round_robin", sigma),
                      RoundRobinStrategy)
    assert isinstance(resolve_strategy("random:7", sigma), RandomStrategy)
    with pytest.raises(ValueError):
        resolve_strategy("simulated_annealing", sigma)


def test_resolve_auto_uses_the_termination_report():
    # Guaranteed-for-every-order set: keep the default (None).
    assert resolve_strategy("auto", parse_constraints(TERMINATING)) is None
    # Stratified-only set (Example 4): Theorem 2's stratum order.
    assert isinstance(resolve_strategy("auto", example4()),
                      StratifiedStrategy)


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def test_execute_job_is_deterministic():
    job = make_job(constraints=TERMINATING, instance="S(a). S(b). S(c).")
    first, second = execute_job(job), execute_job(job)
    assert first.status == ChaseStatus.TERMINATED.value
    assert first.facts == second.facts
    assert first.steps == second.steps
    assert first.fingerprint == second.fingerprint


def test_execute_divergent_job_respects_step_budget():
    job = make_job(constraints=DIVERGENT, instance="S(a).", max_steps=25)
    result = execute_job(job)
    assert result.status == ChaseStatus.EXCEEDED_BUDGET.value
    assert result.steps == 25
    assert result.cacheable


def test_execute_divergent_job_respects_fact_budget():
    job = make_job(constraints=DIVERGENT, instance="S(a).",
                   max_steps=1_000_000, max_facts=40)
    result = execute_job(job)
    assert result.status == ChaseStatus.EXCEEDED_BUDGET.value
    assert "fact budget" in result.failure_reason
    assert result.cacheable


def test_execute_divergent_job_respects_wall_clock():
    job = make_job(constraints=DIVERGENT, instance="S(a).",
                   max_steps=100_000_000, wall_clock=0.05)
    result = execute_job(job)
    assert result.status == ChaseStatus.EXCEEDED_WALL_CLOCK.value
    assert not result.cacheable


def test_execute_monitored_job_aborts_deterministically():
    job = make_job(constraints=DIVERGENT, instance="S(a).",
                   max_steps=1_000_000, cycle_limit=3)
    first, second = execute_job(job), execute_job(job)
    assert first.status == ChaseStatus.ABORTED_BY_MONITOR.value
    assert first.cacheable
    assert first.facts == second.facts


def test_execute_job_converts_exceptions_to_error_results():
    job = make_job(strategy="not_a_strategy")
    result = execute_job(job)
    assert result.status == STATUS_ERROR
    assert not result.ok
    assert not result.cacheable
    assert "not_a_strategy" in result.failure_reason


def test_progress_events_stream_through_the_observer_hook():
    events = []
    job = make_job(constraints=DIVERGENT, instance="S(a).", max_steps=20)
    execute_job(job, on_event=events.append, progress_every=5)
    kinds = {event.kind for event in events}
    assert kinds == {"progress"}
    assert [event.detail["steps"] for event in events] == [5, 10, 15, 20]


def test_auto_strategy_turns_example4_into_a_terminating_run():
    """The paper's separating example, operationalized: round-robin
    diverges on Example 4, the auto-resolved stratum order terminates."""
    from repro.lang.parser import render_constraints
    from repro.workloads.paper import example4_instance
    spec = {"constraints": render_constraints(example4()),
            "instance": "\n".join(sorted(f"{f}." for f in
                                         example4_instance())),
            "max_steps": 2000}
    diverging = ChaseJob.from_dict(dict(spec, strategy="round_robin"))
    auto = ChaseJob.from_dict(dict(spec, strategy="auto"))
    assert (execute_job(diverging).status
            == ChaseStatus.EXCEEDED_BUDGET.value)
    assert execute_job(auto).status == ChaseStatus.TERMINATED.value
