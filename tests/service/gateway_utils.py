"""Shared plumbing for the HTTP-gateway test suites.

A tiny stdlib HTTP/1.1 client over asyncio streams (we are testing a
hand-rolled server; testing it through a hand-rolled client keeps full
control over framing -- truncation, chunking, pipelining) plus gateway
lifecycle helpers.  Tests drive everything through ``asyncio.run``:
pytest-asyncio is deliberately not a dependency.

The client frames responses by Content-Length / chunked encoding and
never relies on read-to-EOF: the service forks worker processes while
connections are open, and a forked child holding a duplicate of the
socket fd delays the FIN past the server-side close (exactly like any
real preforking server) -- correct HTTP framing is immune to that.
"""

from __future__ import annotations

import asyncio
import contextlib
import json

from repro.service import BatchScheduler, ServiceCache
from repro.service.dispatch import ServiceSession
from repro.service.http import HttpGateway

TERMINATING = "a1: S(x) -> E(x, y)"
DIVERGENT = "a2: S(x) -> E(x, y), S(y)"


def spec(name, constraints=TERMINATING, instance="S(a). S(b).", **kw):
    payload = {"name": name, "constraints": constraints,
               "instance": instance}
    payload.update(kw)
    return payload


def query_spec(name, **kw):
    return spec(name, instance="E(a, b). S(a).",
                query="q(x) <- E(x, y)", **kw)


@contextlib.asynccontextmanager
async def gateway(workers=1, queue_bound=64, cache_size=256, **gw_kwargs):
    """A live gateway over a fresh scheduler; tears both down."""
    scheduler = BatchScheduler(
        workers=workers, cache=ServiceCache(result_size=cache_size))
    session = ServiceSession(scheduler)
    gw = HttpGateway(session, port=0, queue_bound=queue_bound,
                     **gw_kwargs)
    await gw.start()
    try:
        yield gw
    finally:
        await gw.shutdown()
        scheduler.close()


def encode_request(method, path, body=None, headers=None,
                   close=True) -> bytes:
    payload = b""
    if body is not None:
        payload = body if isinstance(body, bytes) \
            else json.dumps(body).encode("utf-8")
    lines = [f"{method} {path} HTTP/1.1", "Host: test"]
    if body is not None:
        lines.append(f"Content-Length: {len(payload)}")
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    if close:
        lines.append("Connection: close")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + payload


async def read_response(reader):
    """Read one properly-framed response -> (status, headers, body)."""
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed before responding")
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise ConnectionError("server closed inside headers")
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    if headers.get("transfer-encoding", "").lower() == "chunked":
        body = b""
        while True:
            size_line = await reader.readline()
            size = int(size_line.split(b";")[0], 16)
            if size == 0:
                await reader.readline()        # trailing blank line
                break
            body += await reader.readexactly(size)
            await reader.readexactly(2)        # the chunk's CRLF
        return status, headers, body
    length = int(headers.get("content-length", 0))
    return status, headers, await reader.readexactly(length)


def decode_body(headers, body):
    """JSON-decode a response body when it says it is JSON."""
    if body and headers.get("content-type",
                            "").startswith("application/"):
        return json.loads(body)
    return None


async def request(port, method, path, body=None, headers=None,
                  timeout=30.0):
    """One request on a fresh connection -> (status, headers,
    parsed_json_or_None)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(encode_request(method, path, body=body,
                                    headers=headers))
        await writer.drain()
        status, resp_headers, resp_body = await asyncio.wait_for(
            read_response(reader), timeout=timeout)
    finally:
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()
    return status, resp_headers, decode_body(resp_headers, resp_body)


async def request_raw_body(port, method, path, body=None, headers=None,
                           timeout=30.0):
    """Like :func:`request` but returns the body bytes unparsed (for
    NDJSON streams and Prometheus text)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(encode_request(method, path, body=body,
                                    headers=headers))
        await writer.drain()
        return await asyncio.wait_for(read_response(reader),
                                      timeout=timeout)
    finally:
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()


async def send_raw(port, data: bytes, timeout=30.0):
    """Write raw bytes, read one framed response (for malformed-input
    tests where the request is deliberately broken)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(data)
        await writer.drain()
        return await asyncio.wait_for(read_response(reader),
                                      timeout=timeout)
    finally:
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()
