"""Batch scheduling: the acceptance scenario plus policy details.

The headline test runs a batch of >= 16 mixed workload-family jobs
through a 2-worker scheduler and cross-validates every result against
plain sequential in-process execution; a warm-cache rerun must answer
everything without executing a single chase, and a deliberately
divergent job must be stopped by its budget without affecting
siblings.
"""

import pytest

from repro.service.cache import ServiceCache
from repro.service.jobs import ChaseJob, execute_job, STATUS_ERROR
from repro.service.scheduler import BatchScheduler
from repro.workloads.batch import mixed_batch_specs

DIVERGENT = "a2: S(x) -> E(x, y), S(y)"


def load(specs):
    return [ChaseJob.from_dict(spec) for spec in specs]


def comparable(result):
    return (result.job, result.status, result.steps, result.new_nulls,
            result.facts)


def test_batch_of_16_parallel_equals_sequential_and_warm_cache_skips():
    jobs = load(mixed_batch_specs(16, seed=11))
    assert len(jobs) == 16
    # Reference: plain sequential in-process execution, no service.
    expected = [comparable(execute_job(job)) for job in jobs]

    events = []
    scheduler = BatchScheduler(workers=2, on_event=events.append)
    results = scheduler.run_batch(jobs)
    assert [comparable(r) for r in results] == expected
    # All four families actually ran (mixed batch, not a degenerate one).
    assert {r.job.split("_")[0] for r in results} == {
        "chain", "safe", "t3", "divergent"}
    # The divergent jobs were stopped by their step budgets while
    # sibling jobs terminated normally.
    divergent = [r for r in results if r.job.startswith("divergent")]
    others = [r for r in results if not r.job.startswith("divergent")]
    assert divergent and all(r.status == "exceeded_budget"
                             for r in divergent)
    assert others and all(r.status == "terminated" for r in others)
    # Guaranteed-terminating jobs were all dispatched before any
    # budget-capped unknown (divergent) job.
    started = [e.job for e in events if e.kind == "started"]
    first_unknown = started.index(
        next(name for name in started if name.startswith("divergent")))
    assert all(not name.startswith("divergent")
               for name in started[:first_unknown])

    executed_cold = scheduler.pool.executed
    assert executed_cold < len(jobs)  # seeded sizes repeat: dedup hit

    # Warm rerun: identical payloads, zero executions.
    rerun = scheduler.run_batch(load(mixed_batch_specs(16, seed=11)))
    assert [comparable(r) for r in rerun] == expected
    assert all(r.cached for r in rerun)
    assert scheduler.pool.executed == executed_cold


def test_results_come_back_in_input_order():
    jobs = load(mixed_batch_specs(8, seed=3))
    scheduler = BatchScheduler(workers=2)
    results = scheduler.run_batch(jobs)
    assert [r.job for r in results] == [job.name for job in jobs]


def test_wall_clock_budget_kills_divergent_job_without_hurting_siblings():
    specs = mixed_batch_specs(4, seed=5)
    jobs = load(specs)
    runaway = ChaseJob.from_dict({
        "name": "runaway", "constraints": DIVERGENT, "instance": "S(a).",
        "max_steps": 100_000_000, "wall_clock": 0.15})
    scheduler = BatchScheduler(workers=2, unknown_step_cap=None)
    results = scheduler.run_batch([runaway] + jobs)
    assert results[0].job == "runaway"
    assert results[0].status == "exceeded_wall_clock"
    expected = [comparable(execute_job(job)) for job in jobs]
    assert [comparable(r) for r in results[1:]] == expected
    # Timing-dependent outcome: never cached, reruns execute again.
    before = scheduler.pool.executed
    again = scheduler.run_batch([runaway])
    assert not again[0].cached
    assert scheduler.pool.executed == before + 1


def test_unknown_jobs_get_step_capped():
    job = ChaseJob.from_dict({
        "name": "big", "constraints": DIVERGENT, "instance": "S(a).",
        "max_steps": 100_000_000})
    scheduler = BatchScheduler(workers=1, unknown_step_cap=100,
                               force_inprocess=True)
    planned, report, guaranteed = scheduler.plan_job(job)
    assert not guaranteed and not report.guarantees_some_sequence
    assert planned.max_steps == 100
    result = scheduler.run_batch([job])[0]
    assert result.status == "exceeded_budget" and result.steps == 100


def test_guaranteed_jobs_keep_their_budgets():
    job = ChaseJob.from_dict({
        "name": "chain", "constraints": "c: R(x, y) -> T(x, y)",
        "instance": "R(a, b).", "max_steps": 100_000_000})
    scheduler = BatchScheduler(workers=1, unknown_step_cap=100)
    planned, _, guaranteed = scheduler.plan_job(job)
    assert guaranteed and planned.max_steps == 100_000_000


def test_auto_strategy_is_pinned_from_the_cached_report():
    from repro.lang.parser import render_constraints
    from repro.workloads.paper import example4, example4_instance
    job = ChaseJob.from_dict({
        "name": "ex4",
        "constraints": render_constraints(example4()),
        "instance": "\n".join(sorted(f"{f}." for f in example4_instance())),
        "strategy": "auto", "max_steps": 2000})
    scheduler = BatchScheduler(workers=1, force_inprocess=True)
    planned, report, guaranteed = scheduler.plan_job(job)
    assert report.stratified and not report.guarantees_all_sequences
    assert planned.strategy == "stratified"
    assert guaranteed
    # And the run indeed terminates where round-robin would diverge.
    result = scheduler.run_batch([job])[0]
    assert result.status == "terminated"


def test_explicit_stratified_request_on_unstratifiable_set_errors():
    job = ChaseJob.from_dict({
        "name": "bad", "constraints": DIVERGENT, "instance": "S(a).",
        "strategy": "stratified"})
    scheduler = BatchScheduler(workers=1, force_inprocess=True)
    sibling = ChaseJob.from_dict({
        "name": "good", "constraints": "c: R(x, y) -> T(x, y)",
        "instance": "R(a, b)."})
    results = scheduler.run_batch([job, sibling])
    assert results[0].status == STATUS_ERROR
    assert "not stratified" in results[0].failure_reason
    assert results[1].status == "terminated"


def test_duplicate_jobs_share_deterministic_results_only():
    """Intra-batch dedup replays a duplicate only when the shared run
    ended deterministically; a wall-clock abort is re-executed."""
    spec = {"constraints": DIVERGENT, "instance": "S(a).",
            "max_steps": 100_000_000, "wall_clock": 0.1}
    pair = [ChaseJob.from_dict(dict(spec, name="first")),
            ChaseJob.from_dict(dict(spec, name="twin"))]
    scheduler = BatchScheduler(workers=2, unknown_step_cap=None)
    results = scheduler.run_batch(pair)
    assert all(r.status == "exceeded_wall_clock" for r in results)
    assert not any(r.cached for r in results)
    assert scheduler.pool.executed == 2      # the twin really ran
    # Deterministic duplicates, by contrast, execute once.
    fast = {"constraints": DIVERGENT, "instance": "S(a).",
            "max_steps": 30}
    twins = [ChaseJob.from_dict(dict(fast, name="a")),
             ChaseJob.from_dict(dict(fast, name="b"))]
    before = scheduler.pool.executed
    deduped = scheduler.run_batch(twins)
    assert scheduler.pool.executed == before + 1
    assert deduped[1].cached and deduped[1].facts == deduped[0].facts


def test_no_cache_disables_dedup_too():
    """With the result cache off, duplicate jobs must really execute:
    the user asked for every run to happen."""
    fast = {"constraints": DIVERGENT, "instance": "S(a).",
            "max_steps": 30}
    twins = [ChaseJob.from_dict(dict(fast, name="a")),
             ChaseJob.from_dict(dict(fast, name="b"))]
    scheduler = BatchScheduler(workers=1, force_inprocess=True,
                               cache=ServiceCache(result_size=0))
    results = scheduler.run_batch(twins)
    assert scheduler.pool.executed == 2
    assert not any(r.cached for r in results)


def test_shared_cache_across_scheduler_instances():
    cache = ServiceCache()
    jobs = load(mixed_batch_specs(4, seed=2))
    first = BatchScheduler(workers=1, cache=cache, force_inprocess=True)
    first.run_batch(jobs)
    second = BatchScheduler(workers=2, cache=cache)
    results = second.run_batch(load(mixed_batch_specs(4, seed=2)))
    assert all(r.cached for r in results)
    assert second.pool.executed == 0


def test_cancellation_racing_completion_keeps_the_contract():
    """A ``should_cancel`` probe that flips exactly when the first job
    finishes: the batch must neither hang nor drop results -- every
    slot comes back filled, in input order, with the already-finished
    work kept and the never-started remainder marked cancelled."""
    jobs = load(mixed_batch_specs(6, seed=13))
    finished = []

    def on_event(event):
        if event.kind == "finished":
            finished.append(event.job)

    scheduler = BatchScheduler(workers=1, force_inprocess=True,
                               on_event=on_event)
    results = scheduler.run_batch(jobs,
                                  should_cancel=lambda: bool(finished))
    assert [r.job for r in results] == [job.name for job in jobs]
    assert all(r is not None for r in results)
    done = [r for r in results if r.status != "killed"]
    cancelled = [r for r in results if r.status == "killed"]
    assert done and cancelled                  # the race really raced
    assert all(r.failure_reason == "cancelled" for r in cancelled)
    # Cancelled results are timing artifacts: never cached, so a
    # rerun without the probe executes them for real.
    rerun = scheduler.run_batch(load(mixed_batch_specs(6, seed=13)))
    assert all(r.status != "killed" for r in rerun)
    assert [comparable(r) for r in rerun] == \
        [comparable(execute_job(job)) for job in jobs]


def test_cancellation_racing_completion_through_the_pool():
    """Same race through real worker processes: cancellation mid-batch
    terminates running workers, fills every result slot, and leaves
    the scheduler usable for the next batch."""
    jobs = load(mixed_batch_specs(8, seed=21))
    seen = []

    def on_event(event):
        if event.kind == "finished":
            seen.append(event.job)

    scheduler = BatchScheduler(workers=2, on_event=on_event)
    try:
        results = scheduler.run_batch(
            jobs, should_cancel=lambda: len(seen) >= 1)
        assert [r.job for r in results] == [job.name for job in jobs]
        assert all(r.status in ("terminated", "exceeded_budget",
                                "killed", "error") for r in results)
        assert any(r.status == "killed" and
                   r.failure_reason == "cancelled" for r in results)
        # The pool survives the cancellation: the same scheduler
        # serves the next (uncancelled) batch correctly.
        rerun = scheduler.run_batch(load(mixed_batch_specs(8, seed=21)))
        assert all(r.status != "killed" for r in rerun)
        assert [comparable(r) for r in rerun] == \
            [comparable(execute_job(job)) for job in jobs]
    finally:
        scheduler.close()
    assert scheduler.pool.worker_pids() == []


def test_cached_events_are_emitted_on_warm_hits():
    events = []
    scheduler = BatchScheduler(workers=1, force_inprocess=True,
                               on_event=events.append)
    jobs = load(mixed_batch_specs(4, seed=7))
    scheduler.run_batch(jobs)
    events.clear()
    scheduler.run_batch(load(mixed_batch_specs(4, seed=7)))
    assert [e.kind for e in events if e.kind in ("cached", "started")] \
        == ["cached"] * 4
