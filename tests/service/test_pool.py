"""Worker-pool behaviour: parallel parity, kills, degradation."""

import pytest

from repro.service.jobs import (ChaseJob, execute_job, STATUS_ERROR,
                                STATUS_KILLED)
from repro.service.pool import WorkerPool

TERMINATING = "a1: S(x) -> E(x, y)"
DIVERGENT = "a2: S(x) -> E(x, y), S(y)"


def make_job(name, constraints=TERMINATING, instance="S(a). S(b).", **kw):
    payload = {"name": name, "constraints": constraints,
               "instance": instance}
    payload.update(kw)
    return ChaseJob.from_dict(payload)


def small_batch():
    return [
        make_job("t1"),
        make_job("t2", instance="S(a). S(b). S(c)."),
        make_job("d1", constraints=DIVERGENT, instance="S(a).",
                 max_steps=50),
        make_job("t3", constraints="c: R(x, y) -> T(y, x)",
                 instance="R(a, b). R(b, c)."),
    ]


def by_comparable(result):
    return (result.job, result.status, result.steps, result.facts)


def test_pool_results_match_inprocess_execution():
    jobs = small_batch()
    expected = [by_comparable(execute_job(job)) for job in jobs]
    pool = WorkerPool(workers=2)
    results = pool.run(jobs)
    assert [by_comparable(r) for r in results] == expected
    assert pool.executed == len(jobs)
    assert not pool.degraded
    # Every job genuinely ran out-of-process.
    assert all(r.worker.startswith("pid-") for r in results)


def test_forced_inprocess_degradation_matches_too():
    jobs = small_batch()
    expected = [by_comparable(execute_job(job)) for job in jobs]
    pool = WorkerPool(workers=2, force_inprocess=True)
    results = pool.run(jobs)
    assert [by_comparable(r) for r in results] == expected
    assert all(r.worker == "inproc" for r in results)


def test_single_job_runs_inprocess_without_fork_overhead():
    pool = WorkerPool(workers=4)
    results = pool.run([make_job("only")])
    assert results[0].worker == "inproc"


def test_workers_1_with_kill_deadline_still_uses_a_worker_process():
    """`repro serve` defaults to one worker; a hard timeout must still
    be enforceable there, which requires a subprocess."""
    pool = WorkerPool(workers=1, default_hard_timeout=0.4)
    results = pool.run([make_job("stuck", constraints=DIVERGENT,
                                 instance="S(a).",
                                 max_steps=100_000_000),
                        make_job("fine")])
    assert results[0].status == STATUS_KILLED
    assert results[1].status == "terminated"


def test_single_job_with_kill_deadline_gets_a_worker():
    """A lone job must not lose the hard-timeout backstop just because
    it is alone (the `repro serve` path): with a deadline in play it
    runs out-of-process, where it can actually be killed."""
    pool = WorkerPool(workers=4, default_hard_timeout=0.4)
    killed = pool.run([make_job("stuck", constraints=DIVERGENT,
                               instance="S(a).",
                               max_steps=100_000_000)])
    assert killed[0].status == STATUS_KILLED
    fine = pool.run([make_job("fine", wall_clock=5.0)])
    assert fine[0].status == "terminated"
    assert fine[0].worker.startswith("pid-")


def test_hard_timeout_kills_divergent_job_but_not_siblings():
    jobs = [
        make_job("ok1"),
        make_job("runaway", constraints=DIVERGENT, instance="S(a).",
                 max_steps=100_000_000),
        make_job("ok2", instance="S(x). S(y)."),
    ]
    pool = WorkerPool(workers=3, default_hard_timeout=0.4)
    results = pool.run(jobs)
    by_name = {result.job: result for result in results}
    assert by_name["runaway"].status == STATUS_KILLED
    assert "hard timeout" in by_name["runaway"].failure_reason
    assert by_name["ok1"].status == "terminated"
    assert by_name["ok2"].status == "terminated"


def test_soft_wall_clock_beats_the_hard_kill():
    """A job with its own wall_clock budget aborts gracefully inside
    the worker (EXCEEDED_WALL_CLOCK with a partial result), before the
    pool's backstop fires."""
    job = make_job("soft", constraints=DIVERGENT, instance="S(a).",
                   max_steps=100_000_000, wall_clock=0.1)
    pool = WorkerPool(workers=2, hard_timeout_grace=5.0)
    results = pool.run([job, make_job("sibling")])
    by_name = {result.job: result for result in results}
    assert by_name["soft"].status == "exceeded_wall_clock"
    assert by_name["soft"].facts is not None      # partial run came back
    assert by_name["sibling"].status == "terminated"


def test_error_jobs_are_isolated():
    jobs = [make_job("good"),
            make_job("bad", strategy="bogus"),
            make_job("also_good")]
    pool = WorkerPool(workers=2)
    results = pool.run(jobs)
    assert [r.status for r in results] == ["terminated", STATUS_ERROR,
                                           "terminated"]


def test_cancellation_stops_the_batch():
    jobs = [make_job(f"j{i}", constraints=DIVERGENT, instance="S(a).",
                     max_steps=100_000_000) for i in range(4)]
    pool = WorkerPool(workers=2)
    results = pool.run(jobs, should_cancel=lambda: True)
    assert all(r.status == STATUS_KILLED for r in results)
    assert all(r.failure_reason == "cancelled" for r in results)


def test_workers_persist_across_runs_until_closed():
    """One fork per worker, not per job -- and not per run() either:
    a serve loop reuses the same processes across requests."""
    pool = WorkerPool(workers=2)
    first = pool.run(small_batch())
    pids_first = {r.worker for r in first}
    second = pool.run(small_batch())
    pids_second = {r.worker for r in second}
    assert pids_first == pids_second          # same processes served both
    pool.close()
    assert pool._workers == []
    third = pool.run(small_batch())           # respawns on demand
    assert {r.worker for r in third}.isdisjoint(pids_first)
    pool.close()


def test_degraded_drain_honours_cancellation(monkeypatch):
    """When worker processes cannot be spawned at all, the in-place
    drain of the pending queue must still consult should_cancel."""
    monkeypatch.setattr(WorkerPool, "_spawn", lambda self: None)
    jobs = [make_job(f"j{i}") for i in range(4)]
    pool = WorkerPool(workers=2)
    calls = iter([False, False, False, True, True])
    events = []
    results = pool.run(jobs, should_cancel=lambda: next(calls))
    pool.run([], on_event=events.append)      # no-op sanity
    assert pool.degraded
    statuses = [r.status for r in results]
    assert statuses[:2] == ["terminated", "terminated"]
    assert STATUS_KILLED in statuses[2:]
    killed = [r for r in results if r.status == STATUS_KILLED]
    assert all(r.failure_reason == "cancelled" for r in killed)


def test_worker_replacement_mid_batch():
    """A worker SIGKILLed while chasing: its job surfaces as a
    structured error, its siblings are untouched, and the pool spawns
    a replacement so the rest of the batch still runs out-of-process.
    """
    import os
    import signal

    victim = make_job("victim", constraints=DIVERGENT, instance="S(a).",
                      max_steps=50_000_000)
    jobs = [victim] + [make_job(f"sib{i}", instance=f"S(s{i}).")
                       for i in range(4)]
    expected = {job.name: by_comparable(execute_job(job))
                for job in jobs[1:]}
    killed_pids = []

    def on_event(event):
        # The kill lands from inside the dispatch callback: the batch
        # is mid-flight by construction, not by sleeping.
        if event.kind == "started" and event.job == "victim":
            pid = int(event.detail["worker"].removeprefix("pid-"))
            killed_pids.append(pid)
            os.kill(pid, signal.SIGKILL)

    pool = WorkerPool(workers=2)
    try:
        results = pool.run(jobs, on_event=on_event)
        by_name = {result.job: result for result in results}
        assert killed_pids, "victim never reached a worker"
        assert by_name["victim"].status == STATUS_ERROR
        assert "worker exited" in by_name["victim"].failure_reason
        for name, reference in expected.items():
            assert by_comparable(by_name[name]) == reference
        # The dead worker was replaced, not just buried: live workers
        # exclude the killed pid and the next run stays out-of-process.
        assert killed_pids[0] not in pool.worker_pids()
        follow_up = pool.run([make_job("after1"),
                              make_job("after2", instance="S(z).")])
        assert all(r.status == "terminated" for r in follow_up)
        assert all(r.worker.startswith("pid-") for r in follow_up)
    finally:
        pool.close()
    assert pool.worker_pids() == []


def test_worker_pids_reports_only_live_workers():
    pool = WorkerPool(workers=2)
    assert pool.worker_pids() == []           # lazy: nothing spawned yet
    pool.run(small_batch())
    pids = pool.worker_pids()
    assert len(pids) == 2 and pool.alive_workers == 2
    pool.close()
    assert pool.worker_pids() == [] and pool.alive_workers == 0


def test_worker_pool_validates_workers():
    with pytest.raises(ValueError):
        WorkerPool(workers=0)


def test_pool_streams_progress_events_across_processes():
    events = []
    jobs = [make_job("p1", constraints=DIVERGENT, instance="S(a).",
                     max_steps=40),
            make_job("p2", constraints=DIVERGENT, instance="S(b).",
                     max_steps=40)]
    pool = WorkerPool(workers=2, progress_every=10)
    pool.run(jobs, on_event=events.append)
    progress = [e for e in events if e.kind == "progress"]
    assert {e.job for e in progress} == {"p1", "p2"}
    assert all(e.detail["steps"] % 10 == 0 for e in progress)
    kinds = [e.kind for e in events]
    assert kinds.count("started") == 2 and kinds.count("finished") == 2
