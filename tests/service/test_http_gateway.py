"""Functional coverage of the asyncio HTTP gateway's endpoints.

Each test spins a real gateway on an ephemeral port inside
``asyncio.run`` and talks to it over real sockets through the
hand-rolled client in ``gateway_utils`` -- no mocked transports, the
parser and the framing are part of what is under test.
"""

import asyncio
import json

from gateway_utils import (DIVERGENT, encode_request, gateway,
                           query_spec, read_response, request,
                           request_raw_body, spec)
from repro.service import BatchScheduler, ServiceCache
from repro.service.dispatch import ServiceSession
from repro.service.http import HttpGateway


def test_submit_wait_returns_the_result_inline():
    async def main():
        async with gateway() as gw:
            status, _, reply = await request(
                gw.port, "POST", "/jobs?wait=1", body=spec("w1"))
            assert status == 200
            assert reply["status"] == "done"
            assert reply["result"]["status"] == "terminated"
            assert reply["fingerprint"] == reply["result"]["fingerprint"]
    asyncio.run(main())


def test_submit_poll_events_results_roundtrip():
    async def main():
        async with gateway() as gw:
            status, _, sub = await request(
                gw.port, "POST", "/jobs", body=spec("r1"))
            assert status == 202
            assert sub["status"] == "queued"
            assert sub["links"]["poll"] == f"/jobs/{sub['id']}"
            # Poll until done (bounded).
            for _ in range(200):
                status, _, poll = await request(
                    gw.port, "GET", f"/jobs/{sub['id']}")
                assert status == 200
                if poll["status"] == "done":
                    break
                await asyncio.sleep(0.02)
            assert poll["status"] == "done"
            assert poll["result"]["status"] == "terminated"
            # The events stream replays the full history and ends in
            # a result record.
            status, headers, body = await request_raw_body(
                gw.port, "GET", f"/jobs/{sub['id']}/events")
            assert status == 200
            assert headers["content-type"] == "application/x-ndjson"
            events = [json.loads(line)
                      for line in body.decode().splitlines()]
            kinds = [event["kind"] for event in events]
            assert kinds[0] == "queued"
            assert "finished" in kinds
            assert kinds[-1] == "result"
            assert events[-1]["result"]["status"] == "terminated"
            # The cached result is fetchable by fingerprint.
            status, _, cached = await request(
                gw.port, "GET", f"/results/{sub['fingerprint']}")
            assert status == 200
            assert cached["cached"] is True
            assert cached["status"] == "terminated"
    asyncio.run(main())


def test_warm_fingerprint_is_answered_from_the_cache_fast_path():
    async def main():
        async with gateway() as gw:
            await request(gw.port, "POST", "/jobs?wait=1",
                          body=spec("c1"))
            status, _, reply = await request(
                gw.port, "POST", "/jobs", body=spec("c1"))
            # Not 202: the warm fingerprint short-circuits the queue.
            assert status == 200
            assert reply["status"] == "done"
            assert reply["result"]["cached"] is True
    asyncio.run(main())


def test_structured_errors_for_bad_requests():
    async def main():
        async with gateway() as gw:
            # Valid kind, missing fields.
            status, _, reply = await request(
                gw.port, "POST", "/jobs", body={"kind": "chase"})
            assert status == 400
            assert reply["status"] == "error"
            assert reply["error"] == "invalid_spec"
            # Non-job kind on the job endpoint.
            status, _, reply = await request(
                gw.port, "POST", "/jobs", body={"kind": "stats"})
            assert status == 400
            assert reply["error"] == "invalid_request"
            # Invalid JSON body.
            status, _, reply = await request(
                gw.port, "POST", "/jobs", body=b"{nope")
            assert status == 400
            assert reply["error"] == "invalid_json"
            # Unknown path / unknown job / unknown fingerprint.
            assert (await request(gw.port, "GET", "/nope"))[0] == 404
            assert (await request(gw.port, "GET", "/jobs/j999"))[0] == 404
            assert (await request(
                gw.port, "GET", f"/results/{'0' * 64}"))[0] == 404
            # Wrong method names the allowed one.
            status, headers, _ = await request(gw.port, "GET", "/jobs")
            assert status == 405
            assert headers["allow"] == "POST"
    asyncio.run(main())


def test_backpressure_429_only_above_the_queue_bound():
    async def main():
        async with gateway(queue_bound=1) as gw:
            # Occupy the runner with a slow job...
            _, _, first = await request(
                gw.port, "POST", "/jobs",
                body=spec("slow", constraints=DIVERGENT,
                          instance="S(a).", max_steps=9_000))
            for _ in range(200):
                _, _, poll = await request(
                    gw.port, "GET", f"/jobs/{first['id']}")
                if poll["status"] != "queued":
                    break
                await asyncio.sleep(0.01)
            # ...then fill the single queue slot...
            status, _, _ = await request(
                gw.port, "POST", "/jobs",
                body=spec("q1", instance="S(q1)."))
            assert status == 202
            # ...and the next submit bounces with Retry-After.
            status, headers, reply = await request(
                gw.port, "POST", "/jobs",
                body=spec("q2", instance="S(q2)."))
            assert status == 429
            assert reply["error"] == "backpressure"
            assert float(headers["retry-after"]) > 0
    asyncio.run(main())


def test_request_wall_clock_budget_truncates_structuredly():
    async def main():
        scheduler = BatchScheduler(workers=1,
                                   cache=ServiceCache(result_size=64))
        session = ServiceSession(scheduler, request_wall_clock=0.05)
        gw = HttpGateway(session, port=0)
        await gw.start()
        try:
            status, _, reply = await request(
                gw.port, "POST", "/jobs?wait=1",
                body=spec("over", constraints=DIVERGENT,
                          instance="S(a).", max_steps=50_000_000),
                timeout=60.0)
            assert status == 200
            assert reply["result"]["status"] == "exceeded_wall_clock"
        finally:
            await gw.shutdown()
            scheduler.close()
    asyncio.run(main())


def test_stats_json_and_prometheus_negotiation():
    async def main():
        async with gateway() as gw:
            await request(gw.port, "POST", "/jobs?wait=1",
                          body=spec("s1"))
            status, _, stats = await request(gw.port, "GET", "/stats")
            assert status == 200
            assert stats["kind"] == "stats"
            assert set(stats) >= {"metrics", "cache", "gateway"}
            assert stats["gateway"]["queue_bound"] == gw.queue_bound
            assert stats["gateway"]["draining"] is False
            # Content negotiation: ?format= and Accept both work.
            for path, headers in (("/stats?format=prometheus", None),
                                  ("/stats", {"Accept": "text/plain"})):
                status, resp_headers, body = await request_raw_body(
                    gw.port, "GET", path, headers=headers)
                assert status == 200
                assert resp_headers["content-type"].startswith(
                    "text/plain")
    asyncio.run(main())


def test_keep_alive_serves_multiple_requests_per_connection():
    async def main():
        async with gateway() as gw:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", gw.port)
            try:
                for index in range(3):
                    writer.write(encode_request(
                        "GET", "/healthz", close=False))
                    await writer.drain()
                    status, _, body = await read_response(reader)
                    assert status == 200
                    assert json.loads(body)["status"] == "ok"
            finally:
                writer.close()
                await writer.wait_closed()
    asyncio.run(main())


def test_graceful_shutdown_drains_inflight_jobs():
    async def main():
        async with gateway(allow_shutdown=True) as gw:
            _, _, sub = await request(
                gw.port, "POST", "/jobs",
                body=spec("drain1", constraints=DIVERGENT,
                          instance="S(a).", max_steps=5_000))
            status, _, reply = await request(
                gw.port, "POST", "/shutdown")
            assert status == 202
            await asyncio.wait_for(gw.wait_terminated(), timeout=60)
            # The in-flight job finished (not dropped): its result is
            # in the record table.
            record = gw._records[sub["id"]]
            assert record.state == "done"
            assert record.result["status"] in ("terminated",
                                               "exceeded_budget")
    asyncio.run(main())


def test_shutdown_endpoint_is_gated():
    async def main():
        async with gateway() as gw:        # allow_shutdown=False
            status, _, _ = await request(gw.port, "POST", "/shutdown")
            assert status == 404
            status, _, health = await request(gw.port, "GET", "/healthz")
            assert status == 200 and health["status"] == "ok"
    asyncio.run(main())
