"""Concurrent-client stress: the gateway under a mixed workload.

The acceptance gate for the HTTP front-end: at least 16 concurrent
asyncio clients firing a mix of chase submissions, query submissions,
cache-hitting repeats, stats probes and malformed requests against a
live gateway.  Every request gets a well-formed response, 429s appear
only above the queue bound, every served result is byte-identical to
an in-process ``execute_any`` of the same spec, and the worker
processes are all gone after drain + close.
"""

import asyncio
import json
import os

from gateway_utils import (DIVERGENT, gateway, request, spec,
                           TERMINATING)
from repro.service import execute_any, job_from_dict

N_CLIENTS = 16

#: The deterministic fields of a result payload -- what "the same
#: answer" means across transports.  ``fingerprint`` is excluded
#: because planning pins ``strategy="auto"`` to a concrete strategy
#: (changing the fingerprint, not the outcome); ``elapsed`` /
#: ``worker`` / ``cached`` / ``metrics`` are execution provenance.
DETERMINISTIC_FIELDS = ("status", "steps", "new_nulls", "facts",
                        "answers", "query", "truncated")


def comparable(result_dict):
    return json.dumps({field: result_dict[field]
                       for field in DETERMINISTIC_FIELDS},
                      sort_keys=True)


def chase_spec(client):
    return spec(f"chase-{client}",
                instance=f"S(a{client}). S(b{client}).")


def query_spec_for(client):
    return spec(f"query-{client}",
                instance=f"E(a{client}, b{client}). S(a{client}).",
                query="q(x) <- E(x, y)")


SHARED = spec("shared", instance="S(shared).")
MALFORMED = {"kind": "chase", "name": "broken"}    # no constraints


async def one_client(port, client, outcomes):
    # 1. Unique chase job, submitted async, polled to completion.
    status, _, sub = await request(port, "POST", "/jobs",
                                   body=chase_spec(client))
    assert status in (200, 202), (client, status)
    for _ in range(1000):
        status, _, poll = await request(port, "GET",
                                        f"/jobs/{sub['id']}")
        assert status == 200
        if poll["status"] == "done":
            break
        await asyncio.sleep(0.01)
    assert poll["status"] == "done", f"client {client} job never done"
    assert poll["result"]["status"] == "terminated"
    outcomes["chase"][client] = (sub["fingerprint"], poll["result"])

    # 2. Query job, blocking submit.
    status, _, reply = await request(port, "POST", "/jobs?wait=1",
                                     body=query_spec_for(client))
    assert status == 200
    assert reply["result"]["status"] == "terminated"
    # One certain answer: the constant a<client> (wire-encoded).
    assert reply["result"]["answers"] == [[["c", f"a{client}"]]]
    outcomes["query"][client] = reply["result"]

    # 3. The shared spec: identical fingerprint across all clients --
    # answered from the cache fast path (200) or executed/deduped
    # (202 + poll); either way the same deterministic result.
    status, _, reply = await request(port, "POST", "/jobs?wait=1",
                                     body=SHARED)
    assert status in (200, 429), (client, status)
    if status == 429:
        outcomes["saw_429"].append(client)
    else:
        outcomes["shared"][client] = reply["result"]

    # 4. Malformed spec: structured 400, kind echoed, no traceback.
    status, _, reply = await request(port, "POST", "/jobs",
                                     body=MALFORMED)
    assert status == 400
    assert reply["status"] == "error"
    assert reply["error"] == "invalid_spec"
    assert "Traceback" not in reply["failure_reason"]

    # 5. Stats probe mid-flight.
    status, _, stats = await request(port, "GET", "/stats")
    assert status == 200
    assert stats["kind"] == "stats"

    # 6. The unique job's result is fetchable by fingerprint.
    fingerprint, _ = outcomes["chase"][client]
    status, _, cached = await request(port, "GET",
                                      f"/results/{fingerprint}")
    assert status == 200
    assert cached["cached"] is True


def test_sixteen_concurrent_clients_mixed_workload():
    outcomes = {"chase": {}, "query": {}, "shared": {},
                "saw_429": []}
    worker_pids = []

    async def main():
        async with gateway(workers=2, queue_bound=256) as gw:
            await asyncio.wait_for(
                asyncio.gather(*[one_client(gw.port, client, outcomes)
                                 for client in range(N_CLIENTS)]),
                timeout=120)
            worker_pids.extend(
                gw.session.scheduler.pool.worker_pids())
            # Bound generous (256) vs ~100 requests: backpressure
            # must never have fired.
            assert outcomes["saw_429"] == []
            # Drain-on-shutdown leaves nothing queued or running.
            await gw.shutdown()
            assert gw._open_jobs == 0
            assert len(gw._queue) == 0
            return gw.session.scheduler

    scheduler = asyncio.run(main())

    # -- cross-validation: byte-identical to in-process execution ----
    for client in range(N_CLIENTS):
        _, served = outcomes["chase"][client]
        reference = execute_any(
            job_from_dict(chase_spec(client))).to_dict()
        assert comparable(served) == comparable(reference), \
            f"chase-{client} diverged from in-process execution"
        served_query = outcomes["query"][client]
        reference = execute_any(
            job_from_dict(query_spec_for(client))).to_dict()
        assert comparable(served_query) == comparable(reference)
    shared_results = {comparable(result)
                      for result in outcomes["shared"].values()}
    assert len(shared_results) == 1, \
        "shared-fingerprint requests returned diverging results"
    assert comparable(execute_any(job_from_dict(SHARED)).to_dict()) \
        in shared_results

    # -- no worker leak after drain + close --------------------------
    assert scheduler.pool.worker_pids() == []
    for pid in worker_pids:
        for _ in range(200):              # close() reaps; allow 2s
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                break
            else:
                import time
                time.sleep(0.01)
        else:
            raise AssertionError(f"worker {pid} outlived close()")


def test_429_fires_exactly_above_the_queue_bound():
    """With a queue bound of 1 and the runner pinned on a slow job,
    the first extra submit queues (202) and the next bounces (429) --
    backpressure is a function of queue depth, nothing else."""
    async def main():
        async with gateway(queue_bound=1) as gw:
            _, _, first = await request(
                gw.port, "POST", "/jobs",
                body=spec("pin", constraints=DIVERGENT,
                          instance="S(a).", max_steps=9_000))
            for _ in range(500):
                _, _, poll = await request(gw.port, "GET",
                                           f"/jobs/{first['id']}")
                if poll["status"] != "queued":
                    break
                await asyncio.sleep(0.01)
            assert poll["status"] in ("running", "done")
            statuses = []
            for index in range(4):
                status, headers, _ = await request(
                    gw.port, "POST", "/jobs",
                    body=spec(f"flood-{index}",
                              instance=f"S(f{index})."))
                statuses.append(status)
                if status == 429:
                    assert "retry-after" in headers
            if poll["status"] == "running":
                # One slot free: exactly the first flood submit
                # queues, everything after bounces.
                assert statuses[0] == 202
                assert set(statuses[1:]) == {429}
    asyncio.run(main())


def test_burst_of_identical_submits_is_coherent():
    """All clients racing the same fingerprint: whether each request
    hits the cache fast path, dedups in a batch, or executes, every
    returned result is the same deterministic outcome."""
    async def main():
        async with gateway(workers=2, queue_bound=256) as gw:
            replies = await asyncio.gather(*[
                request(gw.port, "POST", "/jobs?wait=1",
                        body=spec("race", instance="S(r)."))
                for _ in range(N_CLIENTS)])
            assert {status for status, _, _ in replies} <= {200}
            distinct = {comparable(reply["result"])
                        for _, _, reply in replies}
            assert len(distinct) == 1
    asyncio.run(main())
