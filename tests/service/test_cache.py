"""LRU cache semantics and the two-compartment service cache."""

from repro.lang.parser import parse_constraints
from repro.service.cache import LRUCache, ServiceCache
from repro.service.jobs import (ChaseJob, execute_job, JobResult,
                                STATUS_KILLED)


def make_job(**kw):
    payload = {"constraints": "a1: S(x) -> E(x, y)", "instance": "S(a)."}
    payload.update(kw)
    return ChaseJob.from_dict(payload, name=kw.get("name", "job"))


# ----------------------------------------------------------------------
# LRUCache
# ----------------------------------------------------------------------
def test_lru_evicts_coldest_entry():
    cache = LRUCache(maxsize=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("c", 3)
    assert "a" not in cache
    assert cache.get("b") == 2 and cache.get("c") == 3
    assert cache.evictions == 1


def test_lru_get_promotes():
    cache = LRUCache(maxsize=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")              # promote: "b" is now coldest
    cache.put("c", 3)
    assert "a" in cache and "b" not in cache


def test_lru_stats_and_clear():
    cache = LRUCache(maxsize=4)
    cache.put("a", 1)
    cache.get("a")
    cache.get("missing")
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    cache.clear()
    assert len(cache) == 0


def test_lru_maxsize_zero_disables_caching():
    cache = LRUCache(maxsize=0)
    cache.put("a", 1)
    assert cache.get("a") is None
    assert len(cache) == 0


# ----------------------------------------------------------------------
# ServiceCache
# ----------------------------------------------------------------------
def test_result_cache_roundtrip_marks_cached_and_renames():
    cache = ServiceCache()
    job = make_job(name="original")
    result = execute_job(job)
    assert cache.store_result(result)
    hit = cache.lookup_result(make_job(name="other"))
    assert hit is not None
    assert hit.cached and hit.job == "other"
    assert hit.facts == result.facts
    # The stored entry itself is untouched.
    assert not cache.results.get(job.fingerprint()).cached


def test_result_cache_rejects_nondeterministic_outcomes():
    cache = ServiceCache()
    job = make_job(constraints="a2: S(x) -> E(x, y), S(y)",
                   max_steps=10_000_000, wall_clock=0.02)
    wall = execute_job(job)
    assert wall.status == "exceeded_wall_clock"
    assert not cache.store_result(wall)
    killed = JobResult(job="k", fingerprint="f", status=STATUS_KILLED)
    assert not cache.store_result(killed)
    assert cache.lookup_result(job) is None


def test_report_cache_shares_one_analysis_across_orders():
    cache = ServiceCache()
    forward = parse_constraints("S(x) -> E(x, y)\nE(x, y) -> T(y)")
    backward = list(reversed(forward))
    first = cache.report_for(forward)
    second = cache.report_for(backward)     # same set, different order
    assert first is second
    assert cache.reports.stats()["hits"] == 1
    assert cache.reports.stats()["misses"] == 1


def test_cache_stats_and_clear():
    cache = ServiceCache()
    job = make_job()
    cache.store_result(execute_job(job))
    cache.report_for(job.sigma)
    stats = cache.stats()
    assert stats["results"]["size"] == 1
    assert stats["reports"]["size"] == 1
    cache.clear()
    assert cache.lookup_result(job) is None
