"""Wire-encoding roundtrips and stability."""

import json

import pytest

from repro.chase import chase
from repro.lang.atoms import Atom
from repro.lang.instance import Instance
from repro.lang.parser import parse_constraints
from repro.lang.terms import Constant, Null, Variable
from repro.service.serialize import (atom_sort_key, decode_atom,
                                     decode_instance, decode_result,
                                     decode_term, encode_atom,
                                     encode_instance, encode_result,
                                     encode_term, WireError)


def test_term_roundtrip_preserves_kind_and_type():
    for term in (Constant("a"), Constant(1), Constant(1.5),
                 Constant("1"), Null(7)):
        assert decode_term(encode_term(term)) == term
    # A string constant "1" and an int constant 1 must not collide.
    assert encode_term(Constant("1")) != encode_term(Constant(1))
    # A null and a constant with the same payload must not collide.
    assert encode_term(Null(3)) != encode_term(Constant(3))


def test_atom_roundtrip():
    fact = Atom("E", (Constant("a"), Null(2)))
    assert decode_atom(encode_atom(fact)) == fact


def test_instance_roundtrip_and_backend():
    facts = [Atom("E", (Constant("a"), Constant("b"))),
             Atom("S", (Null(1),))]
    instance = Instance(facts, backend="column")
    payload = encode_instance(instance)
    decoded = decode_instance(payload)
    assert decoded == instance
    assert decoded.backend == "column"
    # The override wins over the encoded backend.
    assert decode_instance(payload, backend="set").backend == "set"


def test_encoding_is_stable_across_insertion_order():
    facts = [Atom("E", (Constant(f"c{i}"), Constant(f"c{i+1}")))
             for i in range(6)]
    forward = encode_instance(Instance(facts))
    backward = encode_instance(Instance(list(reversed(facts))))
    assert json.dumps(forward) == json.dumps(backward)


def test_atom_sort_key_is_injective_on_tricky_constants():
    # Rendered strings would collide ("S(a, b)" could be one binary or
    # one unary atom over a weird constant); the JSON key must not.
    left = Atom("S", (Constant("a"), Constant("b")))
    right = Atom("S", (Constant("a, b"),))
    assert atom_sort_key(left) != atom_sort_key(right)


def test_result_roundtrip_carries_status_and_instance():
    sigma = parse_constraints("a1: S(x) -> E(x, y)")
    instance = Instance([Atom("S", (Constant("a"),))])
    result = chase(instance, sigma)
    payload = encode_result(result)
    decoded = decode_result(payload)
    assert decoded.status is result.status
    assert decoded.instance == result.instance
    assert payload["steps"] == result.length


def test_malformed_payloads_raise_wire_error():
    with pytest.raises(WireError):
        decode_term(["x", 1])
    with pytest.raises(WireError):
        decode_term("nope")
    with pytest.raises(WireError):
        decode_term("c7")          # 2-char string must not unpack
    with pytest.raises(WireError):
        decode_atom("Sx")
    with pytest.raises(WireError):
        decode_atom({"relation": "S"})
    with pytest.raises(WireError):
        decode_instance(["not", "a", "dict"])
    with pytest.raises(WireError):
        decode_result({"no": "status"})
    with pytest.raises(WireError):
        encode_term(Variable("x"))
    with pytest.raises(WireError):
        encode_term(Constant(object()))
