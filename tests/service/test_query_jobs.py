"""QueryJob: fingerprints, execution semantics, service integration."""

import json

import pytest

from repro.kb.answering import certain_answers
from repro.lang.parser import parse_constraints, parse_instance, parse_query
from repro.service import (BatchScheduler, execute_query_job, job_from_dict,
                           QueryJob, ServiceCache, STATUS_ERROR)
from repro.service.serialize import decode_term, WireError
from repro.workloads.batch import query_batch_specs

TERMINATING = "symm: E(x, y) -> E(y, x)"
DIVERGENT = "a2: S(x) -> E(x, y), S(y)"


def make_job(name="q1", constraints=TERMINATING,
             instance="E(a, b). E(b, c).",
             query="q(x, z) <- E(x, y), E(y, z)", **kw):
    return QueryJob(name=name,
                    sigma=tuple(parse_constraints(constraints)),
                    instance=parse_instance(instance),
                    query=parse_query(query), **kw)


def decoded(result):
    return {tuple(decode_term(term) for term in row)
            for row in result.answers}


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_name_and_wall_clock_excluded(self):
        base = make_job()
        assert base.fingerprint() == make_job(name="other").fingerprint()
        assert (base.fingerprint()
                == make_job(wall_clock=5.0).fingerprint())

    @pytest.mark.parametrize("change", [
        {"query": "q(x) <- E(x, y)"},
        {"constraints": DIVERGENT, "instance": "S(a)."},
        {"optimize": False},
        {"depth_limit": 7},
        {"max_steps": 99},
        {"strategy": "ordered"},
    ])
    def test_outcome_relevant_knobs_included(self, change):
        kw = {k: v for k, v in change.items()
              if k not in ("query", "constraints", "instance")}
        args = {k: change[k] for k in ("query", "constraints", "instance")
                if k in change}
        assert make_job().fingerprint() != make_job(**args, **kw).fingerprint()

    def test_wire_round_trip_preserves_fingerprint(self):
        job = make_job(backend="column", depth_limit=5, optimize=False)
        round_tripped = job_from_dict(job.to_dict())
        assert isinstance(round_tripped, QueryJob)
        assert round_tripped.fingerprint() == job.fingerprint()

    def test_chase_and_query_jobs_never_collide(self):
        from repro.service import ChaseJob
        chase_job = ChaseJob(name="c", sigma=make_job().sigma,
                             instance=parse_instance("E(a, b). E(b, c)."))
        assert chase_job.fingerprint() != make_job().fingerprint()


# ----------------------------------------------------------------------
# Spec decoding
# ----------------------------------------------------------------------
class TestFromDict:
    def test_kind_dispatch(self):
        spec = {"constraints": TERMINATING, "instance": "E(a, b).",
                "query": "q(x) <- E(x, y)"}
        assert isinstance(job_from_dict(spec), QueryJob)
        assert isinstance(job_from_dict(dict(spec, kind="query")), QueryJob)
        with pytest.raises(WireError):
            job_from_dict(dict(spec, kind="bogus"))

    def test_missing_query_key(self):
        with pytest.raises(WireError):
            QueryJob.from_dict({"constraints": TERMINATING,
                                "instance": "E(a, b)."})

    def test_non_string_query_rejected(self):
        with pytest.raises(WireError):
            QueryJob.from_dict({"constraints": TERMINATING,
                                "instance": "E(a, b).", "query": 5})

    def test_optimize_must_be_json_boolean(self):
        """bool("false") is True, so string values must be rejected
        instead of silently inverting a hand-written opt-out."""
        spec = {"constraints": TERMINATING, "instance": "E(a, b).",
                "query": "q(x) <- E(x, y)", "optimize": "false"}
        with pytest.raises(WireError):
            QueryJob.from_dict(spec)

    def test_explicit_null_knobs_mean_default(self):
        """JSON null for any knob -- optimize included -- means 'use
        the default', exactly like omitting the key, so the two spec
        forms share one fingerprint and one cache entry."""
        spec = {"constraints": TERMINATING, "instance": "E(a, b).",
                "query": "q(x) <- E(x, y)"}
        nulled = dict(spec, optimize=None, max_steps=None,
                      depth_limit=None)
        assert QueryJob.from_dict(nulled).optimize is True
        assert (QueryJob.from_dict(nulled).fingerprint()
                == QueryJob.from_dict(spec).fingerprint())


# ----------------------------------------------------------------------
# Execution semantics
# ----------------------------------------------------------------------
class TestExecution:
    def test_exact_path_matches_certain_answers(self):
        job = make_job()
        result = execute_query_job(job)
        assert result.terminated and not result.truncated
        assert result.facts is None
        reference = certain_answers(parse_instance("E(a, b). E(b, c)."),
                                    parse_constraints(TERMINATING),
                                    job.query)
        assert decoded(result) == reference

    def test_optimized_and_plain_agree(self):
        """The Section 4 rewriting is Sigma-equivalent, so both
        settings must produce identical certain answers."""
        sigma = "key: R(x, y), R(x, z) -> y = z"
        instance = "R(a, b). R(c, d). E(b, e)."
        query = "q(x) <- R(x, y), R(x, z), E(y, w)"
        plain = execute_query_job(make_job(constraints=sigma,
                                           instance=instance, query=query,
                                           optimize=False))
        optimized = execute_query_job(make_job(constraints=sigma,
                                               instance=instance,
                                               query=query))
        assert plain.answers == optimized.answers
        # ... and the rewriting really was smaller for this query
        assert len(parse_query(optimized.query).body) \
            < len(parse_query(plain.query).body)

    def test_fallback_honours_job_budgets(self):
        """The depth-bounded fallback must not run unbudgeted: a
        divergent job's max_facts bounds the prefix too, keeping the
        blast radius within the declared budget."""
        job = make_job(constraints=DIVERGENT, instance="S(a).",
                       query="q(u) <- S(u)", max_steps=100, max_facts=8)
        result = execute_query_job(job)
        assert result.status == "exceeded_budget"
        assert result.truncated and result.ok

    def test_divergent_set_truncates(self):
        job = make_job(constraints=DIVERGENT, instance="S(a). E(a, b). S(b).",
                       query="q(u) <- S(u), E(u, v)", max_steps=200)
        result = execute_query_job(job)
        assert result.status == "exceeded_budget"
        assert result.truncated
        assert decoded(result) == certain_answers(
            parse_instance("S(a). E(a, b). S(b)."),
            parse_constraints(DIVERGENT),
            job.query, max_steps=200)

    def test_inconsistent_kb_reports_failure(self):
        job = make_job(constraints="E(x, y), E(x, z) -> y = z",
                       instance="E(a, b). E(a, c).",
                       query="q(x) <- E(x, y)")
        result = execute_query_job(job)
        assert result.status == "failed"
        assert result.answers is None and result.ok

    def test_errors_never_propagate(self):
        result = execute_query_job(make_job(strategy="bogus"))
        assert result.status == STATUS_ERROR
        assert "bogus" in result.failure_reason

    def test_body_nulls_survive_optimization(self):
        """A labeled null in the query body matches itself exactly;
        the optimizer must keep it rigid instead of folding it or
        renaming it into a variable (regression: KeyError)."""
        job = make_job(instance="E(a, b). E(a, ?n7). E(?n7, c).",
                       query="q(x) <- E(x, ?n7)")
        result = execute_query_job(job)
        assert result.terminated, result.failure_reason
        plain = execute_query_job(job.with_updates(optimize=False))
        # symm closes E(?n7, c) into E(c, ?n7), so x binds a and c
        assert result.answers == plain.answers == [[["c", "a"]],
                                                   [["c", "c"]]]

    def test_answers_identical_across_backends(self):
        specs = query_batch_specs(6, seed=11)
        for spec in specs:
            per_backend = [execute_query_job(
                job_from_dict(dict(spec, backend=backend)))
                for backend in ("set", "column")]
            assert per_backend[0].answers == per_backend[1].answers
            assert per_backend[0].status == per_backend[1].status

    def test_answers_sorted_canonically(self):
        result = execute_query_job(make_job())
        keys = [json.dumps(row, sort_keys=True) for row in result.answers]
        assert keys == sorted(keys)


# ----------------------------------------------------------------------
# Scheduler / cache / pool integration
# ----------------------------------------------------------------------
class TestServiceIntegration:
    def test_auto_strategy_pinned_from_report(self):
        from pathlib import Path
        events = []
        scheduler = BatchScheduler(workers=1, force_inprocess=True,
                                   on_event=events.append)
        job = QueryJob.from_path(
            Path(__file__).resolve().parents[2] / "examples" / "queries"
            / "stratified_only.json")
        planned, report, guaranteed = scheduler.plan_job(job)
        assert planned.strategy == "stratified"
        assert guaranteed and report.stratified
        scheduler.close()

    def test_warm_cache_rerun_executes_nothing(self):
        jobs = [job_from_dict(spec)
                for spec in query_batch_specs(6, seed=4)]
        with BatchScheduler(workers=1, cache=ServiceCache(),
                            force_inprocess=True) as scheduler:
            cold = scheduler.run_batch(jobs)
            executed = scheduler.pool.executed
            warm = scheduler.run_batch(jobs)
            assert scheduler.pool.executed == executed
            assert all(result.cached for result in warm)
            assert ([(r.job, r.status, r.answers) for r in warm]
                    == [(r.job, r.status, r.answers) for r in cold])

    def test_mixed_chase_and_query_batch(self):
        """Chase and query jobs share one batch: results in input
        order, each of its own shape."""
        chase_spec = {"name": "c", "constraints": TERMINATING,
                      "instance": "E(a, b)."}
        query_spec_ = {"name": "q", "constraints": TERMINATING,
                       "instance": "E(a, b).", "query": "q(x) <- E(x, y)"}
        jobs = [job_from_dict(chase_spec), job_from_dict(query_spec_)]
        with BatchScheduler(workers=1, force_inprocess=True) as scheduler:
            results = scheduler.run_batch(jobs)
        assert [r.job for r in results] == ["c", "q"]
        assert results[0].facts is not None and results[0].answers is None
        assert results[1].answers is not None and results[1].facts is None

    def test_parallel_workers_match_inprocess(self):
        """Query jobs through real worker processes: identical wire
        results to sequential in-process execution."""
        jobs = [job_from_dict(spec)
                for spec in query_batch_specs(6, seed=7)]
        with BatchScheduler(workers=2) as parallel:
            pooled = parallel.run_batch(jobs)
        with BatchScheduler(workers=1, force_inprocess=True) as sequential:
            inproc = sequential.run_batch(jobs)
        assert ([(r.job, r.status, r.answers, r.truncated) for r in pooled]
                == [(r.job, r.status, r.answers, r.truncated)
                    for r in inproc])
