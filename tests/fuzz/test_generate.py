"""The fuzz generator: deterministic, well-formed, boundary-biased."""

import json
import os
import subprocess
import sys

from repro.fuzz import FuzzConfig, case_rng, generate_case, generate_corpus
from repro.lang.constraints import EGD, TGD
from repro.lang.parser import parse_constraints, parse_instance, parse_query
from repro.service.jobs import job_from_dict


def corpus_digest(seed, n):
    return [(case.label(), case.constraints_text(), case.instance_text(),
             case.query_text()) for case in generate_corpus(seed, n)]


def test_same_seed_same_corpus():
    assert corpus_digest(7, 10) == corpus_digest(7, 10)
    assert corpus_digest(7, 10) != corpus_digest(8, 10)


def test_cases_are_pure_functions_of_seed_and_index():
    long = corpus_digest(3, 12)
    short = corpus_digest(3, 5)
    assert long[:5] == short


def test_corpus_identical_in_a_fresh_interpreter():
    program = (
        "import json\n"
        "from repro.fuzz import generate_corpus\n"
        "print(json.dumps([(c.label(), c.constraints_text(),"
        " c.instance_text(), c.query_text())"
        " for c in generate_corpus(7, 6)]))\n")
    env = dict(os.environ, PYTHONHASHSEED="9999")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(os.getcwd(), "src"),
                    env.get("PYTHONPATH")) if p)
    out = subprocess.run([sys.executable, "-c", program],
                         capture_output=True, text=True, env=env, check=True)
    assert json.loads(out.stdout) == [list(t) for t in corpus_digest(7, 6)]


def test_case_rng_is_stable():
    assert case_rng(1, 2).random() == case_rng(1, 2).random()
    assert case_rng(1, 2).random() != case_rng(1, 3).random()


def test_generated_text_reparses_to_the_case_objects():
    for case in generate_corpus(11, 20):
        assert tuple(parse_constraints(case.constraints_text())) == case.sigma
        reparsed = parse_instance(case.instance_text())
        assert reparsed.facts() == case.instance.facts()
        assert parse_query(case.query_text()) == case.query


def test_specs_round_trip_through_the_service_parsers():
    # Every generated chase and query spec must load through the same
    # validating parsers `repro batch` uses (incl. the arity check).
    for case in generate_corpus(2, 15):
        chase_job = job_from_dict(case.to_chase_spec())
        assert chase_job.kind == "chase"
        query_job = job_from_dict(case.to_query_spec())
        assert query_job.kind == "query"
        assert chase_job.fingerprint() != query_job.fingerprint()


def test_corpus_mixes_constraint_kinds_and_cyclicity():
    cases = generate_corpus(0, 40)
    kinds = {type(c) for case in cases for c in case.sigma}
    assert TGD in kinds and EGD in kinds
    # The termination-class boundary bias must produce existentials
    # feeding back into their own body relations somewhere.
    def feeds_back(case):
        body_rels = {a.relation for c in case.sigma for a in c.body}
        head_rels = {a.relation for c in case.sigma
                     if isinstance(c, TGD) for a in c.head}
        return bool(body_rels & head_rels)
    assert any(feeds_back(case) for case in cases)


def test_config_knobs_are_respected():
    config = FuzzConfig(n_constraints=(1, 2), max_arity=2, n_facts=(1, 3))
    for index in range(10):
        case = generate_case(9, index, config)
        assert len(case.sigma) <= 2
        assert all(a.arity <= 2 for c in case.sigma for a in c.body)
        assert len(case.instance.facts()) <= 3


def test_with_parts_rebuilds_texts():
    case = generate_case(1, 0)
    smaller = case.with_parts(sigma=case.sigma[:1])
    assert smaller.sigma == case.sigma[:1]
    assert tuple(parse_constraints(smaller.constraints_text())) \
        == case.sigma[:1]
    assert smaller.label() == case.label()
