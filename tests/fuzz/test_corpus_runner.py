"""The corpus runner end to end: determinism, mutation kill, replay.

The acceptance loop for the whole fuzz subsystem lives here: a lying
class-membership probe (the classic mutation test) must be *caught* by
the metamorphic oracles, *shrunk* to a minimal case, *persisted* as a
repro spec, and that spec must *replay* through ``repro batch``.
"""

import json

import pytest

from repro.cli import main
from repro.fuzz import (generate_case, oracle_deadline, OracleTimeout,
                        run_corpus, write_repro_spec)
from repro.fuzz import oracles as oracles_module
from repro.fuzz.oracles import Violation

pytestmark = pytest.mark.fuzz


def corpus_verdicts(**kwargs):
    report = run_corpus(**kwargs)
    return ([(f.violation.oracle, f.violation.case_label,
              f.violation.detail) for f in report.failures],
            report.oracle_calls)


def test_clean_corpus_passes_and_is_deterministic():
    kwargs = dict(seed=0, n_cases=8, wall_clock=None,
                  oracle_deadline_s=1.5, pool_every=0, shrink=False)
    first = corpus_verdicts(**kwargs)
    second = corpus_verdicts(**kwargs)
    assert first == second
    assert first[0] == []                       # no violations on seed 0


def test_report_to_dict_is_json_safe():
    report = run_corpus(seed=0, n_cases=2, wall_clock=None,
                        oracle_deadline_s=1.5, pool_every=0, shrink=False)
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["ok"] is True
    assert payload["cases"] == 2
    assert payload["oracle_calls"] == report.oracle_calls


# ----------------------------------------------------------------------
# the mutation test: a lying probe must be caught, shrunk, replayable
# ----------------------------------------------------------------------
def test_lying_probe_is_caught_shrunk_and_replayable(monkeypatch, tmp_path):
    monkeypatch.setitem(oracles_module.PROBES, "safe", lambda sigma: True)
    report = run_corpus(seed=5, n_cases=4, deep_hierarchy_every=1,
                        pool_every=0, repro_dir=tmp_path,
                        oracle_deadline_s=2.0)
    assert not report.ok
    oracles_hit = {f.violation.oracle for f in report.failures}
    assert "hierarchy" in oracles_hit           # Figure 1 implication broken

    failure = report.failures[0]
    # Shrinking kept the failure while discarding structure.
    assert failure.shrink is not None
    assert failure.shrink.evaluations > 0
    assert len(failure.shrunk.sigma) <= len(
        generate_case(5, failure.shrunk.index).sigma)

    # The repro spec landed on disk with its fuzz coordinates...
    assert failure.repro_path is not None
    spec = json.loads(open(failure.repro_path).read())
    assert spec["fuzz"]["oracle"] == failure.violation.oracle
    assert spec["fuzz"]["seed"] == 5
    assert spec["constraints"] == failure.shrunk.constraints_text()

    # ...and replays through the ordinary batch CLI.
    assert main(["batch", failure.repro_path, "--workers", "1"]) == 0


def test_violations_are_deterministic_across_runs(monkeypatch):
    monkeypatch.setitem(oracles_module.PROBES, "safe", lambda sigma: True)
    kwargs = dict(seed=5, n_cases=4, deep_hierarchy_every=1,
                  pool_every=0, shrink=False, oracle_deadline_s=2.0)
    assert corpus_verdicts(**kwargs) == corpus_verdicts(**kwargs)


def test_injected_oracle_registry_is_used():
    calls = []

    def always_fires(case, ctx):
        calls.append(case.label())
        return [Violation(oracle="custom", case_label=case.label(),
                          detail="synthetic")]

    report = run_corpus(seed=1, n_cases=3, oracles={"custom": always_fires},
                        shrink=False, oracle_deadline_s=None)
    assert len(calls) == 3
    assert len(report.failures) == 3
    assert report.oracle_calls == 3


# ----------------------------------------------------------------------
# deadline mechanics
# ----------------------------------------------------------------------
def test_oracle_timeout_is_not_an_exception():
    # It must cut through the engine's `except Exception` containment;
    # anything narrower would resurface as a fake "error" result.
    assert issubclass(OracleTimeout, BaseException)
    assert not issubclass(OracleTimeout, Exception)


def test_oracle_deadline_interrupts_a_swallowing_loop():
    with pytest.raises(OracleTimeout):
        with oracle_deadline(0.05):
            while True:
                try:
                    pass
                except Exception:               # noqa: BLE001
                    pass


def test_deadline_hits_become_skips_not_verdicts():
    def stall(case, ctx):
        while True:
            pass

    report = run_corpus(seed=1, n_cases=2, oracles={"stall": stall},
                        shrink=False, oracle_deadline_s=0.05)
    assert report.ok                            # skips, no violations
    assert len(report.skips) == 4               # oracle + case bail, per case


# ----------------------------------------------------------------------
# repro spec writing
# ----------------------------------------------------------------------
def test_write_repro_spec_shapes(tmp_path):
    case = generate_case(3, 1)
    chase_path = write_repro_spec(case, Violation(
        oracle="backend_parity", case_label=case.label(), detail="d"),
        tmp_path)
    query_path = write_repro_spec(case, Violation(
        oracle="certain_answers", case_label=case.label(), detail="d"),
        tmp_path)
    chase_spec = json.loads(chase_path.read_text())
    query_spec = json.loads(query_path.read_text())
    assert chase_spec["kind"] == "chase" and "query" not in chase_spec
    assert query_spec["kind"] == "query" and query_spec["query"]
    assert chase_path.name == f"{case.label()}_backend_parity.json"
    # Both parse as ordinary batch jobs (the fuzz key is ignored).
    from repro.service.jobs import job_from_dict
    assert job_from_dict(chase_spec).kind == "chase"
    assert job_from_dict(query_spec).kind == "query"
