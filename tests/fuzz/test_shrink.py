"""The ddmin-lite shrinker: minimality, budgets, validity handling."""

from repro.fuzz.generate import generate_case
from repro.fuzz.shrink import shrink_case
from repro.lang.errors import ReproError


def tgd_labels(case):
    return [c.label for c in case.sigma]


def test_shrinks_to_the_single_guilty_constraint():
    case = generate_case(0, 0)
    guilty = case.sigma[0].label

    def still_fails(candidate):
        return any(c.label == guilty for c in candidate.sigma)

    result = shrink_case(case, still_fails)
    assert tgd_labels(result.case) == [guilty]
    assert len(result.case.instance.facts()) == 0
    assert result.removed_constraints == len(case.sigma) - 1
    assert result.removed_facts == len(case.instance.facts())


def test_failing_everything_shrinks_to_the_floor():
    case = generate_case(0, 1)
    result = shrink_case(case, lambda candidate: True)
    assert len(result.case.sigma) == 0
    assert len(result.case.instance.facts()) == 0
    # The query keeps at least one body atom (keep_one floor).
    assert len(result.case.query.body) >= 1


def test_shrink_preserves_the_failure():
    case = generate_case(4, 2)
    target = len(case.instance.facts()) and sorted(
        case.instance.facts(), key=str)[0]

    def still_fails(candidate):
        return target in candidate.instance.facts()

    if not target:
        return
    result = shrink_case(case, still_fails)
    assert still_fails(result.case)
    assert list(result.case.instance.facts()) == [target]


def test_evaluation_budget_is_respected():
    case = generate_case(0, 3)
    calls = []

    def still_fails(candidate):
        calls.append(1)
        return True

    result = shrink_case(case, still_fails, max_evaluations=5)
    assert result.evaluations <= 5
    assert len(calls) <= 5


def test_predicate_errors_count_as_not_failing():
    case = generate_case(0, 4)

    def touchy(candidate):
        if len(candidate.sigma) < len(case.sigma):
            raise ReproError("cannot evaluate reduced case")
        return True

    result = shrink_case(case, touchy)
    # Every removal attempt "failed to fail", so nothing was removed.
    assert result.case.sigma == case.sigma


def test_describe_summarizes_the_reduction():
    case = generate_case(0, 0)
    result = shrink_case(case, lambda candidate: True)
    text = result.describe()
    assert "constraint" in text and "fact" in text
