"""Individual metamorphic oracles on hand-built and paper cases."""

import pytest

from repro.cq.query import ConjunctiveQuery
from repro.fuzz import oracles as oracles_module
from repro.fuzz.generate import FuzzCase, generate_case
from repro.fuzz.oracles import (ALL_SEQUENCE_CLASSES, DEEP_PROBES, ORACLES,
                                OracleContext, PROBES, Violation)
from repro.lang.parser import parse_constraints, parse_instance, parse_query
from repro.lang.schema import Schema


def make_case(constraints: str, instance: str,
              query: str = "q(x) <- S(x)", index: int = 0) -> FuzzCase:
    sigma = tuple(parse_constraints(constraints))
    inst = parse_instance(instance)
    schema = inst.schema()
    for constraint in sigma:
        schema = schema.merged(constraint.schema())
    return FuzzCase(seed=999, index=index, schema=schema, sigma=sigma,
                    instance=inst, query=parse_query(query))


WEAKLY_ACYCLIC = make_case("a1: S(x) -> E(x, y)", "S(a). S(b).")
DIVERGENT = make_case("a2: S(x) -> E(x, y), S(y)", "S(a).")


@pytest.fixture
def ctx():
    with OracleContext(max_steps=200, wall_clock=None,
                       deep_hierarchy_every=1, pool_every=0) as context:
        yield context


def run_oracle(name, case, context):
    context.start_case(case)
    return ORACLES[name](case, context)


# ----------------------------------------------------------------------
# clean cases pass every oracle
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", list(ORACLES))
def test_weakly_acyclic_case_passes(name, ctx):
    assert run_oracle(name, WEAKLY_ACYCLIC, ctx) == []


@pytest.mark.parametrize("name", [n for n in ORACLES
                                  if n != "service_parity"])
def test_divergent_case_passes_without_guarantees(name, ctx):
    # Nothing guarantees termination, so the operational oracles skip
    # or vacuously pass -- never flag a violation.
    assert run_oracle(name, DIVERGENT, ctx) == []


def test_probe_tables_cover_figure_one():
    assert set(PROBES) == {"weakly_acyclic", "safe", "stratified",
                           "c_stratified"}
    assert set(DEEP_PROBES) == {"safely_restricted",
                                "inductively_restricted", "t2", "t3"}
    assert set(ALL_SEQUENCE_CLASSES) \
        <= set(PROBES) | set(DEEP_PROBES)


# ----------------------------------------------------------------------
# the mutation seam: lying probes are observable per oracle
# ----------------------------------------------------------------------
def test_hierarchy_oracle_catches_a_lying_probe(monkeypatch, ctx):
    monkeypatch.setitem(oracles_module.PROBES, "safe",
                        lambda sigma: True)
    violations = run_oracle("hierarchy", DIVERGENT, ctx)
    assert violations
    assert all(v.oracle == "hierarchy" for v in violations)
    assert any("safe" in v.detail for v in violations)


def test_termination_oracle_catches_a_lying_probe(monkeypatch, ctx):
    # Claim the divergent Introduction set is weakly acyclic: the
    # budgeted chase then exposes the lie operationally.
    monkeypatch.setitem(oracles_module.PROBES, "weakly_acyclic",
                        lambda sigma: True)
    violations = run_oracle("termination", DIVERGENT, ctx)
    assert len(violations) == 1
    assert "weakly_acyclic" in violations[0].detail
    assert "exceeded_budget" in violations[0].detail


def test_probes_are_reread_on_each_fresh_case(monkeypatch, ctx):
    # The seam is only useful if verdicts are not memoized across
    # cases: a probe swapped between cases must take effect.
    assert run_oracle("hierarchy", DIVERGENT, ctx) == []
    monkeypatch.setitem(oracles_module.PROBES, "safe",
                        lambda sigma: True)
    assert run_oracle("hierarchy", DIVERGENT, ctx)


# ----------------------------------------------------------------------
# context mechanics the oracles rely on
# ----------------------------------------------------------------------
def test_run_chase_is_memoized_per_configuration(ctx):
    ctx.start_case(WEAKLY_ACYCLIC)
    first = ctx.run_chase(WEAKLY_ACYCLIC)
    assert ctx.run_chase(WEAKLY_ACYCLIC) is first
    assert ctx.run_chase(WEAKLY_ACYCLIC, backend="column") is not first
    ctx.start_case(DIVERGENT)
    assert ctx.run_chase(DIVERGENT) is not first


def test_deep_and_pool_sampling_follow_case_index():
    with OracleContext(deep_hierarchy_every=3, pool_every=2) as context:
        c0, c1, c3 = (generate_case(0, i) for i in (0, 1, 3))
        assert context.deep_case(c0) and not context.deep_case(c1)
        assert context.pool_case(c0) and not context.pool_case(c3)
    with OracleContext(deep_hierarchy_every=0, pool_every=0) as context:
        assert not context.deep_case(c0) and not context.pool_case(c0)


def test_skips_are_recorded_not_raised(ctx):
    tight = OracleContext(max_steps=3, wall_clock=None,
                          deep_hierarchy_every=0, pool_every=0)
    with tight:
        tight.start_case(WEAKLY_ACYCLIC)
        # max_steps=3 cannot finish S(a)+S(b): parity oracles skip.
        case = make_case("a1: S(x) -> E(x, y)",
                         "S(a). S(b). S(c). S(d). S(e).")
        tight.start_case(case)
        assert ORACLES["backend_parity"](case, tight) == []
        assert any("backend_parity" in line for line in tight.skips)


def test_violation_render_mentions_oracle_and_case():
    violation = Violation("backend_parity", "fuzz_s1_c2", "boom")
    assert "[backend_parity]" in violation.render()
    assert "fuzz_s1_c2" in violation.render()


# ----------------------------------------------------------------------
# kernel parity oracle: mutation seam
# ----------------------------------------------------------------------
def test_kernel_parity_catches_a_dropped_homomorphism(monkeypatch, ctx):
    """The oracle is not vacuous: a batch path that silently drops one
    result must be flagged."""
    from repro.homomorphism.plan import JoinPlan

    original = JoinPlan.execute_batch

    def lying_batch(self, *args, **kwargs):
        results = iter(original(self, *args, **kwargs))
        next(results, None)          # swallow the first homomorphism
        return results

    monkeypatch.setattr(JoinPlan, "execute_batch", lying_batch)
    case = make_case("a1: S(x) -> E(x, y)", "S(a). S(b). E(a, b).")
    violations = run_oracle("kernel_parity", case, ctx)
    assert violations and all(v.oracle == "kernel_parity"
                              for v in violations)


def test_kernel_parity_catches_a_duplicated_homomorphism(monkeypatch, ctx):
    """Multiset comparison: duplicating a result is flagged even
    though the distinct answer set is unchanged."""
    from repro.homomorphism.plan import JoinPlan

    original = JoinPlan.execute_batch

    def stuttering_batch(self, *args, **kwargs):
        first = None
        for assignment in original(self, *args, **kwargs):
            if first is None:
                first = assignment
                yield dict(assignment)
            yield assignment

    monkeypatch.setattr(JoinPlan, "execute_batch", stuttering_batch)
    case = make_case("a1: S(x) -> E(x, y)", "S(a). S(b). E(a, b).")
    violations = run_oracle("kernel_parity", case, ctx)
    assert violations


def test_engine_parity_includes_batch_column(ctx):
    """The third parity column runs: a clean case memoizes both the
    batch-enabled and the batch-disabled column chase."""
    case = make_case("a1: S(x) -> E(x, y)", "S(a). S(b).")
    assert run_oracle("engine_parity", case, ctx) == []
    assert ("chase", "column", "round_robin", False, False) in ctx._memo
    assert ("chase", "column", "round_robin", False, True) in ctx._memo
