"""The analyze() front-end and Figure 1's separations."""

from repro.chase import chase
from repro.termination.report import analyze, CONDITIONS
from repro.workloads.paper import (example2_gamma, example4, example8_beta,
                                   example13, figure2, intro_alpha1,
                                   intro_alpha2)


class TestAnalyze:
    def test_weakly_acyclic_set(self):
        report = analyze(intro_alpha1(), max_k=2)
        assert report.weakly_acyclic and report.safe
        assert report.stratified and report.c_stratified
        assert report.inductively_restricted
        assert report.guarantees_all_sequences

    def test_divergent_set(self):
        report = analyze(intro_alpha2(), max_k=2)
        assert not any(getattr(report, name) for name in CONDITIONS)
        assert report.t_hierarchy_level is None
        assert not report.guarantees_some_sequence

    def test_example4_only_stratified(self):
        report = analyze(example4(), max_k=2)
        assert report.stratified
        assert not report.c_stratified
        assert not report.inductively_restricted
        assert not report.guarantees_all_sequences
        assert report.guarantees_some_sequence
        assert report.recommended_strategy() is not None

    def test_safe_not_stratified(self):
        report = analyze(example8_beta(), max_k=2)
        assert report.safe and not report.weakly_acyclic
        assert report.recommended_strategy() is None

    def test_figure2_needs_t3(self):
        report = analyze(figure2(), max_k=3)
        assert not any(getattr(report, name) for name in CONDITIONS)
        assert report.t_hierarchy_level == 3
        assert report.guarantees_all_sequences

    def test_render_is_complete(self):
        text = analyze(example13(), max_k=2).render()
        for name in CONDITIONS:
            assert name in text
        assert "t_hierarchy" in text

    def test_as_row(self):
        row = analyze(example13(), max_k=2).as_row()
        assert row["inductively_restricted"] is True
        assert row["safe"] is False
        assert row["t_level"] == 2


class TestReportIdentity:
    """Value semantics, fingerprints and the analyze() memo (PR 4)."""

    def test_reports_are_value_objects(self):
        from repro.lang.parser import parse_constraints
        left = analyze(parse_constraints("S(x) -> E(x, y)"), max_k=2)
        right = analyze(parse_constraints("S(x) -> E(x, y)"), max_k=2)
        assert left == right
        assert hash(left) == hash(right)
        other = analyze(parse_constraints("S(x) -> E(y, x)"), max_k=2)
        assert left != other

    def test_fingerprint_ignores_order_and_labels_not_content(self):
        from repro.lang.parser import parse_constraints
        forward = analyze(parse_constraints(
            "a: S(x) -> E(x, y)\nb: E(x, y) -> T(y)"))
        backward = analyze(parse_constraints(
            "E(x, y) -> T(y)\nS(x) -> E(x, y)"))
        assert forward.fingerprint() == backward.fingerprint()
        deeper = analyze(parse_constraints(
            "a: S(x) -> E(x, y)\nb: E(x, y) -> T(y)"), max_k=5)
        assert forward.fingerprint() != deeper.fingerprint()
        other = analyze(parse_constraints("S(x) -> E(x, x)"))
        assert forward.fingerprint() != other.fingerprint()

    def test_analyze_is_memoized(self):
        from repro.termination.report import (analyze_cache_info,
                                              clear_analyze_cache)
        clear_analyze_cache()
        sigma = example4()
        first = analyze(sigma, max_k=2)
        before = analyze_cache_info().hits
        second = analyze(list(sigma), max_k=2)
        assert second is first
        assert analyze_cache_info().hits == before + 1
        # A different probe depth is a different memo entry.
        assert analyze(sigma, max_k=3) is not first
        clear_analyze_cache()
