"""Restriction systems, part, inductive restriction (Section 3.5)."""

from hypothesis import given, settings

from repro.lang.atoms import Position
from repro.lang.parser import parse_constraint, parse_constraints
from repro.termination.restriction import (aff_cl, flow_restriction_system,
                                           is_inductively_restricted,
                                           is_safely_restricted,
                                           minimal_restriction_system, part)
from repro.termination.safety import is_safe
from repro.termination.stratification import is_stratified
from repro.workloads.paper import (example4, example10, example13,
                                   section37_sigma_double_prime)

from tests.conftest import graph_tgd_sets

E1, E2, S1 = Position("E", 1), Position("E", 2), Position("S", 1)


class TestAffCl:
    def test_existential_positions_always_included(self):
        tgd = parse_constraint("S(x) -> E(x,y)")
        assert aff_cl(tgd, set()) == {Position("E", 2)}

    def test_universal_included_when_body_positions_covered(self):
        tgd = parse_constraint("E(x,y) -> T(y)")
        assert aff_cl(tgd, set()) == set()
        assert aff_cl(tgd, {E2}) == {Position("T", 1)}

    def test_mixed_occupancy_position(self):
        # head position E^1 holds both x (universal) and z (existential)
        tgd = parse_constraint("E(x,y) -> E(x,w), E(z,y)")
        assert Position("E", 1) in aff_cl(tgd, set())

    def test_egd_closure_empty(self):
        egd = parse_constraint("E(x,y), E(x,z) -> y = z")
        assert aff_cl(egd, {E1, E2}) == set()


class TestMinimalRestrictionSystem:
    def test_example12(self):
        system = minimal_restriction_system(example10(), 2)
        labels = {(a.label, b.label) for a, b in system.edges()}
        assert labels == {("a2", "a1")}
        assert set(system.positions) == {E1, E2}
        assert system.cyclic_components() == []

    def test_example13(self):
        system = minimal_restriction_system(example13(), 2)
        labels = {(a.label, b.label) for a, b in system.edges()}
        assert labels == {("a1", "a2"), ("a2", "a1"),
                          ("a3", "a1"), ("a3", "a2")}
        assert set(system.positions) == {E1, E2, S1}
        components = system.cyclic_components()
        assert len(components) == 1
        assert {c.label for c in components[0]} == {"a1", "a2"}

    def test_uniqueness_under_input_order(self):
        forward = minimal_restriction_system(example13(), 2)
        backward = minimal_restriction_system(list(reversed(example13())), 2)
        assert forward.positions == backward.positions
        assert forward.edges() == backward.edges()


class TestPart:
    def test_example14_part_dissolves(self):
        assert part(example13(), 2) == []

    def test_example10_no_cycle_at_all(self):
        assert part(example10(), 2) == []

    def test_irreducible_self_loop(self):
        sigma = parse_constraints("S(x) -> E(x,y), S(y)")
        result = part(sigma, 2)
        assert result == [frozenset(sigma)]

    def test_example4_part_keeps_cyclic_core(self):
        result = part(example4(), 2)
        assert len(result) >= 1


class TestInductiveRestriction:
    def test_example14(self):
        sigma = example13()
        assert is_inductively_restricted(sigma)
        assert not is_safe(sigma)
        assert not is_stratified(sigma)
        assert not is_safely_restricted(sigma)

    def test_example12_safely_restricted(self):
        sigma = example10()
        assert is_safely_restricted(sigma)
        assert is_inductively_restricted(sigma)

    def test_proposition2a_safe_implies_ir(self):
        from repro.workloads.paper import example8_beta
        assert is_safe(example8_beta())
        assert is_inductively_restricted(example8_beta())

    @given(graph_tgd_sets(max_size=2))
    @settings(max_examples=10, deadline=None)
    def test_proposition2a_property(self, sigma):
        if is_safe(sigma):
            assert is_inductively_restricted(sigma)

    def test_proposition2b_stratified_not_ir(self):
        sigma = example4()
        assert is_stratified(sigma)
        assert not is_inductively_restricted(sigma)

    def test_proposition2c_ir_neither_safe_nor_c_stratified(self):
        from repro.termination.cstratification import is_c_stratified
        sigma = example13()
        assert is_inductively_restricted(sigma)
        assert not is_safe(sigma)
        assert not is_c_stratified(sigma)


class TestFlowRestrictionSystem:
    def test_section37_f_table(self):
        """The per-constraint f(alpha_i) walkthrough of Section 3.7.

        Our system derives one extra (correct) edge (a3, a4) that the
        paper's prose omits, which adds S^1 to f(a4); all other entries
        match the paper's table exactly.
        """
        sigma = section37_sigma_double_prime()
        system = flow_restriction_system(sigma)
        f = {c.label: {str(p) for p in system.positions_of(c)}
             for c in sigma}
        assert f["a1"] == {"E^1", "E^2", "S^1"}
        assert f["a2"] == {"E^1", "E^2", "S^1"}
        assert f["a3"] == set()
        assert f["a5"] == {"T^1", "T^2"}
        assert {"E^1", "E^2"} <= f["a4"]

    def test_flow_f_contained_in_affected(self):
        """The Lemma 7 containment: f(alpha) subseteq aff(Sigma)."""
        from repro.termination.affected import affected_positions
        for sigma in (example10(), example13(),
                      section37_sigma_double_prime()):
            affected = affected_positions(sigma)
            system = flow_restriction_system(sigma)
            for constraint in sigma:
                assert set(system.positions_of(constraint)) <= affected

    @given(graph_tgd_sets(max_size=2))
    @settings(max_examples=10, deadline=None)
    def test_flow_f_contained_in_affected_property(self, sigma):
        from repro.termination.affected import affected_positions
        affected = affected_positions(sigma)
        system = flow_restriction_system(sigma)
        for constraint in sigma:
            assert set(system.positions_of(constraint)) <= affected
