"""Tests for the firing relations < (Def. 2), <_c (Def. 4),
<_P (Def. 10) and <_k,P (Def. 14)."""

import pytest

from repro.lang.atoms import Position
from repro.lang.parser import parse_constraint, parse_constraints
from repro.termination.precedence import (ORACLE, PrecedenceOracle,
                                          precedes, precedes_c, precedes_k,
                                          precedes_p)
from repro.workloads.families import sigma_family
from repro.workloads.paper import example4, example10, example13, figure2

E1, E2, S1 = Position("E", 1), Position("E", 2), Position("S", 1)


class TestStandardPrecedes:
    def test_example2_no_self_edge(self):
        gamma = parse_constraint(
            "E(x1,x2), E(x2,x1) -> E(x1,y1), E(y1,y2), E(y2,x1)")
        assert not precedes(gamma, gamma)

    def test_chain_fires(self):
        a, b = parse_constraints("S(x) -> T(x); T(x) -> U(x)")
        assert precedes(a, b)
        assert not precedes(b, a)

    def test_example4_figure4_edges(self):
        a1, a2, a3, a4 = example4()
        assert precedes(a1, a2)
        assert precedes(a1, a3)
        assert precedes(a3, a4)
        assert precedes(a4, a1)
        # the decisive non-edge: alpha2's fresh null can never complete
        # a new alpha4 trigger under the *standard* step
        assert not precedes(a2, a4)

    def test_self_loop_on_generating_constraint(self):
        alpha2 = parse_constraint("S(x) -> E(x,y), S(y)")
        assert precedes(alpha2, alpha2)


class TestCPrecedes:
    def test_example6_no_self_edge(self):
        gamma = parse_constraint(
            "E(x1,x2), E(x2,x1) -> E(x1,y1), E(y1,y2), E(y2,x1)")
        assert not precedes_c(gamma, gamma)

    def test_example7_figure5_extra_edge(self):
        """The corrected oblivious relation gives alpha2 its successor."""
        a1, a2, a3, a4 = example4()
        assert precedes_c(a2, a4)

    def test_printed_variant_misses_example7(self):
        """Definition 4 as printed (with condition (i)) does NOT
        produce the edge -- the erratum-of-the-erratum documented in
        docs/PAPER_MAP.md."""
        a1, a2, a3, a4 = example4()
        assert not precedes_c(a2, a4, printed_variant=True)

    def test_c_extends_standard(self):
        """alpha < beta implies alpha <_c beta on the paper sets
        (the oblivious step subsumes the standard one)."""
        for sigma in (example4(), example10()):
            for alpha in sigma:
                for beta in sigma:
                    if precedes(alpha, beta):
                        assert precedes_c(alpha, beta)


class TestPositionalPrecedes:
    def test_example12_facts(self):
        a1, a2 = example10()
        assert precedes_p(a2, a1, [])
        assert not precedes_p(a1, a1, [E1, E2])
        assert not precedes_p(a1, a2, [E1, E2])
        assert not precedes_p(a2, a2, [E1, E2])

    def test_example13_s1_enables_edge(self):
        a1, a2 = example10()
        assert precedes_p(a1, a2, [E1, E2, S1])

    def test_empty_body_constraint_fires_everything(self):
        a1, a2, a3 = example13()
        assert precedes_p(a3, a1, [])
        assert precedes_p(a3, a2, [])
        assert not precedes_p(a3, a3, [])  # no universal head params

    def test_monotone_in_p(self):
        a1, a2 = example10()
        # a2 <_0 a1 holds, so it holds for every larger P
        assert precedes_p(a2, a1, [E1])
        assert precedes_p(a2, a1, [E1, E2, S1])


class TestChainRelation:
    def test_figure2_frontier(self):
        (alpha,) = figure2()
        assert precedes_k((alpha, alpha), [])
        assert not precedes_k((alpha, alpha, alpha), [])

    def test_sigma3_frontier_positive(self):
        (alpha,) = sigma_family(3)
        assert precedes_k((alpha, alpha), [])
        assert precedes_k((alpha, alpha, alpha), [])

    @pytest.mark.slow
    def test_sigma3_frontier_negative(self):
        (alpha,) = sigma_family(3)
        assert not precedes_k((alpha,) * 4, [])

    def test_sigma4_positive(self):
        (alpha,) = sigma_family(4)
        assert precedes_k((alpha,) * 4, [])

    def test_k2_equals_precedes_p(self):
        a1, a2 = example10()
        for p in ([], [E1, E2], [E1, E2, S1]):
            for x in (a1, a2):
                for y in (a1, a2):
                    assert precedes_k((x, y), p) == precedes_p(x, y, p)

    def test_chain_needs_two_constraints(self):
        (alpha,) = figure2()
        with pytest.raises(ValueError):
            precedes_k((alpha,), [])

    def test_relation_level_prefilter(self):
        """Chains over disjoint relations are rejected instantly."""
        a = parse_constraint("P(x) -> Q(x,y)")
        b = parse_constraint("Z(x) -> W(x,y)")
        assert not precedes_k((a, b), [])
        assert not precedes_k((a, a, b), [])


class TestOracleCaching:
    def test_results_cached(self):
        oracle = PrecedenceOracle()
        a1, a2 = example10()
        first = oracle.precedes_p(a2, a1, [])
        assert oracle.precedes_p(a2, a1, []) == first
        # monotone shortcut: cached True at empty P answers larger P
        assert oracle.precedes_p(a2, a1, [E1, E2]) is True

    def test_budget_exhaustion_is_conservative(self):
        oracle = PrecedenceOracle(node_budget=10)
        (alpha,) = sigma_family(3)
        with pytest.warns(RuntimeWarning):
            assert oracle.precedes_k((alpha, alpha, alpha), []) is True
