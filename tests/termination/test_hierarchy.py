"""The T-hierarchy (Section 3.6) and Figure 8's check algorithm."""

import pytest
from hypothesis import given, settings

from repro.lang.parser import parse_constraints
from repro.termination.hierarchy import check, in_t_level, sub, t_level
from repro.termination.restriction import is_inductively_restricted
from repro.workloads.families import sigma_family
from repro.workloads.paper import (example4, example8_beta, example13,
                                   figure2, section37_sigma_double_prime)

from tests.conftest import graph_tgd_sets


class TestTLevels:
    def test_t2_equals_inductive_restriction_prop5a(self):
        for sigma in (example13(), example8_beta(), example4(),
                      figure2()):
            assert in_t_level(sigma, 2) == is_inductively_restricted(sigma)

    def test_figure2_in_t3_not_t2(self):
        sigma = figure2()
        assert not in_t_level(sigma, 2)
        assert in_t_level(sigma, 3)
        assert t_level(sigma, max_k=3) == 3

    def test_monotone_in_k_prop5b(self):
        sigma = example13()
        assert in_t_level(sigma, 2)
        assert in_t_level(sigma, 3)  # T[2] subseteq T[3]

    def test_example4_outside_low_levels(self):
        assert t_level(example4(), max_k=2) is None

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            in_t_level(figure2(), 1)
        with pytest.raises(ValueError):
            check(figure2(), 0)

    @pytest.mark.slow
    def test_sigma3_frontier_prop5c(self):
        """Sigma_3 in T[4] \\ T[3]: the strict-hierarchy witness."""
        sigma = sigma_family(3)
        assert not in_t_level(sigma, 3)
        assert in_t_level(sigma, 4)


class TestCheckAlgorithm:
    def test_check_matches_literal_definition(self):
        """Proposition 6 on the paper corpus."""
        for sigma in (example13(), example8_beta(), figure2(),
                      section37_sigma_double_prime()):
            for k in (2, 3):
                assert check(sigma, k) == in_t_level(sigma, k), (
                    f"check disagrees with Def. 16 on "
                    f"{[c.label for c in sigma]} at k={k}")

    def test_section37_walkthrough(self):
        """Sigma'' is inductively restricted via the safety fast-path
        on {a5} (Section 3.7's worked example)."""
        sigma = section37_sigma_double_prime()
        assert check(sigma, 2)

    def test_safety_fast_path(self):
        """sub() certifies a safe set without computing the system."""
        assert sub(frozenset(example8_beta()), 2)

    def test_check_false_on_divergent_set(self):
        sigma = parse_constraints("S(x) -> E(x,y), S(y)")
        assert not check(sigma, 2)
        assert not check(sigma, 3)

    @given(graph_tgd_sets(max_size=2))
    @settings(max_examples=8, deadline=None)
    def test_check_equals_definition_property(self, sigma):
        assert check(sigma, 2) == in_t_level(sigma, 2)
