"""Weak acyclicity and dependency graph tests (Definition 1, Ex. 1)."""

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.lang.atoms import Position
from repro.lang.parser import parse_constraints
from repro.termination.dependency_graph import (dependency_graph,
                                                has_special_cycle,
                                                position_ranks, SPECIAL)
from repro.termination.weak_acyclicity import (is_weakly_acyclic,
                                               weak_acyclicity_witness)
from repro.workloads.paper import figure9

from tests.conftest import graph_tgd_sets


class TestDependencyGraph:
    def test_example1_figure3(self):
        """The flight schema's dependency graph (Figure 3): the
        fly^2 ->* fly^2 special self-loop witnesses non-WA."""
        graph = dependency_graph(figure9())
        fly2 = Position("fly", 2)
        assert graph.has_edge(fly2, fly2)
        assert graph.edges[fly2, fly2][SPECIAL]
        # alpha1 copies fly^1 -> hasAirport^1 and fly^2 -> hasAirport^1
        ha1 = Position("hasAirport", 1)
        assert graph.has_edge(Position("fly", 1), ha1)
        assert graph.has_edge(fly2, ha1)
        # alpha2 swaps rail positions (normal edges)
        assert graph.has_edge(Position("rail", 1), Position("rail", 2))
        assert not graph.edges[Position("rail", 1),
                               Position("rail", 2)][SPECIAL]

    def test_special_edge_targets_all_existential_positions(self):
        sigma = parse_constraints("S(x) -> E(x,y), T(y)")
        graph = dependency_graph(sigma)
        s1 = Position("S", 1)
        assert graph.edges[s1, Position("E", 2)][SPECIAL]
        assert graph.edges[s1, Position("T", 1)][SPECIAL]
        assert not graph.edges[s1, Position("E", 1)][SPECIAL]

    def test_egds_contribute_nothing(self):
        sigma = parse_constraints("E(x,y), E(x,z) -> y = z")
        assert dependency_graph(sigma).number_of_edges() == 0

    def test_parallel_normal_and_special_edges_flagged(self):
        # from E^1: x is copied to E^2 (via E(y,x)) AND the existential
        # z lands at E^2 (via E(x,z)) -> one edge carrying both kinds
        sigma = parse_constraints("E(x,y) -> E(y,x), E(x,z)")
        graph = dependency_graph(sigma)
        e1, e2 = Position("E", 1), Position("E", 2)
        assert graph.edges[e1, e2][SPECIAL]
        assert graph.edges[e1, e2]["normal_too"]


class TestWeakAcyclicity:
    def test_terminating_intro_constraint_is_wa(self):
        assert is_weakly_acyclic(parse_constraints("S(x) -> E(x,y)"))

    def test_divergent_intro_constraint_is_not(self):
        assert not is_weakly_acyclic(parse_constraints("S(x) -> E(x,y), S(y)"))

    def test_full_tgds_always_wa(self):
        sigma = parse_constraints("E(x,y) -> E(y,x); E(x,y), E(y,z) -> E(x,z)")
        assert is_weakly_acyclic(sigma)

    def test_witness_reported(self):
        witness = weak_acyclicity_witness(figure9())
        assert witness == (Position("fly", 2), Position("fly", 2))
        assert weak_acyclicity_witness(
            parse_constraints("S(x) -> E(x,y)")) is None

    def test_subset_closure(self):
        """Subsets of weakly acyclic sets are weakly acyclic."""
        sigma = parse_constraints("""
            S(x) -> E(x,y);
            E(x,y) -> T(y);
            T(x) -> U(x,z)
        """)
        assert is_weakly_acyclic(sigma)
        for i in range(len(sigma)):
            assert is_weakly_acyclic(sigma[:i] + sigma[i + 1:])

    @given(graph_tgd_sets(max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_subset_closure_property(self, sigma):
        if is_weakly_acyclic(sigma):
            for i in range(len(sigma)):
                assert is_weakly_acyclic(sigma[:i] + sigma[i + 1:])


class TestRanks:
    def test_ranks_finite_for_wa(self):
        sigma = parse_constraints("S(x) -> E(x,y); E(x,y) -> T(y,z)")
        ranks = position_ranks(dependency_graph(sigma))
        assert ranks[Position("S", 1)] == 0
        assert ranks[Position("E", 2)] == 1
        assert ranks[Position("T", 2)] == 2

    def test_ranks_raise_on_special_cycle(self):
        sigma = parse_constraints("S(x) -> E(x,y), S(y)")
        with pytest.raises(ValueError):
            position_ranks(dependency_graph(sigma))
