"""Affected positions (Def. 6) and safety (Defs. 7, 8; Theorems 4, 5)."""

import networkx as nx
from hypothesis import given, settings

from repro.chase import chase
from repro.lang.atoms import Position
from repro.lang.parser import parse_constraints
from repro.termination.affected import affected_positions
from repro.termination.dependency_graph import dependency_graph
from repro.termination.safety import (is_safe, propagation_graph,
                                      safety_witness)
from repro.termination.weak_acyclicity import is_weakly_acyclic
from repro.workloads.generators import random_graph_instance
from repro.workloads.paper import (example2_gamma, example8_beta, example10,
                                   theorem4_safe_not_stratified)

from tests.conftest import graph_tgd_sets


class TestAffectedPositions:
    def test_example8(self):
        """R^2 is the only affected position of {beta} (Example 8)."""
        affected = affected_positions(example8_beta())
        assert affected == {Position("R", 2)}

    def test_existential_positions_affected(self):
        sigma = parse_constraints("S(x) -> E(x,y)")
        assert affected_positions(sigma) == {Position("E", 2)}

    def test_propagation_through_universals(self):
        sigma = parse_constraints("S(x) -> E(x,y); E(x,y) -> T(y)")
        affected = affected_positions(sigma)
        assert Position("T", 1) in affected  # y flows from affected E^2

    def test_blocked_by_unaffected_co_occurrence(self):
        # x2 occurs in S^1 (never affected) so R^1 stays clean
        affected = affected_positions(example8_beta())
        assert Position("R", 1) not in affected

    def test_full_tgds_have_no_affected_positions(self):
        sigma = parse_constraints("E(x,y) -> E(y,x)")
        assert affected_positions(sigma) == set()

    def test_example10_affected(self):
        """aff(Sigma) = {E^1, E^2} for Example 10."""
        assert affected_positions(example10()) == {Position("E", 1),
                                                   Position("E", 2)}


class TestPropagationGraph:
    def test_example9_figure6(self):
        """prop({beta}) has the single vertex R^2 and no edges."""
        graph = propagation_graph(example8_beta())
        assert set(graph.nodes) == {Position("R", 2)}
        assert graph.number_of_edges() == 0

    def test_theorem4a_subgraph_property(self):
        for sigma in (example8_beta(), example10(), example2_gamma()):
            prop = propagation_graph(sigma)
            dep = dependency_graph(sigma)
            assert set(prop.nodes) <= set(dep.nodes)
            assert set(prop.edges) <= set(dep.edges)

    @given(graph_tgd_sets(max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_theorem4a_property(self, sigma):
        prop = propagation_graph(sigma)
        dep = dependency_graph(sigma)
        assert set(prop.edges) <= set(dep.edges)


class TestSafety:
    def test_example9_safe_not_wa(self):
        sigma = example8_beta()
        assert is_safe(sigma)
        assert not is_weakly_acyclic(sigma)

    def test_theorem4b_wa_implies_safe(self):
        sigma = parse_constraints("S(x) -> E(x,y); E(x,y) -> T(y)")
        assert is_weakly_acyclic(sigma) and is_safe(sigma)

    @given(graph_tgd_sets(max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_theorem4b_property(self, sigma):
        if is_weakly_acyclic(sigma):
            assert is_safe(sigma)

    def test_theorem4c_safe_not_c_stratified(self):
        assert is_safe(theorem4_safe_not_stratified())

    def test_example10_not_safe(self):
        assert not is_safe(example10())
        assert safety_witness(example10()) is not None

    def test_example2_gamma_not_safe(self):
        """Both T^1 and T^2 affected: dep = prop, not safe (Thm 4c)."""
        assert not is_safe(example2_gamma())

    def test_subset_closure(self):
        """Subsets of safe sets are safe (used by Prop. 2a)."""
        sigma = theorem4_safe_not_stratified()
        assert is_safe(sigma[:1]) and is_safe(sigma[1:])

    def test_safe_set_chase_terminates(self):
        """Theorem 5 end-to-end: chase with the safe Example 9
        constraint terminates on random instances."""
        sigma = example8_beta()
        sigma_r = parse_constraints(
            "R(x1,x2,x3), S(x2) -> R(x2,y,x1)")
        for seed in range(3):
            inst = random_graph_instance(seed, 4)
            # re-shape to the R/S schema: reuse E-facts as R-facts
            from repro.lang.atoms import Atom
            from repro.lang.instance import Instance
            facts = []
            for fact in inst:
                if fact.relation == "E":
                    facts.append(Atom("R", (fact.args[0], fact.args[1],
                                            fact.args[0])))
                else:
                    facts.append(fact)
            result = chase(Instance(facts), sigma_r, max_steps=5000)
            assert result.terminated
