"""Stratification and c-stratification tests (Sections 3.2, 3.3)."""

import networkx as nx
from hypothesis import given, settings

from repro.chase import chase, ChaseStatus, RoundRobinStrategy
from repro.lang.parser import parse_constraints
from repro.termination.chase_graph import (c_chase_graph, chase_graph,
                                           nontrivial_sccs,
                                           topological_strata)
from repro.termination.cstratification import (is_c_stratified,
                                               non_weakly_acyclic_c_cycle)
from repro.termination.stratification import (chase_strata, is_stratified,
                                              non_weakly_acyclic_cycle,
                                              stratified_strategy)
from repro.termination.weak_acyclicity import is_weakly_acyclic
from repro.workloads.paper import (example2_gamma, example4,
                                   example4_instance, example10, figure9,
                                   theorem4_safe_not_stratified)

from tests.conftest import graph_instances, graph_tgd_sets


class TestChaseGraph:
    def test_example4_figure4(self):
        sigma = example4()
        graph = chase_graph(sigma)
        labels = {(a.label, b.label) for a, b in graph.edges()}
        # the full-TGD cycle a1 -> a3 -> a4 -> a1 exists
        assert {("a1", "a3"), ("a3", "a4"), ("a4", "a1")} <= labels
        # a2 has no outgoing edge under the standard relation
        assert not any(a == "a2" for a, _ in labels)

    def test_example7_figure5(self):
        sigma = example4()
        graph = c_chase_graph(sigma)
        labels = {(a.label, b.label) for a, b in graph.edges()}
        assert ("a2", "a4") in labels  # the corrected edge

    def test_nontrivial_sccs(self):
        sigma = example4()
        components = nontrivial_sccs(chase_graph(sigma))
        assert len(components) == 1
        assert {c.label for c in components[0]} == {"a1", "a3", "a4"}

    def test_self_loop_is_nontrivial(self):
        sigma = parse_constraints("S(x) -> E(x,y), S(y)")
        assert len(nontrivial_sccs(chase_graph(sigma))) == 1

    def test_topological_strata_cover(self):
        sigma = example4()
        strata = topological_strata(chase_graph(sigma))
        assert sorted(c.label for s in strata for c in s) == [
            "a1", "a2", "a3", "a4"]


class TestStratification:
    def test_example3_gamma_stratified_not_wa(self):
        sigma = example2_gamma()
        assert is_stratified(sigma)
        assert not is_weakly_acyclic(sigma)

    def test_example4_stratified(self):
        assert is_stratified(example4())
        assert non_weakly_acyclic_cycle(example4()) is None

    def test_wa_implies_stratified(self):
        sigma = parse_constraints("S(x) -> E(x,y); E(x,y) -> T(y)")
        assert is_weakly_acyclic(sigma) and is_stratified(sigma)

    @given(graph_tgd_sets(max_size=2))
    @settings(max_examples=15, deadline=None)
    def test_wa_implies_stratified_property(self, sigma):
        if is_weakly_acyclic(sigma):
            assert is_stratified(sigma)

    def test_figure9_not_stratified(self):
        """alpha3 (fly -> exists fly) loops on itself non-WA."""
        assert not is_stratified(figure9())

    def test_example10_not_stratified(self):
        assert not is_stratified(example10())

    def test_theorem4c_pair_not_stratified(self):
        assert not is_stratified(theorem4_safe_not_stratified())

    def test_witness_cycle_reported(self):
        cycle = non_weakly_acyclic_cycle(figure9())
        assert cycle is not None
        assert not is_weakly_acyclic(cycle)


class TestCStratification:
    def test_example4_refutation(self):
        """The paper's headline: stratified but not c-stratified, with
        a genuinely divergent sequence (Example 4)."""
        sigma = example4()
        assert is_stratified(sigma)
        assert not is_c_stratified(sigma)
        cycle = non_weakly_acyclic_c_cycle(sigma)
        assert cycle is not None and "a2" in {c.label for c in cycle}
        diverged = chase(example4_instance(), sigma,
                         strategy=RoundRobinStrategy(), max_steps=300)
        assert diverged.status is ChaseStatus.EXCEEDED_BUDGET

    def test_example6_gamma_c_stratified(self):
        assert is_c_stratified(example2_gamma())

    def test_wa_implies_c_stratified(self):
        sigma = parse_constraints("S(x) -> E(x,y); E(x,y) -> T(y)")
        assert is_c_stratified(sigma)

    def test_theorem3_c_stratified_chase_terminates(self):
        """Theorem 3 end-to-end: every strategy terminates for a
        c-stratified set."""
        sigma = example2_gamma()
        assert is_c_stratified(sigma)
        from repro.workloads.generators import random_graph_instance
        for seed in range(3):
            inst = random_graph_instance(seed, 4, edge_probability=0.4)
            result = chase(inst, sigma, max_steps=20_000)
            assert result.terminated

    @given(graph_tgd_sets(max_size=2), graph_instances())
    @settings(max_examples=10, deadline=None)
    def test_theorem3_property(self, sigma, inst):
        """On random small sets: c-stratified => chase terminates."""
        if is_c_stratified(sigma):
            result = chase(inst, sigma, max_steps=20_000)
            assert result.status is not ChaseStatus.EXCEEDED_BUDGET


class TestTheorem2Construction:
    def test_strata_order_terminates_where_round_robin_diverges(self):
        sigma = example4()
        strategy = stratified_strategy(sigma, verify=True)
        result = chase(example4_instance(), sigma, strategy=strategy,
                       max_steps=500)
        assert result.terminated
